"""E-A2: anonymous versus identified feedback (the privacy/reputation compromise)."""

from repro.api import ablations


def test_bench_anonymity_ablation(benchmark):
    """Run the four feedback modes end to end and check the tradeoff shape."""
    outcomes = benchmark.pedantic(
        lambda: ablations.run_anonymity_ablation(n_users=35, rounds=15, seed=0),
        rounds=1,
        iterations=1,
    )
    modes = {outcome.mode: outcome for outcome in outcomes}
    assert set(modes) == {
        "identified-eigentrust",
        "anonymous-eigentrust",
        "identified-beta",
        "anonymous-beta",
    }
    # Anonymity buys privacy...
    assert (
        modes["anonymous-eigentrust"].privacy_facet
        > modes["identified-eigentrust"].privacy_facet
    )
    assert modes["anonymous-beta"].privacy_facet > modes["identified-beta"].privacy_facet
    # ...and costs the identity-based mechanism its reputation power, while the
    # count-based mechanism keeps working.
    assert (
        modes["anonymous-eigentrust"].reputation_facet
        <= modes["identified-eigentrust"].reputation_facet
    )
    assert modes["anonymous-beta"].reputation_accuracy > 0.5
    print()
    print(ablations.report(ablations.AblationResult(aggregators=[], anonymity=outcomes)))

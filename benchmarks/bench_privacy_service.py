"""E-P1: PriServ-style enforcement, OECD compliance and request throughput."""

from repro.api import (
    OecdPrinciple,
    Operation,
    PriServService,
    Purpose,
    privacy_eval,
    restrictive_policy,
)


def test_bench_privacy_enforcement_experiment(benchmark):
    """The E-P1 request-stream experiment."""
    result = benchmark.pedantic(
        lambda: privacy_eval.run(n_users=40, n_requests=500, breach_rate=0.05, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.denied > 0
    assert result.denial_reasons
    assert result.policy_respect < 1.0  # the injected breaches are visible
    assert result.compliance.scores[OecdPrinciple.SECURITY_SAFEGUARDS] < 1.0
    assert result.compliance.overall > 0.5
    print()
    print(privacy_eval.report(result))


def test_bench_priserv_request_throughput(benchmark):
    """Single policy-checked request latency on a 100-peer service."""
    peers = [f"u{i}" for i in range(100)]
    service = PriServService(
        peer_ids=peers,
        trust_oracle=lambda peer: 0.9,
        friendship_oracle=lambda a, b: True,
    )
    service.register_policy(restrictive_policy("u0", minimum_trust=0.5))
    service.publish("u0", "u0/profile", {"city": "Nantes"}, sensitivity=0.6)

    from repro.api import Obligation

    def one_request():
        return service.request(
            "u1",
            "u0/profile",
            operation=Operation.READ,
            purpose=Purpose.SOCIAL_INTERACTION,
            accepted_obligations=(
                Obligation.DELETE_AFTER_RETENTION,
                Obligation.NO_REDISTRIBUTION,
            ),
        )

    decision, content = benchmark(one_request)
    assert decision.permitted
    assert content == {"city": "Nantes"}

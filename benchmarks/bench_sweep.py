"""Benchmark the sweep engine and emit machine-readable numbers.

Run as a script to produce ``BENCH_sweep.json`` (the CI benchmark artifact
seeding the perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json --jobs 2

Each measured campaign reports the experiment name, task count, wall time
and throughput (tasks/sec) for both serial and parallel execution, plus the
task-expansion overhead on a large synthetic grid.  The same campaigns also
run under pytest-benchmark alongside the other ``bench_*`` modules.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import SweepSpec, expand_tasks, run_sweep

SCHEMA_VERSION = 1

#: Laptop-fast campaigns covering one analytic and one simulation-backed
#: experiment — the two cost regimes the engine has to schedule well.
CAMPAIGN_SPECS = {
    "figure2-left-grid": SweepSpec(
        experiment="figure2-left",
        grids={
            "threshold": [0.4, 0.5, 0.6],
            "mechanism": ["eigentrust", "beta"],
        },
        seed=11,
    ),
    "figure1-grid": SweepSpec(
        experiment="figure1",
        grids={"n_users": [25, 40], "rounds": [8, 12]},
        seed=11,
    ),
}


def measure_campaign(name: str, spec: SweepSpec, *, jobs: int) -> dict[str, object]:
    result = run_sweep(spec, jobs=jobs)
    if result.n_errors:
        raise RuntimeError(f"benchmark campaign {name!r} had {result.n_errors} failed tasks")
    return {
        "campaign": name,
        "experiment": spec.experiment,
        "jobs": jobs,
        "tasks": len(result.records),
        "wall_time_s": round(result.wall_time, 4),
        "tasks_per_s": round(result.tasks_per_second, 4),
    }


def measure_expansion(n_values: int = 40) -> dict[str, object]:
    """Task-expansion throughput on a 3-axis grid (pure orchestration cost)."""
    spec = SweepSpec(
        experiment="figure2-left",
        grids={
            "threshold": [i / (2 * n_values) for i in range(n_values)],
            "mechanism": ["eigentrust", "beta", "average"],
            "sharing_levels": [None],  # placeholder axis; never executed
        },
        seed=0,
    )
    start = time.perf_counter()
    tasks = expand_tasks(spec)
    elapsed = time.perf_counter() - start
    return {
        "campaign": "task-expansion",
        "experiment": spec.experiment,
        "jobs": 0,
        "tasks": len(tasks),
        "wall_time_s": round(elapsed, 4),
        "tasks_per_s": round(len(tasks) / elapsed, 1) if elapsed > 0 else None,
    }


def run_benchmarks(*, jobs: int) -> dict[str, object]:
    entries: list[dict[str, object]] = [measure_expansion()]
    for name, spec in CAMPAIGN_SPECS.items():
        entries.append(measure_campaign(name, spec, jobs=1))
        if jobs > 1:
            entries.append(measure_campaign(name, spec, jobs=jobs))
    return {"schema_version": SCHEMA_VERSION, "benchmarks": entries}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sweep.json", metavar="PATH")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    payload = run_benchmarks(jobs=args.jobs)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for entry in payload["benchmarks"]:
        print(
            f"{entry['campaign']:20s} jobs={entry['jobs']} tasks={entry['tasks']:4d} "
            f"wall={entry['wall_time_s']}s rate={entry['tasks_per_s']}/s"
        )
    print(f"written to {args.out}")
    return 0


# -- pytest-benchmark harness (same campaigns, timed by the shared fixture) ----


def test_bench_sweep_expand(benchmark):
    """Pure task expansion of the analytic campaign grid."""
    tasks = benchmark(lambda: expand_tasks(CAMPAIGN_SPECS["figure2-left-grid"]))
    assert len(tasks) == 6


def test_bench_sweep_analytic_campaign(benchmark):
    """Serial sweep of the analytic Figure-2-left experiment."""
    result = benchmark.pedantic(
        lambda: run_sweep(CAMPAIGN_SPECS["figure2-left-grid"], jobs=1),
        rounds=1,
        iterations=1,
    )
    assert result.n_errors == 0
    assert len(result.records) == 6


if __name__ == "__main__":
    sys.exit(main())

"""E-A1: the composite-metric aggregator ablation."""

from repro.api import Aggregator, CompositeTrustMetric, FacetScores, ablations


def test_bench_aggregator_ablation(benchmark):
    """Compare the aggregator family on the analytic tradeoff sweep."""
    outcomes = benchmark(ablations.run_aggregator_ablation)
    by_name = {outcome.aggregator: outcome for outcome in outcomes}
    assert set(by_name) == {"weighted", "geometric", "minimum", "owa"}
    # Non-compensatory aggregators punish unbalanced facet profiles harder.
    assert by_name["minimum"].unbalanced_penalty >= by_name["geometric"].unbalanced_penalty
    assert by_name["geometric"].unbalanced_penalty > by_name["weighted"].unbalanced_penalty
    # Every aggregator still finds its optimum inside Area A at an interior
    # sharing level — the paper's "good tradeoff" is metric-robust.
    for outcome in outcomes:
        assert outcome.best_in_area_a
        assert 0.0 < outcome.best_sharing_level < 1.0
    print()
    print(ablations.report(ablations.AblationResult(aggregators=outcomes, anonymity=[])))


def test_bench_single_metric_evaluation(benchmark):
    """Latency of one composite-trust evaluation (all four aggregators)."""
    facets = FacetScores(privacy=0.55, reputation=0.7, satisfaction=0.65)
    metrics = [CompositeTrustMetric(aggregator=aggregator) for aggregator in Aggregator]

    def evaluate_all():
        return [metric.trust(facets) for metric in metrics]

    values = benchmark(evaluate_all)
    assert all(0.0 <= value <= 1.0 for value in values)

"""E-F2R (Figure 2, right): privacy/reputation/satisfaction vs shared information."""

from repro.api import SettingsExplorer, figure2_right


def test_bench_analytic_tradeoff_sweep(benchmark):
    """The analytic sweep behind the Figure-2 curves (41 settings)."""
    explorer = SettingsExplorer()
    points = benchmark(lambda: explorer.sweep_sharing_levels(resolution=41))
    privacy = [point.facets.privacy for point in points]
    reputation = [point.facets.reputation for point in points]
    assert all(a >= b for a, b in zip(privacy, privacy[1:]))
    assert all(a <= b for a, b in zip(reputation, reputation[1:]))
    best = explorer.best(points)
    assert 0.0 < best.sharing_level < 1.0


def test_bench_figure2_right_simulated(benchmark):
    """Full E-F2R including the simulation-backed curve."""
    result = benchmark.pedantic(
        lambda: figure2_right.run(
            levels=(0.0, 0.25, 0.5, 0.75, 1.0),
            simulate=True,
            n_users=30,
            rounds=15,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    simulated = result.simulated_points
    assert simulated[0].facets.privacy > simulated[-1].facets.privacy
    assert simulated[-1].facets.reputation >= simulated[0].facets.reputation
    assert result.iso_satisfaction_pairs
    assert 0.0 < result.best_analytic.sharing_level < 1.0
    print()
    print(figure2_right.report(result))

"""Benchmark the serving layer: replayed traffic against a live server.

Run as a script to produce ``BENCH_serve.json`` (the CI artifact the
serve-gate checks)::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

Two drills against real ``repro-serve`` subprocesses (stdlib HTTP adapter,
zero extra dependencies):

* **throughput** — a scenario-trace replay from concurrent clients:
  ``POST /v1/feedback`` batches interleaved with score/peer queries.
  Reports ingest events/sec, client-observed query p50/p99, and the
  server's own per-operation latency summary (including the refresh path —
  the "refresh lag" a consumer sees is bounded by ``refresh_every`` events
  plus the p95 refresh latency reported here).
* **kill+restart** — half the trace is ingested sequentially, the session
  is snapshotted over HTTP, the server is SIGKILLed mid-flight, a new
  server restores from the snapshot and ingests the rest.  Its final
  ``/v1/scores`` body must be byte-identical to an uninterrupted control
  run; any mismatch fails the gate outright.

``--check-baseline PATH`` compares against the committed baseline
(``benchmarks/baselines/BENCH_serve_baseline.json``): throughput may not
fall below ``(1 - tolerance)`` of the baseline events/sec, and the
absolute floors catch wholesale losses even with a stale baseline.  The
tolerance is deliberately loose (CI machines differ widely); the
byte-identity and zero-error checks are exact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import (
    ReputationService,
    ServiceConfig,
    build_trace,
    create_http_server,
    ingest_events,
    replay,
    request_json,
    scores_body,
)

SCHEMA_VERSION = 1

#: Absolute floors/ceilings per mode (full, quick): minimum sustained
#: ingest events/sec over HTTP and maximum client-observed query p99.
#: Deliberately conservative — a healthy server clears them by an order of
#: magnitude; they exist to catch a wholesale loss of the serving path.
FLOORS = {
    "ingest_events_per_sec": (400.0, 200.0),
    "query_p99_ms_max": (500.0, 500.0),
}

#: Service parameters used by every drill (and by the committed baseline).
REFRESH_EVERY = 32

#: The in-repo src/ tree, so server subprocesses resolve the same package
#: as the driving process regardless of the caller's cwd or install state.
_SRC_PATH = os.pathsep.join(
    [str(Path(__file__).resolve().parent.parent / "src")]
    + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
)


def trace_kwargs(quick: bool) -> dict[str, object]:
    if quick:
        return dict(scenario="collusion-ring", n_users=25, rounds=20, seed=11)
    return dict(scenario="collusion-ring", n_users=40, rounds=60, seed=11)


class ServerProcess:
    """One ``repro-serve`` subprocess with port-file coordination."""

    def __init__(self, workdir: Path, name: str, extra_args: list[str]) -> None:
        self.port_file = workdir / f"{name}.port"
        self.log_path = workdir / f"{name}.log"
        self.log_handle = open(self.log_path, "w", encoding="utf-8")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.cli",
                "--port",
                "0",
                "--port-file",
                str(self.port_file),
                *extra_args,
            ],
            stdout=self.log_handle,
            stderr=subprocess.STDOUT,
            env={**os.environ, "PYTHONPATH": _SRC_PATH},
        )
        self.port = self._await_port()

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited early (status {self.process.returncode}); "
                    f"log: {self.log_path.read_text()}"
                )
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:
                    return int(text)
            time.sleep(0.05)
        raise RuntimeError(f"server did not report a port within {timeout}s")

    def kill(self) -> None:
        """SIGKILL — the crash the restart drill simulates."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait()
        self.log_handle.close()

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
        self.process.wait()
        self.log_handle.close()


def throughput_drill(
    workdir: Path, events: list[dict[str, object]], *, clients: int
) -> dict[str, object]:
    server = ServerProcess(
        workdir, "throughput", ["--refresh-every", str(REFRESH_EVERY)]
    )
    try:
        stats = replay(
            "127.0.0.1",
            server.port,
            events,
            clients=clients,
            batch_size=32,
            query_every=2,
        )
    finally:
        server.terminate()
    health = stats.health
    latency = health.get("latency", {}) if isinstance(health, dict) else {}
    return {
        "drill": "throughput",
        "events": stats.events,
        "clients": stats.clients,
        "wall_seconds": stats.wall_seconds,
        "ingest_events_per_sec": stats.ingest_events_per_sec,
        "queries": stats.queries,
        "query_p50_ms": stats.query_p50_ms,
        "query_p99_ms": stats.query_p99_ms,
        "errors": stats.errors,
        "final_watermark": health.get("watermark"),
        "final_pending": health.get("pending"),
        "refreshes": health.get("refreshes"),
        "server_latency_ms": latency,
    }


def restart_drill(workdir: Path, events: list[dict[str, object]]) -> dict[str, object]:
    """Kill a server mid-trace, restore from snapshot, compare bytewise."""
    snapshot = workdir / "restart.ckpt"
    half = len(events) // 2

    first = ServerProcess(
        workdir,
        "restart-a",
        ["--refresh-every", str(REFRESH_EVERY), "--snapshot", str(snapshot)],
    )
    try:
        ingest_events("127.0.0.1", first.port, events[:half], batch_size=16)
        status, payload, _ = request_json(
            "127.0.0.1", first.port, "POST", "/v1/snapshot"
        )
        if status != 200:
            raise RuntimeError(f"snapshot failed: {payload}")
    finally:
        first.kill()

    second = ServerProcess(workdir, "restart-b", ["--restore", str(snapshot)])
    try:
        ingest_events("127.0.0.1", second.port, events[half:], batch_size=16)
        interrupted = scores_body("127.0.0.1", second.port)
    finally:
        second.terminate()

    # Uninterrupted control: same trace, same refresh cadence, in process
    # (the response body depends only on session state, not transport).
    service = ReputationService(ServiceConfig(refresh_every=REFRESH_EVERY))
    control_server = create_http_server(service)
    host, port = control_server.server_address[0], control_server.server_address[1]
    thread = threading.Thread(
        target=control_server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        ingest_events(host, port, events, batch_size=16)
        control = scores_body(host, port)
    finally:
        control_server.shutdown()

    return {
        "drill": "restart",
        "events": len(events),
        "snapshot_at": half,
        "restart_identical": interrupted == control,
        "interrupted_sha": hashlib.sha256(interrupted).hexdigest(),
        "control_sha": hashlib.sha256(control).hexdigest(),
    }


def run_benchmarks(*, quick: bool, clients: int) -> dict[str, object]:
    kwargs = trace_kwargs(quick)
    events = build_trace(**kwargs)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        workdir = Path(tmp)
        throughput = throughput_drill(workdir, events, clients=clients)
        restart = restart_drill(workdir, events)
    floors = {
        name: (floor[1] if quick else floor[0]) for name, floor in FLOORS.items()
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_serve.py",
        "quick": quick,
        "clients": clients,
        "refresh_every": REFRESH_EVERY,
        "trace": {**kwargs, "events": len(events)},
        "floors": floors,
        "drills": [throughput, restart],
        "restart_identical": bool(restart["restart_identical"]),
        "errors": int(throughput["errors"]),
    }


def check_against_baseline(
    report: dict[str, object], baseline: dict[str, object], *, tolerance: float
) -> list[str]:
    """Regression findings (empty when the gate passes)."""
    problems: list[str] = []
    drills = {entry["drill"]: entry for entry in report["drills"]}
    throughput = drills.get("throughput")
    restart = drills.get("restart")

    if restart is None:
        problems.append("restart: drill missing from the report")
    elif not restart["restart_identical"]:
        problems.append(
            "restart: scores after kill+restore differ bytewise from the "
            "uninterrupted run (snapshot/restore broke determinism)"
        )

    if throughput is None:
        problems.append("throughput: drill missing from the report")
        return problems
    if int(throughput["errors"]):
        problems.append(f"throughput: {throughput['errors']} failed requests")

    floors = report.get("floors", {})
    rate = float(throughput["ingest_events_per_sec"])
    rate_floor = float(floors.get("ingest_events_per_sec", 0.0))
    if rate < rate_floor:
        problems.append(
            f"throughput: {rate:.0f} events/s is below the {rate_floor:.0f}/s floor"
        )
    p99 = float(throughput["query_p99_ms"])
    p99_ceiling = float(floors.get("query_p99_ms_max", float("inf")))
    if p99 > p99_ceiling:
        problems.append(
            f"throughput: query p99 {p99:.1f}ms exceeds the {p99_ceiling:.0f}ms ceiling"
        )

    if bool(report.get("quick")) == bool(baseline.get("quick")):
        base_drills = {entry["drill"]: entry for entry in baseline.get("drills", [])}
        base_throughput = base_drills.get("throughput")
        if base_throughput is not None:
            base_rate = float(base_throughput["ingest_events_per_sec"])
            allowed = (1.0 - tolerance) * base_rate
            if rate < allowed:
                problems.append(
                    f"throughput: {rate:.0f} events/s regressed >{tolerance:.0%} "
                    f"against baseline {base_rate:.0f} events/s"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="smaller trace for smoke testing"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent replay clients"
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fail when results regressed against this committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional throughput regression against the baseline",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick, clients=args.clients)

    for entry in report["drills"]:
        if entry["drill"] == "throughput":
            print(
                f"throughput  {entry['events']} events via {entry['clients']} clients   "
                f"{entry['ingest_events_per_sec']:8.0f} ev/s   "
                f"query p50 {entry['query_p50_ms']:6.2f}ms  "
                f"p99 {entry['query_p99_ms']:6.2f}ms   "
                f"errors {entry['errors']}"
            )
        else:
            verdict = "byte-identical" if entry["restart_identical"] else "DIVERGED"
            print(
                f"restart     snapshot@{entry['snapshot_at']}/{entry['events']} "
                f"+ SIGKILL + restore -> {verdict}"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if args.check_baseline:
        with open(args.check_baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("serve gate passed (no regression against baseline)")
    elif not report["restart_identical"]:
        print("REGRESSION: restart drill diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

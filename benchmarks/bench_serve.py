"""Benchmark the serving layer: replayed traffic against a live server.

Run as a script to produce ``BENCH_serve.json`` (the CI artifact the
serve-gate checks)::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

Four drills against real ``repro-serve`` subprocesses (stdlib HTTP adapter,
zero extra dependencies); ``--drill`` selects a subset:

* **throughput** — a scenario-trace replay from concurrent clients:
  ``POST /v1/feedback`` batches interleaved with score/peer queries.
  Reports ingest events/sec, client-observed query p50/p99, and the
  server's own per-operation latency summary (including the refresh path —
  the "refresh lag" a consumer sees is bounded by ``refresh_every`` events
  plus the p95 refresh latency reported here).
* **restart** — half the trace is ingested sequentially, the session
  is snapshotted over HTTP, the server is SIGKILLed mid-flight, a new
  server restores from the snapshot and ingests the rest.  Its final
  ``/v1/scores`` body must be byte-identical to an uninterrupted control
  run; any mismatch fails the gate outright.
* **overload** — resilient clients flood a server whose admission gate is
  deliberately small while a planned ``http.admit`` fault forces
  deterministic sheds.  Reports shed count, queue high-water mark and the
  server-side ingest p99 under saturation; the gate requires sheds > 0
  (backpressure actually engaged), zero read errors (queries keep
  answering), and acked == ingested (nothing acked was lost, nothing
  double-ingested through the retries).
* **crash** — the WAL drill: a server started with ``--wal`` is SIGKILLed
  *mid-append* (a planned ``wal.append`` kill rule) under live resilient
  traffic; a second server recovers from the WAL alone.  Every event the
  client saw acked must be present after recovery and the finished
  stream's ``/v1/scores`` must match an uninterrupted control run
  byte-for-byte.

``--check-baseline PATH`` compares against the committed baseline
(``benchmarks/baselines/BENCH_serve_baseline.json``): throughput may not
fall below ``(1 - tolerance)`` of the baseline events/sec, and the
absolute floors catch wholesale losses even with a stale baseline.  The
tolerance is deliberately loose (CI machines differ widely); the
byte-identity and zero-error checks are exact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import (
    ClientRetryPolicy,
    ReputationService,
    RequestFailedError,
    ResilientClient,
    ServiceConfig,
    build_trace,
    create_http_server,
    ingest_events,
    replay,
    request_json,
    scores_body,
)

SCHEMA_VERSION = 2

DRILLS = ("throughput", "restart", "overload", "crash")

#: Absolute floors/ceilings per mode (full, quick): minimum sustained
#: ingest events/sec over HTTP and maximum client-observed query p99.
#: Deliberately conservative — a healthy server clears them by an order of
#: magnitude; they exist to catch a wholesale loss of the serving path.
FLOORS = {
    "ingest_events_per_sec": (400.0, 200.0),
    "query_p99_ms_max": (500.0, 500.0),
    #: Server-side ingest p99 while the admission gate is shedding: loose,
    #: it exists to catch the write path collapsing under saturation.
    "overload_ingest_p99_ms_max": (2000.0, 2000.0),
}

#: Service parameters used by every drill (and by the committed baseline).
REFRESH_EVERY = 32

#: The in-repo src/ tree, so server subprocesses resolve the same package
#: as the driving process regardless of the caller's cwd or install state.
_SRC_PATH = os.pathsep.join(
    [str(Path(__file__).resolve().parent.parent / "src")]
    + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
)


def trace_kwargs(quick: bool) -> dict[str, object]:
    if quick:
        return dict(scenario="collusion-ring", n_users=25, rounds=20, seed=11)
    return dict(scenario="collusion-ring", n_users=40, rounds=60, seed=11)


class ServerProcess:
    """One ``repro-serve`` subprocess with port-file coordination."""

    def __init__(
        self,
        workdir: Path,
        name: str,
        extra_args: list[str],
        *,
        env_extra: dict[str, str] | None = None,
    ) -> None:
        self.port_file = workdir / f"{name}.port"
        self.log_path = workdir / f"{name}.log"
        self.log_handle = open(self.log_path, "w", encoding="utf-8")
        env = {**os.environ, "PYTHONPATH": _SRC_PATH}
        # Never inherit an ambient fault plan: each drill injects its own.
        env.pop("REPRO_FAULTS", None)
        env.update(env_extra or {})
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.cli",
                "--port",
                "0",
                "--port-file",
                str(self.port_file),
                *extra_args,
            ],
            stdout=self.log_handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self.port = self._await_port()

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited early (status {self.process.returncode}); "
                    f"log: {self.log_path.read_text()}"
                )
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:
                    return int(text)
            time.sleep(0.05)
        raise RuntimeError(f"server did not report a port within {timeout}s")

    def kill(self) -> None:
        """SIGKILL — the crash the restart drill simulates."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait()
        self.log_handle.close()

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
        self.process.wait()
        self.log_handle.close()


def throughput_drill(
    workdir: Path, events: list[dict[str, object]], *, clients: int
) -> dict[str, object]:
    server = ServerProcess(
        workdir, "throughput", ["--refresh-every", str(REFRESH_EVERY)]
    )
    try:
        stats = replay(
            "127.0.0.1",
            server.port,
            events,
            clients=clients,
            batch_size=32,
            query_every=2,
        )
    finally:
        server.terminate()
    health = stats.health
    latency = health.get("latency", {}) if isinstance(health, dict) else {}
    return {
        "drill": "throughput",
        "events": stats.events,
        "clients": stats.clients,
        "wall_seconds": stats.wall_seconds,
        "ingest_events_per_sec": stats.ingest_events_per_sec,
        "queries": stats.queries,
        "query_p50_ms": stats.query_p50_ms,
        "query_p99_ms": stats.query_p99_ms,
        "errors": stats.errors,
        "final_watermark": health.get("watermark"),
        "final_pending": health.get("pending"),
        "refreshes": health.get("refreshes"),
        "server_latency_ms": latency,
    }


def _control_scores_body(events: list[dict[str, object]]) -> bytes:
    """The ``/v1/scores`` bytes of an uninterrupted control session.

    Served in process (the body depends only on session state, not
    transport), fed through the same HTTP ingest path as the drills.
    """
    service = ReputationService(ServiceConfig(refresh_every=REFRESH_EVERY))
    control_server = create_http_server(service)
    host, port = control_server.server_address[0], control_server.server_address[1]
    thread = threading.Thread(
        target=control_server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        ingest_events(host, port, events, batch_size=16)
        return scores_body(host, port)
    finally:
        control_server.shutdown()


def restart_drill(workdir: Path, events: list[dict[str, object]]) -> dict[str, object]:
    """Kill a server mid-trace, restore from snapshot, compare bytewise."""
    snapshot = workdir / "restart.ckpt"
    half = len(events) // 2

    first = ServerProcess(
        workdir,
        "restart-a",
        ["--refresh-every", str(REFRESH_EVERY), "--snapshot", str(snapshot)],
    )
    try:
        ingest_events("127.0.0.1", first.port, events[:half], batch_size=16)
        status, payload, _ = request_json(
            "127.0.0.1", first.port, "POST", "/v1/snapshot"
        )
        if status != 200:
            raise RuntimeError(f"snapshot failed: {payload}")
    finally:
        first.kill()

    second = ServerProcess(workdir, "restart-b", ["--restore", str(snapshot)])
    try:
        ingest_events("127.0.0.1", second.port, events[half:], batch_size=16)
        interrupted = scores_body("127.0.0.1", second.port)
    finally:
        second.terminate()

    control = _control_scores_body(events)

    return {
        "drill": "restart",
        "events": len(events),
        "snapshot_at": half,
        "restart_identical": interrupted == control,
        "interrupted_sha": hashlib.sha256(interrupted).hexdigest(),
        "control_sha": hashlib.sha256(control).hexdigest(),
    }


def overload_drill(
    workdir: Path, events: list[dict[str, object]], *, clients: int
) -> dict[str, object]:
    """Flood a small admission gate; prove shedding, bounded memory, live reads.

    A planned ``http.admit`` fault forces the first sheds deterministically
    (CI machines differ too much for genuine saturation to be reliable);
    genuine queue-full sheds on top of that are welcome.  Resilient clients
    absorb the 429s through their retry budget, so the invariant at the end
    is exact: every acked event is ingested exactly once.
    """
    plan = json.dumps(
        {"seed": 0, "rules": [{"site": "http.admit", "action": "degrade", "times": 12}]}
    )
    server = ServerProcess(
        workdir,
        "overload",
        ["--refresh-every", str(REFRESH_EVERY), "--max-pending", "4"],
        env_extra={"REPRO_FAULTS": plan},
    )
    shards = [events[index::clients] for index in range(clients)]
    flood_clients = [
        ResilientClient(
            "127.0.0.1",
            server.port,
            client_id=f"flood-{index}",
            policy=ClientRetryPolicy(
                max_attempts=8, backoff_base=0.01, backoff_cap=0.2, seed=index
            ),
        )
        for index in range(clients)
    ]
    failed_batches = [0] * clients
    reads = {"ok": 0, "errors": 0}
    stop = threading.Event()

    def reader() -> None:
        client = ResilientClient("127.0.0.1", server.port, client_id="reader")
        while not stop.is_set():
            try:
                client.scores()
                reads["ok"] += 1
            except Exception:
                reads["errors"] += 1
            time.sleep(0.005)

    def flood(index: int) -> None:
        shard = shards[index]
        client = flood_clients[index]
        for start in range(0, len(shard), 16):
            try:
                client.ingest(shard[start : start + 16])
            except RequestFailedError:
                failed_batches[index] += 1

    try:
        reader_thread = threading.Thread(target=reader, daemon=True)
        reader_thread.start()
        threads = [
            threading.Thread(target=flood, args=(index,)) for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reader_thread.join(timeout=10)
        status, health, _ = request_json("127.0.0.1", server.port, "GET", "/v1/health")
        if status != 200:
            raise RuntimeError(f"health query failed under overload: {health}")
    finally:
        server.terminate()

    acked = sum(client.total_acked_events for client in flood_clients)
    admission = health.get("admission", {})
    latency = health.get("latency", {})
    return {
        "drill": "overload",
        "events": len(events),
        "clients": clients,
        "shed_requests": admission.get("shed"),
        "queue_high_water": admission.get("high_water"),
        "queue_capacity": admission.get("capacity"),
        "rate_limited": health.get("rate_limited"),
        "ingest_p99_ms": latency.get("ingest", {}).get("p99_ms"),
        "backpressure_responses": sum(
            client.backpressure_responses for client in flood_clients
        ),
        "retries": sum(client.retries for client in flood_clients),
        "failed_batches": sum(failed_batches),
        "reads_during_saturation": reads["ok"],
        "read_errors": reads["errors"],
        "acked_events": acked,
        "ingested_events": health.get("ingested"),
        "acked_all_present": acked == health.get("ingested"),
    }


def crash_drill(workdir: Path, events: list[dict[str, object]]) -> dict[str, object]:
    """SIGKILL mid-WAL-append under live traffic; recover from the WAL alone."""
    wal_path = workdir / "crash.wal"
    batch = 16
    kill_seq = (len(events) // batch // 2) * batch
    plan = json.dumps(
        {
            "seed": 0,
            "rules": [
                {
                    "site": "wal.append",
                    "action": "kill",
                    "match": {"seq": kill_seq},
                    "times": 1,
                }
            ],
        }
    )

    first = ServerProcess(
        workdir,
        "crash-a",
        ["--refresh-every", str(REFRESH_EVERY), "--wal", str(wal_path)],
        env_extra={"REPRO_FAULTS": plan},
    )
    client = ResilientClient(
        "127.0.0.1",
        first.port,
        client_id="crash-phase-1",
        policy=ClientRetryPolicy(max_attempts=2, timeout=10.0, backoff_base=0.01),
    )
    died_at = None
    try:
        for start in range(0, len(events), batch):
            try:
                client.ingest(events[start : start + batch])
            except RequestFailedError:
                died_at = start
                break
    finally:
        first.kill()
    if died_at is None:
        raise RuntimeError("crash drill: the planned wal.append kill never fired")
    acked = client.total_acked_events

    second = ServerProcess(
        workdir,
        "crash-b",
        ["--refresh-every", str(REFRESH_EVERY), "--wal", str(wal_path)],
    )
    try:
        survivor = ResilientClient("127.0.0.1", second.port, client_id="crash-phase-2")
        recovered_ingested = survivor.health()["ingested"]
        for start in range(died_at, len(events), batch):
            survivor.ingest(events[start : start + batch])
        interrupted = survivor.raw_scores()
    finally:
        second.terminate()

    control = _control_scores_body(events)
    return {
        "drill": "crash",
        "events": len(events),
        "kill_seq": kill_seq,
        "acked_before_kill": acked,
        "recovered_ingested": recovered_ingested,
        "acked_survived": recovered_ingested == acked,
        "crash_identical": interrupted == control,
        "interrupted_sha": hashlib.sha256(interrupted).hexdigest(),
        "control_sha": hashlib.sha256(control).hexdigest(),
    }


def run_benchmarks(
    *, quick: bool, clients: int, drills: tuple[str, ...] = DRILLS
) -> dict[str, object]:
    kwargs = trace_kwargs(quick)
    events = build_trace(**kwargs)
    results: list[dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        workdir = Path(tmp)
        if "throughput" in drills:
            results.append(throughput_drill(workdir, events, clients=clients))
        if "restart" in drills:
            results.append(restart_drill(workdir, events))
        if "overload" in drills:
            results.append(overload_drill(workdir, events, clients=clients))
        if "crash" in drills:
            results.append(crash_drill(workdir, events))
    floors = {
        name: (floor[1] if quick else floor[0]) for name, floor in FLOORS.items()
    }
    by_drill = {entry["drill"]: entry for entry in results}
    report = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_serve.py",
        "quick": quick,
        "clients": clients,
        "refresh_every": REFRESH_EVERY,
        "trace": {**kwargs, "events": len(events)},
        "floors": floors,
        "drills_selected": list(drills),
        "drills": results,
    }
    if "restart" in by_drill:
        report["restart_identical"] = bool(by_drill["restart"]["restart_identical"])
    if "throughput" in by_drill:
        report["errors"] = int(by_drill["throughput"]["errors"])
    return report


def check_against_baseline(
    report: dict[str, object], baseline: dict[str, object], *, tolerance: float
) -> list[str]:
    """Regression findings (empty when the gate passes)."""
    problems: list[str] = []
    drills = {entry["drill"]: entry for entry in report["drills"]}
    selected = tuple(report.get("drills_selected", DRILLS))
    floors = report.get("floors", {})
    throughput = drills.get("throughput")
    restart = drills.get("restart")

    if restart is None:
        if "restart" in selected:
            problems.append("restart: drill missing from the report")
    elif not restart["restart_identical"]:
        problems.append(
            "restart: scores after kill+restore differ bytewise from the "
            "uninterrupted run (snapshot/restore broke determinism)"
        )

    overload = drills.get("overload")
    if overload is None:
        if "overload" in selected:
            problems.append("overload: drill missing from the report")
    else:
        if not int(overload["shed_requests"] or 0):
            problems.append(
                "overload: no requests were shed (backpressure never engaged)"
            )
        if int(overload["read_errors"] or 0):
            problems.append(
                f"overload: {overload['read_errors']} read errors while shedding "
                "(reads must keep answering under overload)"
            )
        if not overload["acked_all_present"]:
            problems.append(
                f"overload: acked {overload['acked_events']} != ingested "
                f"{overload['ingested_events']} (events lost or double-ingested)"
            )
        if int(overload["queue_high_water"] or 0) > int(
            overload["queue_capacity"] or 0
        ):
            problems.append(
                "overload: admission depth exceeded capacity (queue is unbounded)"
            )
        overload_p99 = float(overload["ingest_p99_ms"] or 0.0)
        overload_ceiling = float(
            floors.get("overload_ingest_p99_ms_max", float("inf"))
        )
        if overload_p99 > overload_ceiling:
            problems.append(
                f"overload: ingest p99 {overload_p99:.1f}ms exceeds the "
                f"{overload_ceiling:.0f}ms ceiling under saturation"
            )

    crash = drills.get("crash")
    if crash is None:
        if "crash" in selected:
            problems.append("crash: drill missing from the report")
    else:
        if not crash["acked_survived"]:
            problems.append(
                f"crash: recovered {crash['recovered_ingested']} events but the "
                f"client was acked {crash['acked_before_kill']} (acked data lost)"
            )
        if not crash["crash_identical"]:
            problems.append(
                "crash: scores after SIGKILL+WAL recovery differ bytewise from "
                "the uninterrupted run"
            )

    if throughput is None:
        if "throughput" in selected:
            problems.append("throughput: drill missing from the report")
        return problems
    if int(throughput["errors"]):
        problems.append(f"throughput: {throughput['errors']} failed requests")

    rate = float(throughput["ingest_events_per_sec"])
    rate_floor = float(floors.get("ingest_events_per_sec", 0.0))
    if rate < rate_floor:
        problems.append(
            f"throughput: {rate:.0f} events/s is below the {rate_floor:.0f}/s floor"
        )
    p99 = float(throughput["query_p99_ms"])
    p99_ceiling = float(floors.get("query_p99_ms_max", float("inf")))
    if p99 > p99_ceiling:
        problems.append(
            f"throughput: query p99 {p99:.1f}ms exceeds the {p99_ceiling:.0f}ms ceiling"
        )

    if bool(report.get("quick")) == bool(baseline.get("quick")):
        base_drills = {entry["drill"]: entry for entry in baseline.get("drills", [])}
        base_throughput = base_drills.get("throughput")
        if base_throughput is not None:
            base_rate = float(base_throughput["ingest_events_per_sec"])
            allowed = (1.0 - tolerance) * base_rate
            if rate < allowed:
                problems.append(
                    f"throughput: {rate:.0f} events/s regressed >{tolerance:.0%} "
                    f"against baseline {base_rate:.0f} events/s"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="smaller trace for smoke testing"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent replay clients"
    )
    parser.add_argument(
        "--drill",
        choices=[*DRILLS, "all"],
        default="all",
        help="run one drill (or 'all', the default)",
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fail when results regressed against this committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional throughput regression against the baseline",
    )
    args = parser.parse_args(argv)

    drills = DRILLS if args.drill == "all" else (args.drill,)
    report = run_benchmarks(quick=args.quick, clients=args.clients, drills=drills)

    for entry in report["drills"]:
        if entry["drill"] == "throughput":
            print(
                f"throughput  {entry['events']} events via {entry['clients']} clients   "
                f"{entry['ingest_events_per_sec']:8.0f} ev/s   "
                f"query p50 {entry['query_p50_ms']:6.2f}ms  "
                f"p99 {entry['query_p99_ms']:6.2f}ms   "
                f"errors {entry['errors']}"
            )
        elif entry["drill"] == "restart":
            verdict = "byte-identical" if entry["restart_identical"] else "DIVERGED"
            print(
                f"restart     snapshot@{entry['snapshot_at']}/{entry['events']} "
                f"+ SIGKILL + restore -> {verdict}"
            )
        elif entry["drill"] == "overload":
            verdict = "exactly-once" if entry["acked_all_present"] else "LOST/DUPED"
            print(
                f"overload    shed {entry['shed_requests']}  "
                f"high-water {entry['queue_high_water']}/{entry['queue_capacity']}  "
                f"ingest p99 {entry['ingest_p99_ms']:.2f}ms  "
                f"reads {entry['reads_during_saturation']} "
                f"(errors {entry['read_errors']})  acked {entry['acked_events']} "
                f"-> {verdict}"
            )
        else:
            verdict = (
                "byte-identical"
                if entry["crash_identical"] and entry["acked_survived"]
                else "DIVERGED"
            )
            print(
                f"crash       SIGKILL@wal.append seq={entry['kill_seq']}  "
                f"acked {entry['acked_before_kill']} -> recovered "
                f"{entry['recovered_ingested']} -> {verdict}"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if args.check_baseline:
        with open(args.check_baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("serve gate passed (no regression against baseline)")
    else:
        # Even without a baseline, the exactness checks are non-negotiable.
        drills_run = {entry["drill"]: entry for entry in report["drills"]}
        restart = drills_run.get("restart")
        if restart is not None and not restart["restart_identical"]:
            print("REGRESSION: restart drill diverged", file=sys.stderr)
            return 1
        crash = drills_run.get("crash")
        if crash is not None and not (
            crash["crash_identical"] and crash["acked_survived"]
        ):
            print("REGRESSION: crash drill lost acked data or diverged", file=sys.stderr)
            return 1
        overload = drills_run.get("overload")
        if overload is not None and not overload["acked_all_present"]:
            print("REGRESSION: overload drill lost acked data", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

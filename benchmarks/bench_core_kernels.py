"""Benchmark the array-backed compute core against the pure-Python fallback.

Run as a script to produce ``BENCH_core.json`` (the CI artifact the
benchmark regression gate checks)::

    PYTHONPATH=src python benchmarks/bench_core_kernels.py --out BENCH_core.json

Every kernel is measured on both backends over identical evidence, and the
two score sets are compared so the file doubles as an agreement certificate:
a speedup obtained by computing something different would fail the
``max_abs_diff`` check before it ever flattered the numbers.

``--check-baseline PATH`` compares the freshly measured speedups against the
committed baseline (``benchmarks/baselines/BENCH_core_baseline.json``) and
exits non-zero when

* any kernel's vectorized speedup fell below ``(1 - tolerance)`` times its
  baseline speedup (default tolerance 25%) — speedup *ratios* rather than
  absolute seconds, so the gate is stable across machines of different
  speeds;
* the backends disagree beyond 1e-9 on any kernel; or
* the EigenTrust refresh at 500 peers is below the 10x floor.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections.abc import Callable

from repro.api import (
    BetaReputation,
    CouplingDynamics,
    CouplingState,
    EigenTrust,
    Feedback,
    HAS_NUMPY,
    InteractionSimulator,
    PowerTrust,
    SimpleAverageReputation,
    SimulationConfig,
    SocialNetworkSpec,
    accel,
    available_backends,
    generate_social_network,
)

SCHEMA_VERSION = 1

#: Peer-population sizes for the reputation-kernel measurements.
EIGENTRUST_SIZES = (100, 500, 2000)

#: Identified reports per peer in the synthetic evidence.
REPORTS_PER_PEER = 20

#: The acceptance floor for the headline number.
EIGENTRUST_500_FLOOR = 10.0

#: Cross-backend agreement bound on every kernel's scores.
AGREEMENT_TOLERANCE = 1e-9

#: Baseline entries whose pure-Python time is below this are informational
#: only — too little signal for a stable regression ratio.
MIN_GATED_PYTHON_SECONDS = 5e-3

#: Kernels excluded from the baseline gate regardless of their timing:
#: simulation_rounds is an end-to-end run measured once (graph generation,
#: GC and allocator noise included), far too variable for a 25% ratio gate.
UNGATED_KERNELS = frozenset({"simulation_rounds"})


def synthetic_feedback(n_peers: int, *, seed: int = 0) -> list[Feedback]:
    """Identified feedback over ``n_peers`` peers, power-law-ish targets."""
    rng = random.Random(seed)
    peers = [f"peer-{i:05d}" for i in range(n_peers)]
    reports: list[Feedback] = []
    transaction_id = 0
    for rater in peers:
        for _ in range(REPORTS_PER_PEER):
            # Preferential attachment keeps the trust matrix realistic: a
            # few popular providers soak up most of the assessments.
            subject = peers[min(int(rng.random() ** 2 * n_peers), n_peers - 1)]
            if subject == rater:
                subject = peers[(peers.index(rater) + 1) % n_peers]
            transaction_id += 1
            reports.append(
                Feedback(
                    transaction_id=transaction_id,
                    time=rng.randrange(50),
                    subject=subject,
                    rating=1.0 if rng.random() < 0.7 else 0.0,
                    rater=rater,
                )
            )
    return reports


def _time_best(operation: Callable[[], object], *, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = operation()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_mechanism(
    factory: Callable[[str], object],
    feedback: list[Feedback],
    *,
    repeats: int,
) -> dict[str, object]:
    """Time ``compute_scores`` (the refresh kernel) on both backends."""
    measurements: dict[str, float] = {}
    scores: dict[str, dict[str, float]] = {}
    for backend in ("python", "vectorized"):
        if backend == "vectorized" and not HAS_NUMPY:
            continue
        system = factory(backend)
        for report in feedback:
            system.record_feedback(report)
        seconds, result = _time_best(system.compute_scores, repeats=repeats)
        measurements[backend] = seconds
        scores[backend] = result
    entry: dict[str, object] = {
        "python_seconds": measurements["python"],
    }
    if "vectorized" in measurements:
        both = set(scores["python"]) | set(scores["vectorized"])
        entry["vectorized_seconds"] = measurements["vectorized"]
        entry["speedup"] = measurements["python"] / measurements["vectorized"]
        entry["max_abs_diff"] = max(
            (
                abs(scores["python"].get(peer, 0.0) - scores["vectorized"].get(peer, 0.0))
                for peer in both
            ),
            default=0.0,
        )
    return entry


def bench_coupling(*, batch: int, repeats: int) -> dict[str, object]:
    """Time a batch of coupling equilibria on both backends."""
    rng = random.Random(17)
    initials = [
        CouplingState(
            trust=rng.random(),
            satisfaction=rng.random(),
            reputation_efficiency=rng.random(),
            disclosure=rng.random(),
            honest_contribution=rng.random(),
            privacy_satisfaction=rng.random(),
        )
        for _ in range(batch)
    ]
    results: dict[str, list[CouplingState]] = {}
    measurements: dict[str, float] = {}
    for backend in ("python", "vectorized"):
        if backend == "vectorized" and not HAS_NUMPY:
            continue
        dynamics = CouplingDynamics(backend=backend)
        seconds, final = _time_best(lambda d=dynamics: d.equilibria(initials), repeats=repeats)
        measurements[backend] = seconds
        results[backend] = final
    entry: dict[str, object] = {"python_seconds": measurements["python"]}
    if "vectorized" in measurements:
        entry["vectorized_seconds"] = measurements["vectorized"]
        entry["speedup"] = measurements["python"] / measurements["vectorized"]
        entry["max_abs_diff"] = max(
            max(
                abs(a - b)
                for a, b in zip(p.as_dict().values(), v.as_dict().values(), strict=True)
            )
            for p, v in zip(results["python"], results["vectorized"], strict=True)
        )
    return entry


def bench_simulation(*, n_users: int, rounds: int, repeats: int) -> dict[str, object]:
    """Time full simulation rounds (batched loop + vectorized refresh)."""

    def run(backend: str) -> dict[str, float]:
        graph = generate_social_network(
            SocialNetworkSpec(n_users=n_users, malicious_fraction=0.25, seed=23)
        )
        reputation = EigenTrust(backend=backend)
        simulator = InteractionSimulator(
            graph,
            SimulationConfig(rounds=rounds, seed=23, backend=backend),
            reputation=reputation,
        )
        simulator.run()
        return reputation.refresh()

    measurements: dict[str, float] = {}
    scores: dict[str, dict[str, float]] = {}
    for backend in ("python", "vectorized"):
        if backend == "vectorized" and not HAS_NUMPY:
            continue
        seconds, result = _time_best(lambda b=backend: run(b), repeats=repeats)
        measurements[backend] = seconds
        scores[backend] = result
    entry: dict[str, object] = {"python_seconds": measurements["python"]}
    if "vectorized" in measurements:
        entry["vectorized_seconds"] = measurements["vectorized"]
        entry["speedup"] = measurements["python"] / measurements["vectorized"]
        entry["max_abs_diff"] = max(
            (
                abs(scores["python"][peer] - scores["vectorized"][peer])
                for peer in scores["python"]
            ),
            default=0.0,
        )
    return entry


def run_benchmarks(*, repeats: int, quick: bool = False) -> dict[str, object]:
    """Measure every kernel pair with the incremental layer disabled.

    This benchmark certifies the *cold* python-vs-vectorized kernel gap;
    the incremental refresh layer (which is backend-independent and would
    make both columns measure the same code) has its own benchmark in
    ``bench_end_to_end.py``.
    """
    with accel.override(incremental_refresh=False):
        return _run_benchmarks_cold(repeats=repeats, quick=quick)


def _run_benchmarks_cold(*, repeats: int, quick: bool) -> dict[str, object]:
    sizes = EIGENTRUST_SIZES if not quick else (100, 500)
    kernels: list[dict[str, object]] = []

    for n_peers in sizes:
        feedback = synthetic_feedback(n_peers, seed=n_peers)
        entry = bench_mechanism(
            lambda backend: EigenTrust(
                pretrusted=[f"peer-{i:05d}" for i in range(3)], backend=backend
            ),
            feedback,
            repeats=repeats,
        )
        entry.update(kernel="eigentrust_refresh", n=n_peers)
        kernels.append(entry)

    mid = 500
    feedback_mid = synthetic_feedback(mid, seed=mid)
    entry = bench_mechanism(
        lambda backend: PowerTrust(backend=backend), feedback_mid, repeats=repeats
    )
    entry.update(kernel="powertrust_refresh", n=mid)
    kernels.append(entry)

    large = 2000 if not quick else 500
    feedback_large = synthetic_feedback(large, seed=large)
    entry = bench_mechanism(
        lambda backend: BetaReputation(forgetting=0.98, backend=backend),
        feedback_large,
        repeats=repeats,
    )
    entry.update(kernel="beta_refresh", n=large)
    kernels.append(entry)

    entry = bench_mechanism(
        lambda backend: SimpleAverageReputation(backend=backend),
        feedback_large,
        repeats=repeats,
    )
    entry.update(kernel="average_refresh", n=large)
    kernels.append(entry)

    entry = bench_coupling(batch=64 if quick else 256, repeats=repeats)
    entry.update(kernel="coupling_equilibria", n=64 if quick else 256)
    kernels.append(entry)

    # Best-of-3: a single end-to-end run is far too noisy (GC, allocator,
    # CPU contention) even for this ungated, informational entry.
    entry = bench_simulation(n_users=60 if quick else 150, rounds=3 if quick else 5, repeats=3)
    entry.update(kernel="simulation_rounds", n=60 if quick else 150)
    kernels.append(entry)

    headline = next(
        (
            k.get("speedup")
            for k in kernels
            if k["kernel"] == "eigentrust_refresh" and k["n"] == 500
        ),
        None,
    )
    agreement_ok = all(k.get("max_abs_diff", 0.0) <= AGREEMENT_TOLERANCE for k in kernels)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_core_kernels.py",
        "backends": list(available_backends()),
        "config": {
            "sizes": list(sizes),
            "reports_per_peer": REPORTS_PER_PEER,
            "repeats": repeats,
            "quick": quick,
        },
        "kernels": kernels,
        "eigentrust_500_speedup": headline,
        "eigentrust_500_floor": EIGENTRUST_500_FLOOR,
        "agreement_tolerance": AGREEMENT_TOLERANCE,
        "agreement_ok": agreement_ok,
    }


def check_against_baseline(
    report: dict[str, object], baseline: dict[str, object], *, tolerance: float
) -> list[str]:
    """Regression findings (empty when the gate passes)."""
    problems: list[str] = []
    if not report["agreement_ok"]:
        problems.append(f"backends disagree beyond {AGREEMENT_TOLERANCE} on at least one kernel")
    headline = report.get("eigentrust_500_speedup")
    if headline is not None and headline < EIGENTRUST_500_FLOOR:
        problems.append(
            f"eigentrust_refresh@500 speedup {headline:.1f}x is below the "
            f"{EIGENTRUST_500_FLOOR:.0f}x floor"
        )

    def by_key(payload: dict[str, object]) -> dict[tuple[str, int], dict[str, object]]:
        return {(k["kernel"], k["n"]): k for k in payload.get("kernels", []) if "speedup" in k}

    current = by_key(report)
    for key, base_entry in by_key(baseline).items():
        entry = current.get(key)
        if entry is None:
            continue
        if key[0] in UNGATED_KERNELS:
            continue
        if float(base_entry["python_seconds"]) < MIN_GATED_PYTHON_SECONDS:
            # Sub-5ms kernels flip tens of percent run to run; gating them
            # would make the CI job flaky without protecting anything real.
            continue
        floor = (1.0 - tolerance) * float(base_entry["speedup"])
        if float(entry["speedup"]) < floor:
            problems.append(
                f"{key[0]}@{key[1]}: speedup {entry['speedup']:.1f}x regressed "
                f">{tolerance:.0%} against baseline {base_entry['speedup']:.1f}x"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON report here")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--quick", action="store_true", help="smaller sizes for smoke testing")
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fail when speedups regressed against this committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression against the baseline",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(repeats=args.repeats, quick=args.quick)

    for kernel in report["kernels"]:
        label = f"{kernel['kernel']}@{kernel['n']}"
        if "speedup" in kernel:
            print(
                f"{label:28s} python {kernel['python_seconds'] * 1e3:9.2f} ms   "
                f"vectorized {kernel['vectorized_seconds'] * 1e3:9.2f} ms   "
                f"speedup {kernel['speedup']:7.1f}x   "
                f"max|diff| {kernel['max_abs_diff']:.2e}"
            )
        else:
            print(
                f"{label:28s} python {kernel['python_seconds'] * 1e3:9.2f} ms   "
                "(numpy unavailable)"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if args.check_baseline:
        with open(args.check_baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("benchmark gate passed (no regression against baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

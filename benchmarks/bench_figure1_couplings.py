"""E-F1 (Figure 1): the coupling structure among the four concepts.

Benchmarks the analytic coupling-matrix computation and (once) the
scenario-backed contrasts, asserting that every arrow of Figure 1 is
reproduced with the right sign.
"""

from repro.api import CouplingDynamics, coupling_matrix, figure1


def test_bench_coupling_matrix(benchmark):
    """Sensitivity matrix of the Section-3 dynamics (the analytic Figure 1)."""
    matrix = benchmark(lambda: coupling_matrix(CouplingDynamics()))
    for (source, target), expected in figure1.EXPECTED_SIGNS.items():
        measured = matrix[source][target]
        assert (measured > 0) == (expected > 0), (source, target, measured)


def test_bench_figure1_full_experiment(benchmark):
    """Full E-F1: analytic matrix plus simulation-backed contrasts."""
    result = benchmark.pedantic(
        lambda: figure1.run(n_users=30, rounds=12, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.all_signs_match
    assert result.all_contrasts_hold
    print()
    print(figure1.report(result))

"""E-F2L (Figure 2, left): the Area-A good-tradeoff region."""

from repro.api import figure2_left


def test_bench_area_a_grid(benchmark):
    """Sweep the (sharing level x policy strictness) grid and locate Area A."""
    result = benchmark(figure2_left.run)
    assert result.area_a_points, "Area A must not be empty"
    assert 0.0 < result.area_a_fraction < 1.0
    assert result.best_in_area_a
    # The extreme no-sharing setting can never reach Area A: the reputation
    # facet is zero there.
    assert all(point.settings.sharing_level > 0.0 for point in result.area_a_points)
    print()
    print(figure2_left.report(result))


def test_bench_area_a_threshold_sensitivity(benchmark):
    """Area A shrinks monotonically as the acceptability threshold rises."""

    def sweep_thresholds():
        return [
            len(figure2_left.run(threshold=threshold).area_a_points)
            for threshold in (0.4, 0.5, 0.6, 0.7)
        ]

    sizes = benchmark(sweep_thresholds)
    assert all(a >= b for a, b in zip(sizes, sizes[1:], strict=False))

"""Shared configuration for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's index (a figure or
a qualitative claim of the paper) and asserts its expected *shape* besides
timing it.  Heavy simulation-backed experiments are run through
``benchmark.pedantic(..., rounds=1)`` so the whole harness stays laptop-fast;
analytic components are benchmarked normally.
"""

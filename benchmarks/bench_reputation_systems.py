"""E-R1: reputation mechanisms vs adversary mixes, plus substrate microbenchmarks."""

from repro.api import (
    EigenTrust,
    InteractionSimulator,
    SimulationConfig,
    SocialNetworkSpec,
    generate_social_network,
    reputation_eval,
)
from tests.conftest import make_feedback


def test_bench_reputation_mechanism_grid(benchmark):
    """The E-R1 mechanism x malicious-fraction table."""
    result = benchmark.pedantic(
        lambda: reputation_eval.run(
            mechanisms=("none", "average", "beta", "trustme", "eigentrust", "powertrust"),
            malicious_fractions=(0.3,),
            n_users=40,
            rounds=20,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    improvements = result.improvement_over_baseline()
    assert set(improvements) == {"average", "beta", "trustme", "eigentrust", "powertrust"}
    assert all(value > 0 for value in improvements.values()), improvements
    print()
    print(reputation_eval.report(result))


def test_bench_eigentrust_refresh(benchmark):
    """Power-iteration refresh cost on a 60-peer evidence base."""
    system = EigenTrust()
    tid = 0
    for rater in range(30):
        for subject in range(30, 60):
            tid += 1
            system.record_feedback(
                make_feedback(
                    f"p{subject}",
                    1.0 if subject % 3 else 0.0,
                    rater=f"p{rater}",
                    transaction_id=tid,
                )
            )

    def refresh():
        system._dirty = True
        return system.refresh()

    scores = benchmark(refresh)
    assert len(scores) == 60


def test_bench_interaction_simulation_round_throughput(benchmark):
    """Simulated rounds per second on an 80-peer network with EigenTrust."""
    graph = generate_social_network(SocialNetworkSpec(n_users=80, malicious_fraction=0.3, seed=1))

    def run_simulation():
        simulator = InteractionSimulator(
            graph, SimulationConfig(rounds=10, seed=2), reputation=EigenTrust()
        )
        return simulator.run()

    result = benchmark.pedantic(run_simulation, rounds=1, iterations=1)
    assert result.metrics.total_transactions > 0

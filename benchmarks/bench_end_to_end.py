"""Benchmark the end-to-end pipeline: cold versus accelerated execution.

Run as a script to produce ``BENCH_e2e.json`` (the CI artifact the e2e
regression gate checks)::

    PYTHONPATH=src python benchmarks/bench_end_to_end.py --out BENCH_e2e.json

Where ``bench_core_kernels.py`` measures point kernels, this benchmark
measures whole workloads — the figure-1 experiment, the robustness
scenario×mechanism matrix (single pass and across the standard
detection-threshold grid), a reference sweep campaign, and the refresh
layer of one long simulation — each twice with the same binary:

* **cold**: every acceleration layer off (``repro.core.accel`` master
  switch) — per-refresh store rescans, per-cell scenario setup, no run
  memoization, fresh worker pools;
* **accelerated**: the defaults — incremental refresh, shared scenario
  setup, per-worker scenario-run memoization, persistent chunked sweep
  workers.

Every workload's outputs are byte-compared across the two modes, so the
file doubles as the acceleration layer's *purity certificate*: a speedup
obtained by computing something different fails ``agreement_ok`` before it
ever flatters a number.

``--reference KEY=SECONDS`` embeds externally measured wall times (e.g.
the same workload executed at the pre-PR commit) under
``pre_pr_references`` for the committed report; references are
informational and never gated.

``--check-baseline PATH`` compares freshly measured speedups against the
committed baseline (``benchmarks/baselines/BENCH_e2e_baseline.json``) and
exits non-zero when any gated workload's speedup fell below
``(1 - tolerance)`` times its baseline speedup, when a workload's speedup
fell below its absolute floor, or when any mode disagreement was detected.
Speedup *ratios* rather than absolute seconds keep the gate stable across
machines of different speeds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from collections.abc import Callable

from repro.api import (
    ScenarioRunConfig,
    SweepExecutor,
    SweepSpec,
    accel,
    clear_network_cache,
    clear_run_cache,
    clear_setup_cache,
    profiled,
    records_to_json,
    robustness,
    run_experiment_structured,
    run_scenario,
    run_sweep,
)

SCHEMA_VERSION = 1

#: Absolute speedup floors per gated workload, (full, quick) mode.  The
#: committed baseline carries the measured values; these floors catch a
#: wholesale loss of the acceleration layer even with a stale baseline.
FLOORS = {
    "robustness_threshold_matrix": (2.5, 1.5),
    "reference_sweep": (1.5, 1.1),
    "refresh_layer_beta": (2.5, 1.3),
}

#: Informational workloads are reported and agreement-checked but their
#: speedups are not gated: single-pass wall clock is engine-bound, and the
#: eigentrust refresh layer is dominated by the power iteration, which is
#: byte-identical by contract and therefore not accelerated — only its
#: matrix/overlay rebuild is.
UNGATED_WORKLOADS = frozenset({"figure1", "robustness_matrix", "refresh_layer_eigentrust"})


def _clear_caches() -> None:
    clear_network_cache()
    clear_setup_cache()
    clear_run_cache()


@contextmanager
def cold_pipeline():
    """All acceleration off, also for worker processes forked inside."""
    previous = os.environ.get("REPRO_ACCEL")
    os.environ["REPRO_ACCEL"] = "off"
    try:
        with accel.override(disable_all=True):
            yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_ACCEL", None)
        else:
            os.environ["REPRO_ACCEL"] = previous


def _timed(operation: Callable[[], object]) -> tuple[float, object]:
    _clear_caches()
    start = time.perf_counter()
    result = operation()
    return time.perf_counter() - start, result


def _measure_workload(
    name: str, operation: Callable[[], object], *, accelerated_extra: dict | None = None
) -> dict[str, object]:
    """Run one workload cold and accelerated; byte-compare the outputs."""
    with cold_pipeline():
        cold_seconds, cold_payload = _timed(operation)
    accel_seconds, accel_payload = _timed(operation)
    entry: dict[str, object] = {
        "workload": name,
        "cold_seconds": cold_seconds,
        "accelerated_seconds": accel_seconds,
        "speedup": cold_seconds / accel_seconds if accel_seconds > 0 else float("inf"),
        "agreement_ok": cold_payload == accel_payload,
    }
    if accelerated_extra:
        entry.update(accelerated_extra)
    return entry


# -- workloads -------------------------------------------------------------------


def figure1_workload(quick: bool) -> Callable[[], str]:
    kwargs = (
        dict(n_users=25, rounds=10, sharing_levels=[0.3, 0.7])
        if quick
        else dict(n_users=40, rounds=20)
    )

    def run() -> str:
        return json.dumps(run_experiment_structured("figure1", **kwargs), sort_keys=True)

    return run


def matrix_kwargs(quick: bool) -> dict[str, object]:
    if quick:
        return dict(n_users=24, rounds=30, seed=0)
    return dict(n_users=40, rounds=120, seed=0)


def robustness_matrix_workload(quick: bool) -> Callable[[], str]:
    kwargs = matrix_kwargs(quick)

    def run() -> str:
        return json.dumps(robustness.summarize(robustness.run(**kwargs)), sort_keys=True)

    return run


#: The standard detection-threshold sensitivity grid: robustness
#: conclusions should not hinge on the (arbitrary) detection threshold, so
#: the matrix is evaluated at each value.  Only the metric layer differs
#: between passes — exactly the redundancy the run cache eliminates.
DETECT_THRESHOLDS = (0.05, 0.1, 0.2)


def threshold_matrix_workload(quick: bool) -> Callable[[], str]:
    kwargs = matrix_kwargs(quick)

    def run() -> str:
        payloads = []
        # Requesting the run cache is harmless in cold mode: the master
        # kill switch still wins, so cold re-simulates every pass.
        with accel.override(run_cache=True):
            for threshold in DETECT_THRESHOLDS:
                result = robustness.run(detect_threshold=threshold, **kwargs)
                payloads.append(robustness.summarize(result))
        return json.dumps(payloads, sort_keys=True)

    return run


def sweep_spec(quick: bool) -> SweepSpec:
    grids = {
        "scenario": ["collusion-ring", "whitewash-wave", "slander"],
        "detect_threshold": list(DETECT_THRESHOLDS),
        "seed": [0],
        "n_users": [20 if quick else 40],
        "rounds": [10 if quick else 60],
    }
    return SweepSpec(experiment="robustness", grids=grids, seed=7)


def reference_sweep_workload(quick: bool, jobs: int) -> Callable[[], str]:
    spec = sweep_spec(quick)

    def run() -> str:
        if accel.flags().disable_all:
            result = run_sweep(spec, jobs=jobs)
        else:
            # Accelerated execution: persistent cache-warm workers, chunks
            # aligned with the scenario-major task order.
            with SweepExecutor(jobs, chunksize=len(DETECT_THRESHOLDS)) as executor:
                result = run_sweep(spec, executor=executor)
        return records_to_json(result.records, campaign=spec.campaign_metadata())

    return run


def refresh_layer_entry(quick: bool, mechanism: str) -> dict[str, object]:
    """Cold vs incremental refresh on one long simulation's refresh layer.

    Measured per mechanism because the layer's composition differs: the
    evidence-folding mechanisms (beta, average) replace an O(total reports)
    rescan per refresh with an O(new reports) fold — the textbook
    incremental win — while the power-iteration mechanisms keep their
    (identical-by-contract) iteration cost and shed only the matrix and
    overlay rebuild.
    """
    config = dict(
        scenario="collusion-ring",
        mechanism=mechanism,
        n_users=30 if quick else 50,
        rounds=120 if quick else 400,
        seed=0,
    )

    def run() -> tuple[str, float]:
        with profiled() as timer:
            result = run_scenario(ScenarioRunConfig(**config))
        payload = json.dumps(
            {
                "robustness": result.robustness.__dict__,
                "final_scores": result.final_scores,
            },
            sort_keys=True,
            default=str,
        )
        return payload, timer.seconds.get("refresh", 0.0)

    with cold_pipeline():
        cold_wall, (cold_payload, cold_refresh) = _timed(run)
    accel_wall, (accel_payload, accel_refresh) = _timed(run)
    return {
        "workload": f"refresh_layer_{mechanism}",
        "config": config,
        "cold_seconds": cold_refresh,
        "accelerated_seconds": accel_refresh,
        "speedup": cold_refresh / accel_refresh if accel_refresh > 0 else float("inf"),
        "cold_wall_seconds": cold_wall,
        "accelerated_wall_seconds": accel_wall,
        "wall_speedup": cold_wall / accel_wall if accel_wall > 0 else float("inf"),
        "agreement_ok": cold_payload == accel_payload,
    }


# -- report / gate ---------------------------------------------------------------


def run_benchmarks(*, quick: bool, jobs: int) -> dict[str, object]:
    workloads: list[dict[str, object]] = []

    workloads.append(_measure_workload("figure1", figure1_workload(quick)))
    workloads.append(_measure_workload("robustness_matrix", robustness_matrix_workload(quick)))
    workloads.append(
        _measure_workload(
            "robustness_threshold_matrix",
            threshold_matrix_workload(quick),
            accelerated_extra={"thresholds": list(DETECT_THRESHOLDS)},
        )
    )
    workloads.append(
        _measure_workload("reference_sweep", reference_sweep_workload(quick, jobs))
    )
    workloads.append(refresh_layer_entry(quick, "beta"))
    workloads.append(refresh_layer_entry(quick, "eigentrust"))

    floors = {name: (floor[1] if quick else floor[0]) for name, floor in FLOORS.items()}
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_end_to_end.py",
        "quick": quick,
        "jobs": jobs,
        "floors": floors,
        "workloads": workloads,
        "agreement_ok": all(entry["agreement_ok"] for entry in workloads),
    }


def check_against_baseline(
    report: dict[str, object], baseline: dict[str, object], *, tolerance: float
) -> list[str]:
    """Regression findings (empty when the gate passes)."""
    problems: list[str] = []
    if not report["agreement_ok"]:
        for entry in report["workloads"]:
            if not entry["agreement_ok"]:
                problems.append(
                    f"{entry['workload']}: cold and accelerated outputs differ "
                    "(acceleration changed results)"
                )
    floors = report.get("floors", {})
    current = {entry["workload"]: entry for entry in report["workloads"]}
    for name, floor in floors.items():
        entry = current.get(name)
        if entry is None:
            problems.append(f"{name}: gated workload missing from the report")
            continue
        if float(entry["speedup"]) < float(floor):
            problems.append(
                f"{name}: speedup {entry['speedup']:.2f}x is below the {floor:.1f}x floor"
            )
    if bool(report.get("quick")) == bool(baseline.get("quick")):
        # Ratio regression only compares like with like: quick and full
        # workloads have different speedup profiles, so a cross-mode ratio
        # would be meaningless (the absolute floors above still apply).
        for base_entry in baseline.get("workloads", []):
            name = base_entry["workload"]
            if name in UNGATED_WORKLOADS:
                continue
            entry = current.get(name)
            if entry is None:
                continue
            allowed = (1.0 - tolerance) * float(base_entry["speedup"])
            if float(entry["speedup"]) < allowed:
                problems.append(
                    f"{name}: speedup {entry['speedup']:.2f}x regressed >"
                    f"{tolerance:.0%} against baseline {base_entry['speedup']:.2f}x"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON report here")
    parser.add_argument("--quick", action="store_true", help="smaller sizes for smoke testing")
    parser.add_argument("--jobs", type=int, default=2, help="sweep worker processes")
    parser.add_argument(
        "--reference",
        action="append",
        default=[],
        metavar="KEY=SECONDS",
        help=(
            "externally measured pre-PR wall time for a workload "
            "(informational; repeatable)"
        ),
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fail when speedups regressed against this committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional speedup regression against the baseline",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick, jobs=args.jobs)

    references: dict[str, float] = {}
    for option in args.reference:
        key, _, seconds = option.partition("=")
        references[key] = float(seconds)
    if references:
        report["pre_pr_references"] = {
            "note": (
                "wall-clock seconds of the same workload measured at the "
                "pre-PR commit on the machine that generated this report"
            ),
            "seconds": references,
        }
        for entry in report["workloads"]:
            reference = references.get(entry["workload"])
            if reference is not None:
                entry["pre_pr_seconds"] = reference
                entry["speedup_vs_pre_pr"] = reference / entry["accelerated_seconds"]

    for entry in report["workloads"]:
        line = (
            f"{entry['workload']:28s} cold {entry['cold_seconds']:7.2f}s   "
            f"accelerated {entry['accelerated_seconds']:7.2f}s   "
            f"speedup {entry['speedup']:5.2f}x   "
            f"agreement {'ok' if entry['agreement_ok'] else 'FAILED'}"
        )
        if "speedup_vs_pre_pr" in entry:
            line += f"   vs pre-PR {entry['speedup_vs_pre_pr']:5.2f}x"
        print(line)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if args.check_baseline:
        with open(args.check_baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("benchmark gate passed (no regression against baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

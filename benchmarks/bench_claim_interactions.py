"""E-C1..E-C5: the five qualitative couplings of Section 3."""

from repro.api import CouplingDynamics, claims


def test_bench_coupling_equilibrium(benchmark):
    """Fixed-point computation of the Section-3 dynamics (used by every claim)."""
    equilibrium = benchmark(CouplingDynamics().equilibrium)
    assert 0.0 <= equilibrium.trust <= 1.0


def test_bench_all_section3_claims(benchmark):
    """Full claim battery (analytic dynamics + simulation for E-C3)."""
    result = benchmark.pedantic(
        lambda: claims.run(n_users=30, rounds=12, seed=0),
        rounds=1,
        iterations=1,
    )
    outcomes = result.by_id()
    assert set(outcomes) == {"E-C1", "E-C2", "E-C3", "E-C4", "E-C5"}
    assert result.all_hold, [
        (claim_id, outcome.detail) for claim_id, outcome in outcomes.items() if not outcome.holds
    ]
    print()
    print(claims.report(result))

"""E-S1: allocation strategies vs long-run participant satisfaction."""

from repro.api import satisfaction_eval


def test_bench_allocation_strategy_comparison(benchmark):
    """The E-S1 strategy table over a shared workload."""
    result = benchmark.pedantic(
        lambda: satisfaction_eval.run(n_providers=12, n_consumers=25, rounds=30, seed=0),
        rounds=1,
        iterations=1,
    )
    by_strategy = result.by_strategy()
    balanced = by_strategy["satisfaction-balanced"]
    quality = by_strategy["quality"]
    random_strategy = by_strategy["random"]

    # The satisfaction-balanced strategy protects the worst-off provider...
    for name, outcome in by_strategy.items():
        if name != "satisfaction-balanced":
            assert balanced.min_provider_satisfaction >= outcome.min_provider_satisfaction
    # ...while the quality-first strategy wins on raw quality but imposes more.
    assert quality.mean_quality >= balanced.mean_quality
    assert quality.imposed_fraction > balanced.imposed_fraction
    # Any informed strategy beats random on consumer satisfaction.
    assert quality.mean_consumer_satisfaction > random_strategy.mean_consumer_satisfaction
    print()
    print(satisfaction_eval.report(result))

"""Parameter-sweep campaigns: map the coupling surface, not single points.

The paper's whole argument is about how privacy, reputation, satisfaction
and trust respond *jointly* to the system settings — which is a question
about a surface, answered by sweeping parameters.  This example runs two
campaigns through the sweep engine:

1. a cartesian grid over the Area-A threshold and the deployed reputation
   mechanism for the analytic Figure-2-left experiment, executed on two
   worker processes;
2. a Latin-hypercube sample over the continuous threshold range, showing
   the sampler API for spaces too big to grid out.

Both produce structured :class:`ExperimentRecord`s that serialize to JSON
and CSV byte-identically regardless of worker count.

Run with::

    PYTHONPATH=src python examples/parameter_sweep.py
"""

from repro.api import (
    ParamRange,
    SweepSpec,
    format_sweep_summary,
    records_to_csv,
    run_sweep,
)


def main() -> None:
    grid_spec = SweepSpec(
        experiment="figure2-left",
        grids={
            "threshold": [0.4, 0.5, 0.6],
            "mechanism": ["eigentrust", "beta"],
        },
        seed=2010,
    )
    grid_result = run_sweep(grid_spec, jobs=2)
    print(format_sweep_summary(grid_result.records))
    print()
    print(
        f"grid campaign: {len(grid_result.records)} tasks in "
        f"{grid_result.wall_time:.2f}s on {grid_result.jobs} workers"
    )
    print()

    latin_spec = SweepSpec(
        experiment="figure2-left",
        ranges={"threshold": ParamRange(0.3, 0.7)},
        sampler="latin",
        n_samples=5,
        seed=2010,
    )
    latin_result = run_sweep(latin_spec, jobs=1)
    print(format_sweep_summary(latin_result.records, max_metric_columns=4))
    print()

    best = max(
        (record for record in grid_result.records if record.ok),
        key=lambda record: record.metrics["best_trust"],
    )
    print(
        "best grid setting:",
        best.params,
        f"-> trust {best.metrics['best_trust']:.3f}",
    )
    print()
    print("first CSV lines of the grid campaign:")
    for line in records_to_csv(grid_result.records).splitlines()[:3]:
        print(" ", line)


if __name__ == "__main__":
    main()

"""Attack campaigns from the scenario catalog, end to end.

The paper's Section 2.2 motivates reputation mechanisms by the adversaries
they must survive: malicious peers, traitors, whitewashers — and the
literature adds collusion rings, slander and sybil floods.  This example

1. lists the declarative scenario catalog,
2. runs one scenario (a whitewashing wave) against two mechanisms and
   prints the per-round separation timeline — watch the gap collapse every
   time the attackers shed their identities,
3. runs a custom-knobbed collusion ring (small but dense) on the hostile
   ``adversarial-lab`` network preset and prints its robustness metrics.

Run with::

    PYTHONPATH=src python examples/attack_scenarios.py
"""

from repro.api import CATALOG, ScenarioRunConfig, run_scenario


def main() -> None:
    print("scenario catalog:")
    for name, spec in CATALOG.items():
        knobs = ", ".join(f"{key}={value}" for key, value in spec.knobs.items()) or "-"
        print(f"  {name:22s} {spec.description}")
        print(f"  {'':22s}   knobs: {knobs}")
    print()

    print("whitewash-wave: good-vs-bad separation per round")
    for mechanism in ("average", "eigentrust"):
        result = run_scenario(
            scenario="whitewash-wave",
            mechanism=mechanism,
            n_users=30,
            rounds=16,
            seed=42,
        )
        start, end = result.campaign.window
        timeline = " ".join(
            f"{observation.separation:+.2f}" for observation in result.trace.observations
        )
        print(f"  {mechanism:10s} attack window [{start}, {end}): {timeline}")
    print()

    print("dense collusion ring on the adversarial-lab preset:")
    result = run_scenario(
        ScenarioRunConfig(
            scenario="collusion-ring",
            mechanism="eigentrust",
            preset="adversarial-lab",
            rounds=20,
            seed=7,
            knobs={"ring_fraction": 0.4, "density": 1.0},
        )
    )
    metrics = result.robustness
    print(
        f"  separation before/during/after the attack: "
        f"{metrics.baseline_separation:+.3f} / {metrics.attack_separation:+.3f} / "
        f"{metrics.post_separation:+.3f}"
    )
    print(f"  time to detect:  {metrics.time_to_detect} rounds (-1 = never)")
    print(f"  time to recover: {metrics.time_to_recover} rounds (-1 = never)")
    print(f"  final rank correlation vs ground truth: {metrics.final_rank_correlation:+.3f}")


if __name__ == "__main__":
    main()

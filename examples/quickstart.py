"""Quickstart: run one end-to-end scenario and inspect the trust report.

Builds a synthetic social network, runs the interaction simulation with
EigenTrust and PriServ-style privacy accounting, evaluates the three facets
(privacy, reputation, satisfaction) and prints the resulting trust towards
the system — globally and for a few individual users.

Run with::

    python examples/quickstart.py
"""

from repro import quick_scenario
from repro.api import format_table


def main() -> None:
    result = quick_scenario(n_users=60, rounds=30, seed=42)

    print("Scenario:", result.config.n_users, "users,", result.config.rounds, "rounds")
    print("Reputation mechanism:", result.config.settings.reputation_mechanism)
    print()

    facet_rows = [
        ("privacy", result.facets.privacy),
        ("reputation", result.facets.reputation),
        ("satisfaction", result.facets.satisfaction),
    ]
    print(format_table(["facet", "score"], facet_rows, title="Global facet scores"))
    print()
    print(f"Global trust towards the system: {result.trust.global_trust:.3f}")
    print(f"Inside Area A (all facets above threshold): {result.trust.in_area_a}")
    print(f"Facet currently limiting trust: {result.trust.limiting_facet()}")
    print()

    per_user = sorted(result.trust.per_user_trust.items(), key=lambda item: item[1])
    rows = [(user, trust) for user, trust in per_user[:3]]
    rows += [(user, trust) for user, trust in per_user[-3:]]
    print(
        format_table(
            ["user", "trust towards the system"],
            rows,
            title="Least and most trusting users",
        )
    )
    print()
    print(
        "Steady-state malicious interaction rate:",
        f"{result.malicious_interaction_rate:.3f}",
    )
    print("Disclosed feedback reports:", len(result.simulation.disclosed_feedbacks))
    print("Disclosure ledger entries:", len(result.ledger))


if __name__ == "__main__":
    main()

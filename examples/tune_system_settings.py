"""Designer workflow: find the settings that maximize trust (Figure 2).

The paper's stated objective is to help the designer "obtain the right
settings in order to maximize the user's trust towards the system".  This
example walks that workflow: sweep the information-sharing level for several
reputation mechanisms, locate the Area-A region where all three facets are
acceptable, inspect the Pareto front, and print the recommended setting.

Run with::

    python examples/tune_system_settings.py
"""

from repro.api import Aggregator, SettingsExplorer, SystemSettings, format_table


def main() -> None:
    rows = []
    recommendations = []
    for mechanism in ("average", "beta", "trustme", "powertrust", "eigentrust"):
        explorer = SettingsExplorer(
            base_settings=SystemSettings(reputation_mechanism=mechanism),
            aggregator=Aggregator.GEOMETRIC,
        )
        points = explorer.sweep_sharing_levels(resolution=41)
        best = explorer.best(points)
        area = explorer.area_a(points)
        rows.append(
            (
                mechanism,
                best.sharing_level,
                best.trust,
                best.facets.privacy,
                best.facets.reputation,
                best.facets.satisfaction,
                len(area),
            )
        )
        recommendations.append((mechanism, best))

    print(
        format_table(
            [
                "mechanism",
                "best sharing level",
                "max trust",
                "privacy",
                "reputation",
                "satisfaction",
                "Area-A settings",
            ],
            rows,
            title="Trust-maximizing settings per reputation mechanism",
        )
    )
    print()

    overall = max(recommendations, key=lambda item: item[1].trust)
    mechanism, best = overall
    print(
        "Recommended deployment: "
        f"mechanism={mechanism}, sharing level={best.sharing_level:.2f}, "
        f"expected trust={best.trust:.3f} (inside Area A: {best.in_area_a})"
    )
    print()

    explorer = SettingsExplorer(base_settings=SystemSettings(reputation_mechanism=mechanism))
    points = explorer.sweep_sharing_levels(resolution=21)
    front = explorer.pareto_front(points)
    print(
        format_table(
            ["sharing level", "privacy", "reputation", "satisfaction", "trust"],
            [
                (
                    point.sharing_level,
                    point.facets.privacy,
                    point.facets.reputation,
                    point.facets.satisfaction,
                    point.trust,
                )
                for point in front
            ],
            title=f"Pareto front of settings for {mechanism}",
        )
    )


if __name__ == "__main__":
    main()

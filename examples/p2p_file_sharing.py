"""P2P file sharing under attack: comparing reputation mechanisms.

The motivating workload of the reputation literature the paper surveys:
peers exchange files, a third of the population serves corrupted content and
badmouths honest peers, some of them collude, and some whitewash their
identity when their reputation collapses.  The example runs the same
population with no reputation, the naive average, Beta and EigenTrust, and
shows how much each mechanism reduces the rate of corrupted downloads.

Run with::

    python examples/p2p_file_sharing.py
"""

from repro.api import (
    BetaReputation,
    ChurnModel,
    EigenTrust,
    InteractionSimulator,
    SimpleAverageReputation,
    SimulationConfig,
    SocialNetworkSpec,
    format_table,
    generate_social_network,
    pairwise_ranking_accuracy,
)


def run_mechanism(graph, mechanism, *, label: str, seed: int = 7):
    config = SimulationConfig(
        rounds=40,
        sharing_level=0.9,
        whitewasher_fraction=0.2,
        collusion_fraction=0.3,
        churn=ChurnModel(leave_probability=0.05, return_probability=0.6),
        seed=seed,
    )
    simulator = InteractionSimulator(graph, config, reputation=mechanism)
    result = simulator.run()
    accuracy = (
        pairwise_ranking_accuracy(mechanism.scores(), result.ground_truth_honesty)
        if mechanism is not None
        else 0.5
    )
    return {
        "mechanism": label,
        "corrupted download rate": result.metrics.tail_malicious_rate(),
        "download success rate": result.metrics.tail_success_rate(),
        "ranking accuracy": accuracy,
        "feedback disclosed": len(result.disclosed_feedbacks),
    }


def main() -> None:
    spec = SocialNetworkSpec(
        n_users=80,
        topology="barabasi_albert",
        malicious_fraction=0.3,
        seed=7,
    )
    graph = generate_social_network(spec)
    print(
        f"File-sharing network: {len(graph)} peers, {graph.number_of_edges()} links, "
        f"{(1 - graph.honest_fraction()):.0%} malicious"
    )
    print()

    # EigenTrust's defence against collusion is its pre-trusted peer set:
    # seed it with a handful of honest, well-connected users.
    honest_hubs = sorted(
        (user.user_id for user in graph.users() if user.is_honest),
        key=lambda uid: -graph.degree(uid),
    )[:4]

    rows = []
    for label, mechanism in [
        ("no reputation", None),
        ("average", SimpleAverageReputation()),
        ("beta", BetaReputation(forgetting=0.98)),
        ("eigentrust", EigenTrust(restart_weight=0.2)),
        ("eigentrust (pre-trusted)", EigenTrust(restart_weight=0.3, pretrusted=honest_hubs)),
    ]:
        outcome = run_mechanism(graph, mechanism, label=label)
        rows.append(
            (
                outcome["mechanism"],
                outcome["corrupted download rate"],
                outcome["download success rate"],
                outcome["ranking accuracy"],
                outcome["feedback disclosed"],
            )
        )

    print(
        format_table(
            [
                "mechanism",
                "corrupted download rate",
                "download success rate",
                "ranking accuracy",
                "feedback disclosed",
            ],
            rows,
            title="Reputation mechanisms under collusion, whitewashing and churn",
        )
    )


if __name__ == "__main__":
    main()

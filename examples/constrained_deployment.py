"""Constrained deployment: pick settings under application requirements.

Section 4 asks for a method that maximizes trust "while respecting the
system/application constraints".  This example plays a deployment engineer
choosing the settings of three different applications on the same substrate:

* a health-data community that must keep the privacy facet above 0.75,
* a file-sharing swarm that must keep the reputation facet above 0.7,
* a general-purpose social network with balanced requirements,

using :class:`repro.core.optimizer.TrustOptimizer` on the analytic facet
model, then validating the recommended settings with a full simulation on a
matching network preset.

Run with::

    python examples/constrained_deployment.py
"""

from repro.api import (
    FacetConstraints,
    Scenario,
    ScenarioConfig,
    SystemSettings,
    TrustOptimizer,
    format_table,
    preset_spec,
)

APPLICATIONS = [
    # Health data: privacy is non-negotiable, reputation merely nice to have.
    (
        "health community",
        FacetConstraints(min_privacy=0.9, min_satisfaction=0.5),
        "friendship",
    ),
    # A swarm with 30% dishonest peers: reputation power is non-negotiable.
    (
        "file-sharing swarm",
        FacetConstraints(min_reputation=0.85, min_satisfaction=0.5),
        "file-sharing",
    ),
    # The balanced, general-purpose deployment (the Area-A compromise).
    (
        "general social network",
        FacetConstraints(min_privacy=0.55, min_reputation=0.55, min_satisfaction=0.55),
        "professional",
    ),
]


def validate_with_simulation(settings: SystemSettings, preset_name: str) -> float:
    """Run a full scenario with the recommended settings on a preset network."""
    spec = preset_spec(preset_name, seed=5)
    result = Scenario(
        ScenarioConfig(
            n_users=min(spec.n_users, 60),  # keep the validation runs quick
            rounds=20,
            seed=5,
            topology=spec.topology,
            malicious_fraction=spec.malicious_fraction,
            settings=settings,
        )
    ).run()
    return result.trust.global_trust


def main() -> None:
    rows = []
    for name, constraints, preset_name in APPLICATIONS:
        optimizer = TrustOptimizer(refine_rounds=1)
        outcome = optimizer.optimize(constraints)
        if not outcome.found:
            rows.append((name, "infeasible", "-", "-", "-", "-", "-"))
            continue
        best = outcome.best
        simulated_trust = validate_with_simulation(best.settings, preset_name)
        rows.append(
            (
                name,
                best.settings.reputation_mechanism,
                best.settings.sharing_level,
                "yes" if best.settings.anonymous_feedback else "no",
                best.trust,
                simulated_trust,
                len(outcome.feasible),
            )
        )

    print(
        format_table(
            [
                "application",
                "mechanism",
                "sharing level",
                "anonymous feedback",
                "predicted trust",
                "simulated trust",
                "feasible settings",
            ],
            rows,
            title="Recommended settings per application (Section 4 workflow)",
        )
    )
    print()
    print(
        "The privacy-constrained deployment is pushed towards low information "
        "demand (a lighter mechanism, less sharing or anonymous reporting); the "
        "reputation-constrained swarm is pushed towards identified, information-"
        "hungry mechanisms at high sharing; the balanced application lands in "
        "between — the Area-A compromise of Figure 2."
    )


if __name__ == "__main__":
    main()

"""A decentralized social network with privacy policies and negotiation.

The scenario the paper's introduction motivates: users of a decentralized
social-networking system publish profile attributes with explicit privacy
policies, other users request them for different purposes, the PriServ-style
service enforces the policies (audience, purpose, minimal trust level,
obligations), requesters negotiate when they are denied, and the OECD
compliance of the deployment is checked at the end.

Run with::

    python examples/decentralized_social_network.py
"""

from repro.api import (
    Audience,
    NegotiationEngine,
    Obligation,
    Operation,
    PolicyRule,
    PriServService,
    PrivacyPolicy,
    Proposal,
    Purpose,
    SocialNetworkSpec,
    check_compliance,
    format_table,
    generate_social_network,
)


def build_policies(graph, service: PriServService) -> None:
    """Each user publishes its profile under a policy matching its concern."""
    for user in graph.users():
        policy = PrivacyPolicy(owner=user.user_id)
        # Public attributes: anyone may read them for user-serving purposes.
        policy.default_rule = PolicyRule(
            audience=Audience.ANYONE,
            operations={Operation.READ},
            purposes={Purpose.SOCIAL_INTERACTION, Purpose.SERVICE_PROVISION},
        )
        # Sensitive attributes: friends only, minimal trust, obligations.
        for attribute in user.profile.sensitive_attributes():
            policy.set_rule(
                f"{user.user_id}/{attribute.name}",
                PolicyRule(
                    audience=Audience.FRIENDS,
                    operations={Operation.READ},
                    purposes={Purpose.SOCIAL_INTERACTION},
                    minimum_trust=0.4 + 0.4 * user.privacy_concern,
                    retention_time=20,
                    obligations={
                        Obligation.NO_REDISTRIBUTION,
                        Obligation.DELETE_AFTER_RETENTION,
                    },
                ),
            )
        service.register_policy(policy)
        for attribute in user.profile:
            service.publish(
                user.user_id,
                f"{user.user_id}/{attribute.name}",
                attribute.value,
                sensitivity=attribute.sensitivity.exposure_weight,
            )


def main() -> None:
    graph = generate_social_network(
        SocialNetworkSpec(n_users=30, topology="watts_strogatz", seed=11)
    )
    service = PriServService(
        peer_ids=graph.user_ids(),
        trust_oracle=lambda peer: graph.user(peer).honesty if peer in graph else 0.5,
        friendship_oracle=lambda a, b: graph.are_connected(a, b),
    )
    build_policies(graph, service)
    print(
        f"Social network with {len(graph)} users; "
        f"{len(service.published_items())} profile attributes published"
    )
    print()

    # A friend reads a public attribute, a stranger tries a sensitive one.
    owner = graph.user_ids()[0]
    friend = graph.neighbors(owner)[0]
    stranger = next(
        uid for uid in graph.user_ids()
        if uid != owner and not graph.are_connected(uid, owner)
    )

    decision, content = service.request(friend, f"{owner}/city")
    print(f"{friend} reads {owner}/city: permitted={decision.permitted}, value={content!r}")

    decision, _ = service.request(stranger, f"{owner}/health_record")
    print(
        f"{stranger} requests {owner}/health_record: permitted={decision.permitted}, "
        f"reasons={list(decision.reasons)}"
    )

    # The friend wants the sensitive attribute but forgot to accept the
    # obligations: negotiation settles the terms.
    engine = NegotiationEngine(max_rounds=4)
    proposal = Proposal(
        requester=friend,
        owner=owner,
        data_id=f"{owner}/health_record",
        purpose=Purpose.RESEARCH,
        requester_trust=graph.user(friend).honesty,
        is_friend=True,
    )
    outcome = engine.negotiate(proposal, service.policy_of(owner))
    print(
        f"Negotiation for {owner}/health_record: agreed={outcome.agreed} "
        f"after {outcome.rounds} round(s); final purpose="
        f"{outcome.final_proposal.purpose.value}, obligations accepted="
        f"{sorted(o.value for o in outcome.final_proposal.accepted_obligations)}"
    )
    print()

    # Exercise the service with a burst of requests, then audit it.
    for requester in graph.user_ids()[:10]:
        for item in service.published_items(owner=graph.user_ids()[1])[:3]:
            service.request(
                requester,
                item.data_id,
                purpose=Purpose.SOCIAL_INTERACTION,
                accepted_obligations=(
                    Obligation.NO_REDISTRIBUTION,
                    Obligation.DELETE_AFTER_RETENTION,
                ),
            )
            service.tick()

    print(
        format_table(
            ["denial reason", "count"],
            sorted(service.denial_reasons().items(), key=lambda item: -item[1]),
            title="Audit: why requests were denied",
        )
    )
    print()
    compliance = check_compliance(service)
    print(
        format_table(
            ["OECD principle", "score"],
            compliance.as_rows(),
            title=f"OECD compliance report (overall {compliance.overall:.3f})",
        )
    )


if __name__ == "__main__":
    main()

"""Small shared helpers used across subpackages.

These utilities are intentionally tiny and dependency-free: value clamping,
normalization, exponentially-weighted averaging and validation helpers that
many models (satisfaction, reputation, trust facets) need.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError


def clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ConfigurationError(f"empty interval [{low}, {high}]")
    return max(low, min(high, value))


def require_unit_interval(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it.

    Raises :class:`ConfigurationError` otherwise; used by every public
    constructor that accepts probabilities, rates or normalized scores.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not 0.0 <= float(value) <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def require_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return float(value)


def normalize_weights(weights: Sequence[float]) -> list[float]:
    """Scale non-negative weights so that they sum to one.

    An all-zero (or empty) weight vector is rejected because it cannot define
    an aggregation.
    """
    if not weights:
        raise ConfigurationError("weight vector must not be empty")
    if any(w < 0 for w in weights):
        raise ConfigurationError("weights must be non-negative")
    total = float(sum(weights))
    # repro-lint: ignore[R5] exact sentinel: non-negative weights sum to
    # exactly 0.0 only when every weight is exactly zero
    if total == 0.0:
        raise ConfigurationError("weights must not all be zero")
    return [float(w) / total for w in weights]


def normalize_distribution(values: Mapping[object, float]) -> dict[object, float]:
    """Normalize a mapping of non-negative scores into a probability vector.

    If every score is zero the result is the uniform distribution, which is
    the conventional fallback of EigenTrust-style normalizations.
    """
    if not values:
        return {}
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("scores must be non-negative")
    total = float(sum(values.values()))
    # repro-lint: ignore[R5] exact sentinel: non-negative scores sum to
    # exactly 0.0 only when every score is exactly zero
    if total == 0.0:
        uniform = 1.0 / len(values)
        return {key: uniform for key in values}
    return {key: float(v) / total for key, v in values.items()}


def ewma(previous: float, observation: float, alpha: float) -> float:
    """Exponentially-weighted moving average step.

    ``alpha`` is the weight of the new observation; the paper's satisfaction
    notion is a *long run* quantity, which every facet tracks with this
    update.
    """
    require_unit_interval(alpha, "alpha")
    return (1.0 - alpha) * previous + alpha * observation


def mean(values: Iterable[float], default: float = 0.0) -> float:
    """Arithmetic mean with an explicit default for empty iterables."""
    items = list(values)
    if not items:
        return default
    return float(sum(items)) / len(items)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient, returning 0.0 for degenerate input.

    Used by the coupling experiments (Figure 1) to quantify the sign of the
    relationships the paper draws as arrows.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("series must have the same length")
    n = len(xs)
    if n < 2:
        return 0.0
    mx = mean(xs)
    my = mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys, strict=True))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    # repro-lint: ignore[R5] exact sentinel: a sum of squares is exactly
    # 0.0 only for a constant series, where correlation is undefined
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / (vx ** 0.5 * vy ** 0.5)

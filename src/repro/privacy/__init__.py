"""Privacy: policies, enforcement, accounting and metrics.

Section 2.3 of the paper grounds privacy in the OECD guidelines and in
P3P-style privacy policies, and cites PriServ as a privacy service for P2P
systems.  This subpackage implements that stack:

* :mod:`repro.privacy.purposes` — operations and access purposes;
* :mod:`repro.privacy.policy` — P3P-inspired privacy policies (authorized
  users, allowed operations, access purposes, access conditions, retention
  time, obligations, minimal trust level) and their evaluation;
* :mod:`repro.privacy.priserv` — a PriServ-like publish/request service that
  enforces policies, applies obligations and keeps an audit trail;
* :mod:`repro.privacy.disclosure` — the disclosure ledger that accounts for
  every piece of personal information that left its owner;
* :mod:`repro.privacy.oecd` — compliance checking against the eight OECD
  principles;
* :mod:`repro.privacy.anonymization` — pseudonyms and attribute
  generalization;
* :mod:`repro.privacy.negotiation` — requester/owner negotiation over access
  terms;
* :mod:`repro.privacy.metrics` — exposure and privacy-satisfaction measures
  feeding the trust model's privacy facet.
"""

from repro.privacy.anonymization import (
    PseudonymManager,
    anonymize_feedback,
    generalize_age,
    k_anonymous_groups,
)
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.metrics import (
    exposure_level,
    policy_respect_rate,
    privacy_guarantee_level,
    privacy_satisfaction,
)
from repro.privacy.negotiation import (
    NegotiationEngine,
    NegotiationOutcome,
    Proposal,
)
from repro.privacy.oecd import (
    OECD_PRINCIPLES,
    ComplianceReport,
    OecdPrinciple,
    check_compliance,
)
from repro.privacy.policy import (
    AccessDecision,
    AccessRequest,
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
    permissive_policy,
    restrictive_policy,
)
from repro.privacy.policy_io import (
    policy_from_dict,
    policy_from_json,
    policy_to_dict,
    policy_to_json,
)
from repro.privacy.priserv import PriServService, PublishedItem
from repro.privacy.purposes import Operation, Purpose

__all__ = [
    "AccessDecision",
    "AccessRequest",
    "Audience",
    "ComplianceReport",
    "DisclosureLedger",
    "DisclosureRecord",
    "NegotiationEngine",
    "NegotiationOutcome",
    "Obligation",
    "OECD_PRINCIPLES",
    "OecdPrinciple",
    "Operation",
    "PolicyRule",
    "PriServService",
    "PrivacyPolicy",
    "Proposal",
    "PseudonymManager",
    "PublishedItem",
    "Purpose",
    "anonymize_feedback",
    "check_compliance",
    "exposure_level",
    "generalize_age",
    "k_anonymous_groups",
    "permissive_policy",
    "policy_from_dict",
    "policy_from_json",
    "policy_respect_rate",
    "policy_to_dict",
    "policy_to_json",
    "privacy_guarantee_level",
    "privacy_satisfaction",
    "restrictive_policy",
]

"""Pseudonyms and data generalization.

The paper cites decentralized social networks that rely on "anonymization of
traffic, pseudonyms, etc. to offer privacy protection to users".  This module
provides the corresponding building blocks:

* :class:`PseudonymManager` — stable or rotating pseudonyms decoupling a
  user's network identity from its real identifier;
* :func:`generalize_age` and :func:`k_anonymous_groups` — value
  generalization so that released attributes cannot single a user out;
* :func:`anonymize_feedback` — strip rater identities from a batch of
  feedback (the non-cryptographic core of anonymous reputation reporting).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.simulation.transaction import Feedback


class PseudonymManager:
    """Deterministic pseudonyms with optional epoch-based rotation.

    Pseudonyms are derived from a secret salt, the real identifier and the
    current epoch; rotating the epoch unlinks future activity from past
    activity while keeping the mapping reproducible for the experiment
    harness (which must join pseudonymous activity back to ground truth).
    """

    def __init__(self, salt: str = "repro-pseudonyms", *, epoch: int = 0) -> None:
        self._salt = salt
        self._epoch = int(epoch)
        self._forward: dict[str, str] = {}
        self._reverse: dict[str, str] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    def pseudonym(self, real_id: str) -> str:
        if real_id in self._forward:
            return self._forward[real_id]
        digest = hashlib.sha256(f"{self._salt}|{self._epoch}|{real_id}".encode("utf8")).hexdigest()
        pseudonym = f"p-{digest[:16]}"
        self._forward[real_id] = pseudonym
        self._reverse[pseudonym] = real_id
        return pseudonym

    def resolve(self, pseudonym: str) -> str:
        """Reverse lookup; only the manager (the experiment harness) can do this."""
        try:
            return self._reverse[pseudonym]
        except KeyError:
            raise ConfigurationError(f"unknown pseudonym {pseudonym!r}") from None

    def rotate(self) -> None:
        """Start a new epoch: future pseudonyms are unlinkable to past ones."""
        self._epoch += 1
        self._forward.clear()
        self._reverse.clear()

    def known_pseudonyms(self) -> list[str]:
        return sorted(self._reverse)


def generalize_age(age: int, bucket_size: int = 10) -> str:
    """Generalize an exact age into a range label, e.g. ``"30-39"``."""
    if bucket_size < 1:
        raise ConfigurationError("bucket_size must be at least 1")
    if age < 0:
        raise ConfigurationError("age must be non-negative")
    low = (age // bucket_size) * bucket_size
    return f"{low}-{low + bucket_size - 1}"


def k_anonymous_groups(values: Sequence[str], k: int) -> dict[str, list[int]]:
    """Group record indices by value and report which groups satisfy k-anonymity.

    Returns ``{value: [indices]}`` restricted to groups of size at least
    ``k``; smaller groups would re-identify their members and must be
    suppressed or further generalized by the caller.
    """
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    groups: dict[str, list[int]] = defaultdict(list)
    for index, value in enumerate(values):
        groups[value].append(index)
    return {value: indices for value, indices in groups.items() if len(indices) >= k}


def anonymize_feedback(feedbacks: Iterable[Feedback]) -> list[Feedback]:
    """Strip rater identities from a batch of feedback reports."""
    anonymized = []
    for feedback in feedbacks:
        anonymized.append(
            Feedback(
                transaction_id=feedback.transaction_id,
                time=feedback.time,
                subject=feedback.subject,
                rating=feedback.rating,
                rater=None,
                truthful=feedback.truthful,
            )
        )
    return anonymized

"""Negotiation of access terms between a requester and a data owner.

The paper stresses that "a solution has to be built on the core idea of
compromise, equilibrium of which may differ from one participant to the
other" (Section 2.1).  Negotiation is where that compromise is struck at the
level of a single data item: the requester proposes terms (purpose,
operation, retention, obligations it accepts); the owner's policy evaluates
them; on denial the engine derives a counter-proposal that addresses the
stated denial reasons (accept the missing obligations, narrow the purpose,
shorten retention), and the exchange repeats for a bounded number of rounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.privacy.policy import AccessDecision, AccessRequest, PrivacyPolicy
from repro.privacy.purposes import Operation, Purpose


@dataclass(frozen=True)
class Proposal:
    """Terms a requester offers for accessing one data item."""

    requester: str
    owner: str
    data_id: str
    operation: Operation = Operation.READ
    purpose: Purpose = Purpose.SOCIAL_INTERACTION
    accepted_obligations: frozenset = frozenset()
    requester_trust: float = 0.5
    is_friend: bool = False
    same_community: bool = False

    def to_request(self) -> AccessRequest:
        return AccessRequest(
            requester=self.requester,
            owner=self.owner,
            data_id=self.data_id,
            operation=self.operation,
            purpose=self.purpose,
            requester_trust=self.requester_trust,
            is_friend=self.is_friend,
            same_community=self.same_community,
            accepted_obligations=frozenset(self.accepted_obligations),
        )


class NegotiationStatus(enum.Enum):
    AGREED = "agreed"
    FAILED = "failed"


@dataclass
class NegotiationOutcome:
    """Result of a negotiation: final status, agreed decision and the trace."""

    status: NegotiationStatus
    rounds: int
    final_proposal: Proposal
    decision: AccessDecision | None = None
    trace: list[tuple] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return self.status is NegotiationStatus.AGREED


class NegotiationEngine:
    """Iterative proposal refinement against an owner's policy."""

    #: Denial reasons the requester can do something about.
    _NEGOTIABLE_REASONS = frozenset({
        "obligations-not-accepted",
        "purpose-not-allowed",
        "operation-not-allowed",
    })

    def __init__(self, max_rounds: int = 4) -> None:
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be at least 1")
        self.max_rounds = int(max_rounds)

    def _counter_proposal(
        self, proposal: Proposal, decision: AccessDecision, policy: PrivacyPolicy
    ) -> Proposal | None:
        """Derive the next proposal from the denial reasons, if any help."""
        reasons = set(decision.reasons)
        if not reasons & self._NEGOTIABLE_REASONS:
            return None
        rule = policy.rule_for(proposal.data_id)
        if rule is None:
            return None
        updated = proposal
        if "obligations-not-accepted" in reasons:
            updated = replace(updated, accepted_obligations=frozenset(set(rule.obligations)))
        if "purpose-not-allowed" in reasons and rule.purposes:
            # Concede to a purpose the owner allows, preferring the least
            # invasive (user-serving) ones in a stable order.
            allowed = sorted(rule.purposes, key=lambda p: p.value)
            updated = replace(updated, purpose=allowed[0])
        if "operation-not-allowed" in reasons and rule.operations:
            allowed_ops = sorted(rule.operations, key=lambda op: op.value)
            updated = replace(updated, operation=allowed_ops[0])
        if updated == proposal:
            return None
        return updated

    def negotiate(self, proposal: Proposal, policy: PrivacyPolicy) -> NegotiationOutcome:
        """Run the bounded negotiation loop and return its outcome."""
        current = proposal
        trace: list[tuple] = []
        for round_index in range(1, self.max_rounds + 1):
            decision = policy.evaluate(current.to_request())
            trace.append((round_index, current, decision))
            if decision.permitted:
                return NegotiationOutcome(
                    status=NegotiationStatus.AGREED,
                    rounds=round_index,
                    final_proposal=current,
                    decision=decision,
                    trace=trace,
                )
            counter = self._counter_proposal(current, decision, policy)
            if counter is None:
                return NegotiationOutcome(
                    status=NegotiationStatus.FAILED,
                    rounds=round_index,
                    final_proposal=current,
                    decision=decision,
                    trace=trace,
                )
            current = counter
        return NegotiationOutcome(
            status=NegotiationStatus.FAILED,
            rounds=self.max_rounds,
            final_proposal=current,
            decision=trace[-1][2] if trace else None,
            trace=trace,
        )

"""P3P-inspired privacy policies and their evaluation.

The paper (Section 2.3) lists the elements a privacy policy should cover:
*authorized users, allowed operations, access purposes, access conditions,
retention time, obligations and the minimal trust level necessary to allow
data access*.  :class:`PolicyRule` carries exactly those fields;
:class:`PrivacyPolicy` groups the rules of one owner (per data item or as a
default) and evaluates :class:`AccessRequest` objects into
:class:`AccessDecision` results with explicit reasons, so experiments can
count not only denials but *why* something was denied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro._util import require_unit_interval
from repro.errors import ConfigurationError
from repro.privacy.purposes import Operation, Purpose


class Audience(enum.Enum):
    """Coarse audience classes a rule can authorize besides explicit users."""

    NOBODY = "nobody"
    FRIENDS = "friends"
    COMMUNITY = "community"
    ANYONE = "anyone"


class Obligation(enum.Enum):
    """Obligations the requester accepts when access is granted."""

    DELETE_AFTER_RETENTION = "delete-after-retention"
    NOTIFY_OWNER = "notify-owner"
    ANONYMIZE_BEFORE_USE = "anonymize-before-use"
    NO_REDISTRIBUTION = "no-redistribution"


@dataclass(frozen=True)
class AccessRequest:
    """A request by ``requester`` to perform ``operation`` on ``data_id``.

    ``requester_trust`` is the trust level the system currently assigns to
    the requester (typically its reputation score); ``is_friend`` and
    ``same_community`` describe the social relation between requester and
    owner, which audience-based rules need.
    """

    requester: str
    owner: str
    data_id: str
    operation: Operation
    purpose: Purpose
    requester_trust: float = 0.5
    is_friend: bool = False
    same_community: bool = False
    accepted_obligations: frozenset[Obligation] = frozenset()

    def __post_init__(self) -> None:
        require_unit_interval(self.requester_trust, "requester_trust")


class DecisionOutcome(enum.Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class AccessDecision:
    """The outcome of evaluating a request against a policy."""

    outcome: DecisionOutcome
    reasons: tuple = ()
    obligations: frozenset[Obligation] = frozenset()
    retention_time: int | None = None

    @property
    def permitted(self) -> bool:
        return self.outcome is DecisionOutcome.PERMIT

    @staticmethod
    def permit(
        obligations: Iterable[Obligation] = (), retention_time: int | None = None
    ) -> AccessDecision:
        return AccessDecision(
            outcome=DecisionOutcome.PERMIT,
            obligations=frozenset(obligations),
            retention_time=retention_time,
        )

    @staticmethod
    def deny(*reasons: str) -> AccessDecision:
        return AccessDecision(outcome=DecisionOutcome.DENY, reasons=tuple(reasons))


@dataclass
class PolicyRule:
    """One rule of a privacy policy.

    All fields follow the paper's list: authorized users (explicit set plus
    an audience class), allowed operations, access purposes, the minimal
    trust level (the "access condition" the paper highlights), retention time
    and obligations.
    """

    authorized_users: set[str] = field(default_factory=set)
    audience: Audience = Audience.FRIENDS
    operations: set[Operation] = field(default_factory=lambda: {Operation.READ})
    purposes: set[Purpose] = field(default_factory=lambda: {Purpose.SOCIAL_INTERACTION})
    minimum_trust: float = 0.0
    retention_time: int | None = None
    obligations: set[Obligation] = field(default_factory=set)

    def __post_init__(self) -> None:
        require_unit_interval(self.minimum_trust, "minimum_trust")
        if self.retention_time is not None and self.retention_time < 0:
            raise ConfigurationError("retention_time must be non-negative")
        if not self.operations:
            raise ConfigurationError("a rule must allow at least one operation")
        if not self.purposes:
            raise ConfigurationError("a rule must allow at least one purpose")

    # -- evaluation --------------------------------------------------------

    def _audience_allows(self, request: AccessRequest) -> bool:
        if request.requester in self.authorized_users:
            return True
        if self.audience is Audience.ANYONE:
            return True
        if self.audience is Audience.COMMUNITY:
            return request.same_community or request.is_friend
        if self.audience is Audience.FRIENDS:
            return request.is_friend
        return False

    def evaluate(self, request: AccessRequest) -> AccessDecision:
        """Evaluate a single rule; deny reasons name the failed element."""
        reasons: list[str] = []
        if not self._audience_allows(request):
            reasons.append("requester-not-authorized")
        if request.operation not in self.operations:
            reasons.append("operation-not-allowed")
        if request.purpose not in self.purposes:
            reasons.append("purpose-not-allowed")
        if request.requester_trust < self.minimum_trust:
            reasons.append("insufficient-trust")
        missing_obligations = self.obligations - set(request.accepted_obligations)
        if missing_obligations:
            reasons.append("obligations-not-accepted")
        if reasons:
            return AccessDecision.deny(*reasons)
        return AccessDecision.permit(
            obligations=self.obligations, retention_time=self.retention_time
        )


@dataclass
class PrivacyPolicy:
    """The privacy policy of one data owner.

    Rules are attached per data item; ``default_rule`` applies to items
    without a specific rule.  When no rule matches at all the policy denies
    (privacy by default — collection limitation).
    """

    owner: str
    rules: dict[str, PolicyRule] = field(default_factory=dict)
    default_rule: PolicyRule | None = None

    def set_rule(self, data_id: str, rule: PolicyRule) -> None:
        self.rules[data_id] = rule

    def rule_for(self, data_id: str) -> PolicyRule | None:
        return self.rules.get(data_id, self.default_rule)

    def evaluate(self, request: AccessRequest) -> AccessDecision:
        if request.owner != self.owner:
            return AccessDecision.deny("wrong-owner")
        rule = self.rule_for(request.data_id)
        if rule is None:
            return AccessDecision.deny("no-applicable-rule")
        return rule.evaluate(request)

    # -- introspection used by privacy metrics ------------------------------

    def strictness(self) -> float:
        """A rough ``[0, 1]`` measure of how restrictive the policy is.

        Averaged over rules: narrower audiences, higher trust requirements,
        shorter retention and more obligations all increase strictness.  Used
        only for reporting, never for enforcement.
        """
        rules = list(self.rules.values())
        if self.default_rule is not None:
            rules.append(self.default_rule)
        if not rules:
            return 1.0
        audience_score = {
            Audience.NOBODY: 1.0,
            Audience.FRIENDS: 0.7,
            Audience.COMMUNITY: 0.4,
            Audience.ANYONE: 0.0,
        }
        total = 0.0
        for rule in rules:
            retention_score = 0.0 if rule.retention_time is None else min(
                1.0, 10.0 / (rule.retention_time + 1.0)
            )
            total += (
                0.4 * audience_score[rule.audience]
                + 0.3 * rule.minimum_trust
                + 0.1 * retention_score
                + 0.2 * (len(rule.obligations) / len(Obligation))
            )
        return total / len(rules)


def permissive_policy(owner: str) -> PrivacyPolicy:
    """A policy that lets anyone read anything for user-serving purposes."""
    return PrivacyPolicy(
        owner=owner,
        default_rule=PolicyRule(
            audience=Audience.ANYONE,
            operations={Operation.READ, Operation.AGGREGATE, Operation.DISCLOSE},
            purposes=set(Purpose),
            minimum_trust=0.0,
        ),
    )


def restrictive_policy(owner: str, *, minimum_trust: float = 0.6) -> PrivacyPolicy:
    """A policy restricted to trusted friends, short retention, obligations."""
    return PrivacyPolicy(
        owner=owner,
        default_rule=PolicyRule(
            audience=Audience.FRIENDS,
            operations={Operation.READ},
            purposes={Purpose.SOCIAL_INTERACTION, Purpose.SERVICE_PROVISION},
            minimum_trust=minimum_trust,
            retention_time=10,
            obligations={Obligation.DELETE_AFTER_RETENTION, Obligation.NO_REDISTRIBUTION},
        ),
    )

"""Operations on personal data and the purposes for which access is asked.

P3P and PriServ both make *purpose specification* explicit: a policy does not
just say who may read a datum, but for what.  The enumerations below are the
vocabulary shared by policies, requests and the disclosure ledger.
"""

from __future__ import annotations

import enum


class Operation(enum.Enum):
    """Operations a requester can ask to perform on a data item."""

    READ = "read"
    WRITE = "write"
    DISCLOSE = "disclose"
    AGGREGATE = "aggregate"
    DELETE = "delete"


class Purpose(enum.Enum):
    """Why access to a data item is requested."""

    SOCIAL_INTERACTION = "social-interaction"
    REPUTATION_COMPUTATION = "reputation-computation"
    RECOMMENDATION = "recommendation"
    SERVICE_PROVISION = "service-provision"
    COMMERCIAL = "commercial"
    RESEARCH = "research"
    SYSTEM_MAINTENANCE = "system-maintenance"


#: Purposes generally regarded as serving the user herself; commercial and
#: research uses are the ones privacy-concerned users restrict first.
USER_SERVING_PURPOSES = frozenset(
    {
        Purpose.SOCIAL_INTERACTION,
        Purpose.SERVICE_PROVISION,
        Purpose.REPUTATION_COMPUTATION,
        Purpose.RECOMMENDATION,
    }
)

"""Compliance checking against the eight OECD privacy principles.

The paper cites the OECD *Guidelines on the Protection of Privacy and
Transborder Flows of Personal Data* (1980) as the reference framework:
collection limitation, data quality, purpose specification, use limitation,
security safeguards, openness, individual participation and accountability.

:func:`check_compliance` inspects the observable state of a
:class:`~repro.privacy.priserv.PriServService` (its policies, audit log and
disclosure ledger) and scores each principle in ``[0, 1]``.  The scores are
heuristics — the point is not legal certification but giving the trust
model's privacy facet a principled, decomposable measurement, and giving the
E-P1 experiment something to report per principle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util import clamp, mean
from repro.privacy.priserv import PriServService
from repro.privacy.purposes import USER_SERVING_PURPOSES


class OecdPrinciple(enum.Enum):
    """The eight OECD fair-information principles."""

    COLLECTION_LIMITATION = "collection-limitation"
    DATA_QUALITY = "data-quality"
    PURPOSE_SPECIFICATION = "purpose-specification"
    USE_LIMITATION = "use-limitation"
    SECURITY_SAFEGUARDS = "security-safeguards"
    OPENNESS = "openness"
    INDIVIDUAL_PARTICIPATION = "individual-participation"
    ACCOUNTABILITY = "accountability"


#: Tuple of every principle, in the order the guidelines list them.
OECD_PRINCIPLES = tuple(OecdPrinciple)


@dataclass(frozen=True)
class ComplianceReport:
    """Per-principle scores and their mean."""

    scores: dict[OecdPrinciple, float]

    @property
    def overall(self) -> float:
        return mean(self.scores.values(), default=0.0)

    def weakest(self) -> OecdPrinciple:
        return min(self.scores, key=lambda principle: self.scores[principle])

    def as_rows(self) -> list:
        """Rows ``(principle, score)`` for text-table reporting."""
        return [(principle.value, self.scores[principle]) for principle in OECD_PRINCIPLES]


def check_compliance(service: PriServService) -> ComplianceReport:
    """Score the service's observable behaviour against each principle."""
    items = service.published_items()
    ledger = service.ledger
    audit = service.audit_log

    # Collection limitation: every published item is covered by a policy and
    # policies are not blanket-permissive.
    if items:
        covered = sum(1 for item in items if service.policy_of(item.owner) is not None)
        strictness = mean(
            service.policy_of(item.owner).strictness()
            for item in items
            if service.policy_of(item.owner) is not None
        )
        collection = clamp(0.5 * covered / len(items) + 0.5 * strictness)
    else:
        collection = 1.0

    # Purpose specification / use limitation: disclosed data went to declared,
    # user-serving purposes rather than secondary (commercial/research) uses.
    purposes = ledger.purpose_histogram()
    total_disclosures = sum(purposes.values())
    if total_disclosures:
        user_serving = sum(
            count for purpose, count in purposes.items() if purpose in USER_SERVING_PURPOSES
        )
        purpose_specification = 1.0  # every disclosure carries an explicit purpose
        use_limitation = clamp(user_serving / total_disclosures)
    else:
        purpose_specification = 1.0
        use_limitation = 1.0

    # Data quality: retention honored — expired records should be a small
    # share of all records (old data lingering degrades quality).
    if len(ledger):
        expired = len(ledger.expired_records(service.clock))
        with_retention = sum(1 for record in ledger.records if record.retention_time is not None)
        retention_coverage = with_retention / len(ledger)
        data_quality = clamp(0.5 * retention_coverage + 0.5 * (1.0 - expired / len(ledger)))
    else:
        data_quality = 1.0

    # Security safeguards: no policy-bypassing disclosures (breaches).
    security = ledger.compliance_rate()

    # Openness: policies are inspectable for every owner that published data.
    owners = {item.owner for item in items}
    if owners:
        # repro-lint: ignore[R2] integer count over the set; the sum is
        # order-independent and the set never reaches ordered output
        openness = sum(1 for owner in owners if service.policy_of(owner) is not None) / len(owners)
    else:
        openness = 1.0

    # Individual participation: owners can see what was disclosed about them —
    # proxied by the ledger recording owner-attributable entries for every
    # permitted access in the audit log.
    permitted = sum(1 for entry in audit if entry.decision.permitted)
    if permitted:
        individual_participation = clamp(len(ledger.records) / permitted)
    else:
        individual_participation = 1.0

    # Accountability: every access attempt is audited (always true for the
    # service itself) and breaches are at least visible in the ledger.
    accountability = 1.0 if audit or not ledger.records else ledger.compliance_rate()

    scores = {
        OecdPrinciple.COLLECTION_LIMITATION: collection,
        OecdPrinciple.DATA_QUALITY: data_quality,
        OecdPrinciple.PURPOSE_SPECIFICATION: purpose_specification,
        OecdPrinciple.USE_LIMITATION: use_limitation,
        OecdPrinciple.SECURITY_SAFEGUARDS: security,
        OecdPrinciple.OPENNESS: openness,
        OecdPrinciple.INDIVIDUAL_PARTICIPATION: individual_participation,
        OecdPrinciple.ACCOUNTABILITY: accountability,
    }
    return ComplianceReport(scores=scores)

"""The disclosure ledger: accounting for every datum that left its owner.

The OECD *accountability* and *openness* principles require the system to be
able to say what personal information was disclosed, to whom and why.  The
ledger is also the measurement instrument of the privacy facet: exposure is a
function of what was actually disclosed, weighted by sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require_unit_interval
from repro.privacy.purposes import Operation, Purpose


@dataclass(frozen=True)
class DisclosureRecord:
    """One disclosure of a data item (or behavioural evidence) to a recipient."""

    time: int
    owner: str
    recipient: str
    data_id: str
    sensitivity: float
    purpose: Purpose
    operation: Operation = Operation.READ
    policy_compliant: bool = True
    retention_time: int | None = None

    def __post_init__(self) -> None:
        require_unit_interval(self.sensitivity, "sensitivity")


@dataclass
class DisclosureLedger:
    """Append-only record of disclosures with retention-aware queries."""

    records: list[DisclosureRecord] = field(default_factory=list)

    def record(self, record: DisclosureRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- queries -----------------------------------------------------------

    def by_owner(self, owner: str) -> list[DisclosureRecord]:
        return [record for record in self.records if record.owner == owner]

    def by_recipient(self, recipient: str) -> list[DisclosureRecord]:
        return [record for record in self.records if record.recipient == recipient]

    def violations(self) -> list[DisclosureRecord]:
        """Disclosures that happened despite not being policy compliant."""
        return [record for record in self.records if not record.policy_compliant]

    def owners(self) -> list[str]:
        return sorted({record.owner for record in self.records})

    def active_records(self, now: int) -> list[DisclosureRecord]:
        """Records whose retention window has not yet expired at time ``now``.

        Records without a retention time never expire — the worst case for
        privacy, which is why restrictive policies always set one.
        """
        active = []
        for record in self.records:
            if record.retention_time is None:
                active.append(record)
            elif now - record.time < record.retention_time:
                active.append(record)
        return active

    def expired_records(self, now: int) -> list[DisclosureRecord]:
        active = set(id(record) for record in self.active_records(now))
        return [record for record in self.records if id(record) not in active]

    # -- aggregate measures --------------------------------------------------

    def exposure(self, owner: str, *, now: int | None = None) -> float:
        """Total sensitivity-weighted exposure of one owner.

        When ``now`` is given, only records still within their retention
        window count: honoring retention genuinely reduces exposure.
        """
        records = self.by_owner(owner)
        if now is not None:
            active = {id(record) for record in self.active_records(now)}
            records = [record for record in records if id(record) in active]
        return float(sum(record.sensitivity for record in records))

    def distinct_recipients(self, owner: str) -> int:
        return len({record.recipient for record in self.by_owner(owner)})

    def purpose_histogram(self, owner: str | None = None) -> dict[Purpose, int]:
        histogram: dict[Purpose, int] = {}
        for record in self.records:
            if owner is not None and record.owner != owner:
                continue
            histogram[record.purpose] = histogram.get(record.purpose, 0) + 1
        return histogram

    def compliance_rate(self) -> float:
        """Fraction of disclosures that were policy compliant (1.0 if none)."""
        if not self.records:
            return 1.0
        compliant = sum(1 for record in self.records if record.policy_compliant)
        return compliant / len(self.records)

"""Serialization of privacy policies to P3P-like policy documents.

P3P's contribution was a machine-readable *document* format for privacy
policies so that user agents can compare them automatically.  This module
round-trips :class:`~repro.privacy.policy.PrivacyPolicy` objects through
plain dictionaries / JSON so policies can be published next to the data they
protect, exchanged during negotiation, or stored by the PriServ service.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.privacy.policy import (
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
)
from repro.privacy.purposes import Operation, Purpose

#: Document format identifier embedded in every serialized policy.
POLICY_DOCUMENT_VERSION = "repro-pp/1.0"


def rule_to_dict(rule: PolicyRule) -> dict[str, object]:
    """Serialize one policy rule to plain JSON-compatible types."""
    return {
        "authorized_users": sorted(rule.authorized_users),
        "audience": rule.audience.value,
        "operations": sorted(operation.value for operation in rule.operations),
        "purposes": sorted(purpose.value for purpose in rule.purposes),
        "minimum_trust": rule.minimum_trust,
        "retention_time": rule.retention_time,
        "obligations": sorted(obligation.value for obligation in rule.obligations),
    }


def rule_from_dict(data: dict[str, object]) -> PolicyRule:
    """Deserialize one policy rule, validating every enumeration value."""
    try:
        return PolicyRule(
            authorized_users=set(data.get("authorized_users", [])),
            audience=Audience(data.get("audience", Audience.FRIENDS.value)),
            operations={Operation(value) for value in data.get("operations", ["read"])},
            purposes={
                Purpose(value)
                for value in data.get("purposes", [Purpose.SOCIAL_INTERACTION.value])
            },
            minimum_trust=float(data.get("minimum_trust", 0.0)),
            retention_time=data.get("retention_time"),
            obligations={
                Obligation(value) for value in data.get("obligations", [])
            },
        )
    except ValueError as error:
        raise ConfigurationError(f"invalid policy rule document: {error}") from error


def policy_to_dict(policy: PrivacyPolicy) -> dict[str, object]:
    """Serialize a whole policy (owner, per-item rules, default rule)."""
    return {
        "version": POLICY_DOCUMENT_VERSION,
        "owner": policy.owner,
        "rules": {data_id: rule_to_dict(rule) for data_id, rule in sorted(policy.rules.items())},
        "default_rule": (
            rule_to_dict(policy.default_rule) if policy.default_rule is not None else None
        ),
    }


def policy_from_dict(data: dict[str, object]) -> PrivacyPolicy:
    """Deserialize a policy document produced by :func:`policy_to_dict`."""
    version = data.get("version", POLICY_DOCUMENT_VERSION)
    if version != POLICY_DOCUMENT_VERSION:
        raise ConfigurationError(
            f"unsupported policy document version {version!r}; "
            f"expected {POLICY_DOCUMENT_VERSION!r}"
        )
    owner = data.get("owner")
    if not owner:
        raise ConfigurationError("policy document has no owner")
    default_rule_data: dict[str, object] | None = data.get("default_rule")
    policy = PrivacyPolicy(
        owner=str(owner),
        rules={
            data_id: rule_from_dict(rule_data)
            for data_id, rule_data in (data.get("rules") or {}).items()
        },
        default_rule=rule_from_dict(default_rule_data) if default_rule_data else None,
    )
    return policy


def policy_to_json(policy: PrivacyPolicy, *, indent: int = 2) -> str:
    """Serialize a policy to a JSON string."""
    return json.dumps(policy_to_dict(policy), indent=indent, sort_keys=True)


def policy_from_json(document: str) -> PrivacyPolicy:
    """Parse a JSON policy document back into a :class:`PrivacyPolicy`."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"malformed policy JSON: {error}") from error
    if not isinstance(data, dict):
        raise ConfigurationError("policy JSON must encode an object")
    return policy_from_dict(data)

"""Privacy measurements feeding the trust model's privacy facet.

The paper defines the privacy axis of Figure 2 as "the satisfaction in terms
of privacy guarantees which can be the amount of information that it is not
necessary to share within the system or the respect of privacy policies".
Both ingredients are implemented:

* :func:`exposure_level` — how much sensitivity-weighted information about a
  user actually circulated (from the disclosure ledger), normalized;
* :func:`policy_respect_rate` — the fraction of disclosures that honoured the
  owner's policy;
* :func:`privacy_guarantee_level` — the *ex ante* guarantee implied by the
  system settings (how little the system requires users to share);
* :func:`privacy_satisfaction` — the per-user combination of the above,
  weighted by how much that user cares (her privacy concern).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro._util import clamp, mean, require_unit_interval
from repro.privacy.disclosure import DisclosureLedger


def exposure_level(
    ledger: DisclosureLedger,
    owner: str,
    *,
    reference_exposure: float = 20.0,
    now: int | None = None,
) -> float:
    """Normalized exposure of one owner in ``[0, 1]``.

    ``reference_exposure`` is the sensitivity-weighted disclosure mass that
    counts as "fully exposed"; beyond it the level saturates at 1.  The
    default corresponds to roughly twenty maximally sensitive disclosures.
    """
    if reference_exposure <= 0:
        raise ValueError("reference_exposure must be positive")
    raw = ledger.exposure(owner, now=now)
    return clamp(raw / reference_exposure)


def policy_respect_rate(ledger: DisclosureLedger, owner: str | None = None) -> float:
    """Fraction of disclosures that were policy compliant (1.0 when none)."""
    records = ledger.records if owner is None else ledger.by_owner(owner)
    if not records:
        return 1.0
    compliant = sum(1 for record in records if record.policy_compliant)
    return compliant / len(records)


def privacy_guarantee_level(
    sharing_level: float,
    information_requirement: float,
    *,
    anonymous_feedback: bool = False,
) -> float:
    """Ex ante privacy guarantee implied by the system settings, in ``[0, 1]``.

    "The less the amount of shared information is, the most the privacy
    satisfaction is" (Figure 2): the guarantee decreases with the
    information-sharing level and with the information requirement of the
    chosen reputation mechanism; anonymous feedback recovers part of it.
    """
    require_unit_interval(sharing_level, "sharing_level")
    require_unit_interval(information_requirement, "information_requirement")
    demanded = sharing_level * information_requirement
    if anonymous_feedback:
        demanded *= 0.5
    return clamp(1.0 - demanded)


def privacy_satisfaction(
    *,
    exposure: float,
    respect_rate: float,
    privacy_concern: float = 0.5,
) -> float:
    """Per-user privacy satisfaction in ``[0, 1]``.

    A user with zero privacy concern is indifferent to exposure (satisfaction
    stays high); a fully concerned user's satisfaction is driven by how
    little was exposed and how well her policy was respected.  Policy respect
    is weighted more heavily than raw exposure because the paper treats
    breaches ("privacy breaks") as the qualitatively worse event.
    """
    require_unit_interval(exposure, "exposure")
    require_unit_interval(respect_rate, "respect_rate")
    require_unit_interval(privacy_concern, "privacy_concern")
    concerned_satisfaction = 0.4 * (1.0 - exposure) + 0.6 * respect_rate
    return clamp((1.0 - privacy_concern) * 1.0 + privacy_concern * concerned_satisfaction)


def population_privacy_satisfaction(
    ledger: DisclosureLedger,
    privacy_concerns: Mapping[str, float],
    *,
    reference_exposure: float = 20.0,
    now: int | None = None,
) -> float:
    """Mean privacy satisfaction over a population of owners."""
    values: Iterable[float] = (
        privacy_satisfaction(
            exposure=exposure_level(
                ledger, owner, reference_exposure=reference_exposure, now=now
            ),
            respect_rate=policy_respect_rate(ledger, owner),
            privacy_concern=concern,
        )
        for owner, concern in privacy_concerns.items()
    )
    return mean(values, default=1.0)

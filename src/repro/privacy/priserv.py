"""A PriServ-like privacy service for structured P2P systems.

PriServ (Jawad et al., 2009) "proposes functions to publish and request
private data by taking into account the privacy policies of data owners (in
particular, access purpose, operations and authorized users)".  The service
below reproduces that workflow over the library's own substrate:

* owners **publish** data items together with a privacy policy; items are
  placed on a responsible peer chosen by consistent hashing over the peer
  population (the "structured P2P" part);
* requesters **request** items for an explicit operation and purpose; the
  service evaluates the owner's policy — including the minimal trust level,
  looked up through a pluggable trust oracle — and either serves the item or
  denies with reasons;
* every granted access is written to the :class:`DisclosureLedger`, and every
  decision to the audit log, so OECD accountability checks and privacy
  metrics have ground truth to work from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.errors import AccessDeniedError, ConfigurationError, UnknownDataError
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.policy import (
    AccessDecision,
    AccessRequest,
    Obligation,
    PrivacyPolicy,
)
from repro.privacy.purposes import Operation, Purpose

#: Returns the current trust level of a peer in ``[0, 1]``.
TrustOracle = Callable[[str], float]

#: Tells whether two peers are friends / in the same community.
RelationOracle = Callable[[str, str], bool]


@dataclass
class PublishedItem:
    """A data item stored by the service on behalf of its owner."""

    data_id: str
    owner: str
    content: object
    sensitivity: float
    responsible_peer: str


@dataclass
class AuditEntry:
    """One access decision, kept for accountability."""

    time: int
    request: AccessRequest
    decision: AccessDecision


@dataclass
class PriServService:
    """Publish/request service enforcing owners' privacy policies."""

    peer_ids: Sequence[str]
    trust_oracle: TrustOracle = field(default=lambda peer: 0.5)
    friendship_oracle: RelationOracle | None = None
    community_oracle: RelationOracle | None = None
    ledger: DisclosureLedger = field(default_factory=DisclosureLedger)

    def __post_init__(self) -> None:
        if not self.peer_ids:
            raise ConfigurationError("the service needs at least one peer")
        self._items: dict[str, PublishedItem] = {}
        self._policies: dict[str, PrivacyPolicy] = {}
        self._audit: list[AuditEntry] = []
        self._clock = 0

    # -- structured P2P placement -------------------------------------------

    def responsible_peer(self, data_id: str) -> str:
        """Consistent-hash placement of a key on the peer population."""
        digest = int(hashlib.sha256(data_id.encode("utf8")).hexdigest(), 16)
        ordered = sorted(self.peer_ids)
        return ordered[digest % len(ordered)]

    # -- owner-facing API -------------------------------------------------------

    def register_policy(self, policy: PrivacyPolicy) -> None:
        self._policies[policy.owner] = policy

    def policy_of(self, owner: str) -> PrivacyPolicy | None:
        return self._policies.get(owner)

    def publish(
        self,
        owner: str,
        data_id: str,
        content: object,
        *,
        sensitivity: float = 0.5,
        policy: PrivacyPolicy | None = None,
    ) -> PublishedItem:
        """Publish a data item, optionally registering/refreshing the policy."""
        if policy is not None:
            if policy.owner != owner:
                raise ConfigurationError("policy owner must match the publisher")
            self.register_policy(policy)
        if owner not in self._policies:
            raise ConfigurationError(
                f"owner {owner!r} must register a privacy policy before publishing"
            )
        item = PublishedItem(
            data_id=data_id,
            owner=owner,
            content=content,
            sensitivity=sensitivity,
            responsible_peer=self.responsible_peer(data_id),
        )
        self._items[data_id] = item
        return item

    def unpublish(self, owner: str, data_id: str) -> None:
        item = self._items.get(data_id)
        if item is None:
            raise UnknownDataError(data_id)
        if item.owner != owner:
            raise AccessDeniedError(f"{owner} does not own {data_id}")
        del self._items[data_id]

    def published_items(self, owner: str | None = None) -> list[PublishedItem]:
        items = list(self._items.values())
        if owner is not None:
            items = [item for item in items if item.owner == owner]
        return items

    # -- requester-facing API -----------------------------------------------------

    def tick(self, steps: int = 1) -> None:
        """Advance the service clock (used for retention accounting)."""
        if steps < 0:
            raise ConfigurationError("steps must be non-negative")
        self._clock += steps

    @property
    def clock(self) -> int:
        return self._clock

    def _build_request(
        self,
        requester: str,
        item: PublishedItem,
        operation: Operation,
        purpose: Purpose,
        accepted_obligations: Sequence[Obligation],
    ) -> AccessRequest:
        is_friend = bool(self.friendship_oracle and self.friendship_oracle(requester, item.owner))
        same_community = bool(
            self.community_oracle and self.community_oracle(requester, item.owner)
        )
        return AccessRequest(
            requester=requester,
            owner=item.owner,
            data_id=item.data_id,
            operation=operation,
            purpose=purpose,
            requester_trust=self.trust_oracle(requester),
            is_friend=is_friend,
            same_community=same_community,
            accepted_obligations=frozenset(accepted_obligations),
        )

    def request(
        self,
        requester: str,
        data_id: str,
        *,
        operation: Operation = Operation.READ,
        purpose: Purpose = Purpose.SOCIAL_INTERACTION,
        accepted_obligations: Sequence[Obligation] = (),
    ) -> tuple[AccessDecision, object | None]:
        """Request access to a published item.

        Returns the decision and, when permitted, the item content.  Denials
        return ``(decision, None)`` rather than raising so callers can treat
        policy-driven denials as a normal outcome; :meth:`request_or_raise`
        raises :class:`AccessDeniedError` instead.
        """
        item = self._items.get(data_id)
        if item is None:
            raise UnknownDataError(data_id)
        policy = self._policies.get(item.owner)
        if policy is None:
            decision = AccessDecision.deny("owner-has-no-policy")
        else:
            request = self._build_request(requester, item, operation, purpose, accepted_obligations)
            decision = policy.evaluate(request)
        self._audit.append(
            AuditEntry(
                time=self._clock,
                request=self._build_request(
                    requester, item, operation, purpose, accepted_obligations
                ),
                decision=decision,
            )
        )
        if not decision.permitted:
            return decision, None

        self.ledger.record(
            DisclosureRecord(
                time=self._clock,
                owner=item.owner,
                recipient=requester,
                data_id=data_id,
                sensitivity=item.sensitivity,
                purpose=purpose,
                operation=operation,
                policy_compliant=True,
                retention_time=decision.retention_time,
            )
        )
        return decision, item.content

    def request_or_raise(
        self,
        requester: str,
        data_id: str,
        *,
        operation: Operation = Operation.READ,
        purpose: Purpose = Purpose.SOCIAL_INTERACTION,
        accepted_obligations: Sequence[Obligation] = (),
    ) -> object:
        decision, content = self.request(
            requester,
            data_id,
            operation=operation,
            purpose=purpose,
            accepted_obligations=accepted_obligations,
        )
        if not decision.permitted:
            raise AccessDeniedError(
                f"access to {data_id!r} denied for {requester!r}: "
                f"{', '.join(decision.reasons)}"
            )
        return content

    def record_breach(
        self,
        owner: str,
        recipient: str,
        data_id: str,
        *,
        sensitivity: float = 1.0,
        purpose: Purpose = Purpose.COMMERCIAL,
    ) -> None:
        """Record a disclosure that bypassed policy evaluation (a breach).

        Used by adversarial experiments: breaches lower the ledger's
        compliance rate and therefore the owner's privacy satisfaction.
        """
        self.ledger.record(
            DisclosureRecord(
                time=self._clock,
                owner=owner,
                recipient=recipient,
                data_id=data_id,
                sensitivity=sensitivity,
                purpose=purpose,
                operation=Operation.DISCLOSE,
                policy_compliant=False,
            )
        )

    # -- accountability ----------------------------------------------------------

    @property
    def audit_log(self) -> list[AuditEntry]:
        return list(self._audit)

    def denial_rate(self) -> float:
        if not self._audit:
            return 0.0
        denied = sum(1 for entry in self._audit if not entry.decision.permitted)
        return denied / len(self._audit)

    def denial_reasons(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for entry in self._audit:
            for reason in entry.decision.reasons:
                histogram[reason] = histogram.get(reason, 0) + 1
        return histogram

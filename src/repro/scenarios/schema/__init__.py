"""Declarative scenario schema: workloads as validated, versioned files.

The catalog's scenarios are Python-constructed; this package is the
zero-code on-ramp the ROADMAP asks for.  A *scenario template* is a YAML or
JSON document with a ``schema_version``, parsed into a frozen dataclass
model by a strict validator (unknown fields and wrong types are rejected
with a precise error path), and compiled onto the existing execution
objects — :class:`~repro.scenarios.runner.ScenarioRunConfig`,
:class:`~repro.scenarios.campaign.AttackCampaign`,
:class:`~repro.simulation.churn.PhasedChurnModel` — so a template run is
byte-identical to the equivalent Python-constructed run.

* :mod:`repro.scenarios.schema.model` — document model, strict parser,
  serializer, version migration hook;
* :mod:`repro.scenarios.schema.compile` — template → runnable config
  (catalog references and fully declarative campaigns);
* :mod:`repro.scenarios.schema.library` — the shipped ``templates/``
  catalog, loading, and catalog⇄template equivalence verification;
* :mod:`repro.scenarios.schema.cli` — ``scenario validate|verify|run|list``.
"""

from repro.scenarios.schema.compile import CompiledScenario, compile_template
from repro.scenarios.schema.library import (
    VerificationResult,
    builtin_template_dir,
    discover_templates,
    find_template,
    load_template,
    template_record_json,
    verify_template,
)
from repro.scenarios.schema.model import (
    CURRENT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    TIER_NAMES,
    ScenarioTemplate,
    migrate_document,
    parse_template,
    template_from_text,
    template_to_dict,
)

__all__ = [
    "CURRENT_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "TIER_NAMES",
    "CompiledScenario",
    "ScenarioTemplate",
    "VerificationResult",
    "builtin_template_dir",
    "compile_template",
    "discover_templates",
    "find_template",
    "load_template",
    "template_record_json",
    "migrate_document",
    "parse_template",
    "template_from_text",
    "template_to_dict",
    "verify_template",
]

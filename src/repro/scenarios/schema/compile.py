"""Compiling validated templates onto the existing execution objects.

:func:`compile_template` turns a :class:`~repro.scenarios.schema.model.ScenarioTemplate`
plus an optional size tier into a ready-to-run
:class:`~repro.scenarios.runner.ScenarioRunConfig`.  Catalog-reference
templates resolve to the referenced catalog entry with the template's knobs;
fully declarative campaign templates are materialized into
:class:`~repro.scenarios.campaign.AttackCampaign` events (and, when churn is
declared, a :class:`~repro.simulation.churn.PhasedChurnModel`) and
registered in the catalog under the template's name, so the normal
``run_scenario`` pipeline — setup cache, run cache, sweep workers — executes
them exactly like built-in scenarios.  Nothing here draws randomness or
reads the clock: a compiled template is a pure function of the document, so
a template run is byte-identical to the equivalent Python-constructed run.

Fractional round positions (floats in ``[0, 1]``) resolve against the
tier's round budget via round-half-even on ``value * rounds``; event rounds
additionally clamp to the final round so ``1.0`` means "last round".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import ConfigurationError, TemplateError
from repro.scenarios.campaign import (
    AttackCampaign,
    CampaignEvent,
    PeerSelector,
    SelectGroup,
    SetOnline,
    SwitchBehavior,
    Whitewash,
)
from repro.scenarios.catalog import (
    BUILTIN_SCENARIOS,
    ScenarioSpec,
    behavior_factory,
    get_scenario,
    register_scenario,
)
from repro.scenarios.runner import ScenarioRunConfig
from repro.scenarios.schema.model import CampaignSection, ScenarioTemplate, TierSpec
from repro.simulation.churn import ChurnPhase, PhasedChurnModel


@dataclass(frozen=True)
class CompiledScenario:
    """One template compiled for one tier: the runnable configuration."""

    template: ScenarioTemplate
    tier: str | None
    config: ScenarioRunConfig

    @property
    def name(self) -> str:
        return self.template.name

    @property
    def scenario(self) -> str:
        """The catalog scenario name the run executes under."""
        return self.config.scenario


def resolve_round(value: int | float, rounds: int) -> int:
    """Resolve a round position: ints pass through, fractions scale."""
    if isinstance(value, int):
        return value
    return int(round(value * rounds))


def _event_round(value: int | float, rounds: int, path: str) -> int:
    resolved = resolve_round(value, rounds)
    if isinstance(value, float):
        return min(resolved, rounds - 1)
    if resolved >= rounds:
        raise TemplateError(
            path, f"event round {resolved} never fires within {rounds} rounds"
        )
    return resolved


def compile_campaign(name: str, section: CampaignSection, rounds: int) -> AttackCampaign:
    """Materialize a declarative campaign section for a round budget."""
    events: list[CampaignEvent] = []
    for index, spec in enumerate(section.events):
        path = f"campaign.events[{index}]"
        round_index = _event_round(spec.round, rounds, f"{path}.round")
        if spec.action == "select":
            group = section.groups[spec.group]
            selector = PeerSelector(
                population=group.population,
                prefix=group.prefix,
                fraction=group.fraction,
                count=group.count,
                minimum=group.minimum,
            )
            events.append(SelectGroup(round_index, spec.group, selector))
        elif spec.action == "switch":
            if spec.behavior is None:  # unreachable after validation
                raise TemplateError(f"{path}.behavior", "switch events need a behavior name")
            try:
                factory = behavior_factory(spec.behavior, **dict(spec.args))
            except ConfigurationError as error:
                raise TemplateError(f"{path}.behavior", str(error)) from error
            events.append(SwitchBehavior(round_index, spec.group, factory))
        elif spec.action == "set-online":
            events.append(SetOnline(round_index, spec.group, spec.online, spec.pin))
        else:
            events.append(Whitewash(round_index, spec.group))

    window = (
        resolve_round(section.window[0], rounds),
        resolve_round(section.window[1], rounds),
    )
    if not 0 <= window[0] <= window[1] <= rounds:
        raise TemplateError(
            "campaign.window",
            f"window resolves to [{window[0]}, {window[1]}) outside 0..{rounds}",
        )

    churn: PhasedChurnModel | None = None
    if section.churn is not None:
        phases: list[ChurnPhase] = []
        for index, phase in enumerate(section.churn.phases):
            start = resolve_round(phase.start, rounds)
            end = resolve_round(phase.end, rounds)
            if end <= start:
                raise TemplateError(
                    f"campaign.churn.phases[{index}]",
                    f"phase collapses to [{start}, {end}) at rounds={rounds}",
                )
            phases.append(
                ChurnPhase(start, end, phase.leave_probability, phase.return_probability)
            )
        churn = PhasedChurnModel(
            leave_probability=section.churn.leave_probability,
            return_probability=section.churn.return_probability,
            phases=phases,
        )

    return AttackCampaign(
        name=name,
        events=events,
        window=window,
        churn=churn,
        description=f"template-defined campaign {name!r}",
    )


def _campaign_builder(template: ScenarioTemplate) -> Callable[..., AttackCampaign]:
    section = template.campaign
    if section is None:  # unreachable after validation
        raise TemplateError("campaign", "template has no campaign section")
    name = template.name

    def build(*, rounds: int) -> AttackCampaign:
        return compile_campaign(name, section, rounds)

    return build


def _resolve_tier(template: ScenarioTemplate, tier: str | None) -> TierSpec:
    if tier is None:
        return TierSpec()
    try:
        return template.tiers[tier]
    except KeyError:
        raise TemplateError(
            "tiers",
            f"template {template.name!r} does not define tier {tier!r}; "
            f"declared: {template.tier_names()}",
        ) from None


def compile_template(
    template: ScenarioTemplate,
    tier: str | None = None,
    *,
    mechanism: str | None = None,
    backend: str | None = None,
) -> CompiledScenario:
    """Compile a template (at an optional size tier) into a runnable config.

    ``mechanism``/``backend`` override the template's run section — the CLI
    and the experiment layer use them to sweep one template across the
    mechanism matrix and the compute backends.  Campaign templates are
    registered in the catalog (``replace=True``: recompiling an edited
    template in the same process must not serve the stale campaign).
    """
    tier_spec = _resolve_tier(template, tier)
    tier_path = f"tiers.{tier}" if tier is not None else "run"

    n_users = tier_spec.n_users if tier_spec.n_users is not None else template.network.n_users
    rounds = tier_spec.rounds if tier_spec.rounds is not None else template.run.rounds
    interactions = (
        tier_spec.interactions_per_peer
        if tier_spec.interactions_per_peer is not None
        else template.run.interactions_per_peer
    )
    if template.network.preset is not None and tier_spec.n_users is not None:
        raise TemplateError(
            f"{tier_path}.n_users", "n_users has no effect with a preset network"
        )

    knobs: dict[str, object] = {}
    if template.catalog is not None:
        scenario_name = template.catalog.name
        knobs.update(template.catalog.knobs)
        knobs.update(tier_spec.knobs)
        try:
            get_scenario(scenario_name).merged_knobs(knobs)
        except ConfigurationError as error:
            raise TemplateError("scenario", str(error)) from error
    else:
        if tier_spec.knobs:
            raise TemplateError(
                f"{tier_path}.knobs", "campaign templates take no scenario knobs"
            )
        scenario_name = template.name
        if scenario_name in BUILTIN_SCENARIOS:
            raise TemplateError(
                "name",
                f"campaign template name {scenario_name!r} collides with a "
                "built-in catalog scenario",
            )
        section = template.campaign
        if section is None:  # unreachable after validation
            raise TemplateError("campaign", "template has no campaign section")
        # Surface campaign materialization errors now, with document paths.
        compile_campaign(scenario_name, section, rounds)
        register_scenario(
            ScenarioSpec(
                name=scenario_name,
                description=template.description or f"template scenario {scenario_name!r}",
                build=_campaign_builder(template),
            ),
            replace=True,
        )

    try:
        config = ScenarioRunConfig(
            scenario=scenario_name,
            mechanism=mechanism if mechanism is not None else template.run.mechanism,
            n_users=n_users,
            rounds=rounds,
            seed=template.run.seed,
            backend=backend if backend is not None else template.run.backend,
            topology=template.network.topology,
            malicious_fraction=template.network.malicious_fraction,
            interactions_per_peer=interactions,
            sharing_level=template.run.sharing_level,
            preset=template.network.preset,
            knobs=knobs,
            detect_threshold=template.metrics.detect_threshold,
            recovery_fraction=template.metrics.recovery_fraction,
        )
    except ConfigurationError as error:
        raise TemplateError("run", str(error)) from error
    return CompiledScenario(template=template, tier=tier, config=config)

"""The scenario-template document model and its strict validator.

A template is plain data (YAML or JSON) with this shape::

    schema_version: 1
    name: collusion-ring
    description: dishonest ring inflates accomplices
    network:            # preset OR explicit spec fields
      n_users: 40
      topology: barabasi_albert
      malicious_fraction: 0.25
    run:                # simulation knobs
      mechanism: eigentrust
      rounds: 30
      seed: 0
    metrics:            # post-hoc metric knobs
      detect_threshold: 0.1
      recovery_fraction: 0.8
    scenario:           # EITHER a catalog reference ...
      catalog: collusion-ring
      knobs: {ring_fraction: 0.6}
    campaign:           # ... OR a fully declarative campaign
      window: {start: 0.25, end: 0.75}
      groups:
        ring: {population: dishonest, fraction: 0.5}
      events:
        - {round: 0, action: select, group: ring}
        - {round: 0.25, action: switch, group: ring, behavior: collusive}
      churn:
        leave_probability: 0.02
        phases:
          - {start: 0.25, end: 0.75, leave_probability: 0.3}
    tiers:              # small/medium/large size overrides
      small: {n_users: 24, rounds: 12}
      medium: {}
      large: {n_users: 80, rounds: 60}

Round positions (event ``round``, window/phase bounds) may be non-negative
integers (absolute rounds) or floats in ``[0, 1]`` (fractions of the round
budget, resolved at compile time) — that is what lets one template scale
across size tiers.

Validation is strict: unknown fields, wrong types and out-of-range values
raise :class:`~repro.errors.TemplateError` carrying the precise document
path (``tiers.large.rounds``, ``campaign.events[2].behavior`` …).  The
``schema_version`` field gates parsing; :func:`migrate_document` is the hook
that upgrades documents written against older supported versions before the
validator sees them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.errors import TemplateError
from repro.scenarios.campaign import POPULATIONS
from repro.socialnet.generators import TOPOLOGIES

#: Schema versions this parser understands.  Bump CURRENT when the document
#: shape changes; keep old versions listed here (with a migration in
#: :func:`migrate_document`) until templates in the wild have moved on.
SUPPORTED_SCHEMA_VERSIONS: tuple[int, ...] = (1,)
CURRENT_SCHEMA_VERSION = 1

#: The size tiers a template may define.
TIER_NAMES: tuple[str, ...] = ("small", "medium", "large")

#: Event actions the campaign section understands.
EVENT_ACTIONS: tuple[str, ...] = ("select", "switch", "set-online", "whitewash")


# -- document model --------------------------------------------------------------


@dataclass(frozen=True)
class NetworkSection:
    """Where the population comes from: a preset or explicit spec fields."""

    preset: str | None = None
    n_users: int = 40
    topology: str = "barabasi_albert"
    malicious_fraction: float = 0.25


@dataclass(frozen=True)
class RunSection:
    """Simulation-level knobs (everything upstream of the metrics layer)."""

    mechanism: str = "eigentrust"
    backend: str = "auto"
    seed: int = 0
    rounds: int = 30
    interactions_per_peer: float = 1.0
    sharing_level: float = 1.0


@dataclass(frozen=True)
class MetricsSection:
    """Post-hoc robustness-metric knobs."""

    detect_threshold: float = 0.1
    recovery_fraction: float = 0.8


@dataclass(frozen=True)
class CatalogRef:
    """Reference to a named catalog scenario plus knob overrides."""

    name: str
    knobs: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class GroupSpec:
    """Declarative peer-group selection (mirrors ``PeerSelector``)."""

    population: str = "dishonest"
    prefix: str | None = None
    fraction: float | None = None
    count: int | None = None
    minimum: int = 1


@dataclass(frozen=True)
class EventSpec:
    """One scheduled campaign action.

    ``round`` is an absolute round (int) or a fraction of the round budget
    (float in [0, 1]).  ``behavior``/``args`` apply to ``switch`` events,
    ``online``/``pin`` to ``set-online`` events.
    """

    round: int | float
    action: str
    group: str
    behavior: str | None = None
    args: Mapping[str, object] = field(default_factory=dict)
    online: bool = True
    pin: bool = False


@dataclass(frozen=True)
class ChurnPhaseSpec:
    """Round-windowed churn override (bounds absolute or fractional)."""

    start: int | float
    end: int | float
    leave_probability: float = 0.0
    return_probability: float = 0.5


@dataclass(frozen=True)
class ChurnSpec:
    """Base churn probabilities plus optional phases."""

    leave_probability: float = 0.0
    return_probability: float = 0.5
    phases: tuple[ChurnPhaseSpec, ...] = ()


@dataclass(frozen=True)
class CampaignSection:
    """A fully declarative campaign (used when no catalog ref is given)."""

    window: tuple[int | float, int | float]
    groups: Mapping[str, GroupSpec] = field(default_factory=dict)
    events: tuple[EventSpec, ...] = ()
    churn: ChurnSpec | None = None


@dataclass(frozen=True)
class TierSpec:
    """Per-tier overrides of the base document's sizing fields."""

    n_users: int | None = None
    rounds: int | None = None
    interactions_per_peer: float | None = None
    knobs: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioTemplate:
    """One parsed, validated scenario template."""

    schema_version: int
    name: str
    description: str
    network: NetworkSection
    run: RunSection
    metrics: MetricsSection
    catalog: CatalogRef | None
    campaign: CampaignSection | None
    tiers: Mapping[str, TierSpec] = field(default_factory=dict)

    def tier_names(self) -> list[str]:
        """Declared tier names, in canonical small→large order."""
        return [name for name in TIER_NAMES if name in self.tiers]


# -- strict parsing --------------------------------------------------------------


def _fail(path: str, message: str) -> TemplateError:
    return TemplateError(path, message)


def _child(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require_mapping(value: object, path: str) -> Mapping[str, object]:
    if not isinstance(value, Mapping):
        raise _fail(path, f"expected a mapping, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise _fail(path, f"mapping keys must be strings, got {key!r}")
    return value


def _reject_unknown(data: Mapping[str, object], allowed: Sequence[str], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise _fail(
            _child(path, unknown[0]),
            f"unknown field (allowed here: {sorted(allowed)})",
        )


def _get_str(data: Mapping[str, object], key: str, path: str, default: str | None) -> str:
    value = data.get(key, default)
    if value is None:
        raise _fail(_child(path, key), "required field is missing")
    if not isinstance(value, str):
        raise _fail(_child(path, key), f"expected str, got {type(value).__name__} {value!r}")
    return value


def _get_opt_str(data: Mapping[str, object], key: str, path: str) -> str | None:
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise _fail(_child(path, key), f"expected str, got {type(value).__name__} {value!r}")
    return value


def _get_int(data: Mapping[str, object], key: str, path: str, default: int | None) -> int:
    value = data.get(key, default)
    if value is None:
        raise _fail(_child(path, key), "required field is missing")
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(_child(path, key), f"expected int, got {type(value).__name__} {value!r}")
    return value


def _get_opt_int(data: Mapping[str, object], key: str, path: str) -> int | None:
    if key not in data or data[key] is None:
        return None
    return _get_int(data, key, path, None)


def _get_float(data: Mapping[str, object], key: str, path: str, default: float | None) -> float:
    value = data.get(key, default)
    if value is None:
        raise _fail(_child(path, key), "required field is missing")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(_child(path, key), f"expected number, got {type(value).__name__} {value!r}")
    return float(value)


def _get_opt_float(data: Mapping[str, object], key: str, path: str) -> float | None:
    if key not in data or data[key] is None:
        return None
    return _get_float(data, key, path, None)


def _get_bool(data: Mapping[str, object], key: str, path: str, default: bool) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise _fail(_child(path, key), f"expected bool, got {type(value).__name__} {value!r}")
    return value


def _get_fraction(data: Mapping[str, object], key: str, path: str, default: float) -> float:
    value = _get_float(data, key, path, default)
    if not 0.0 <= value <= 1.0:
        raise _fail(_child(path, key), f"expected a value in [0, 1], got {value!r}")
    return value


def _get_round(data: Mapping[str, object], key: str, path: str) -> int | float:
    """A round position: int >= 0 (absolute) or float in [0, 1] (fraction)."""
    if key not in data:
        raise _fail(_child(path, key), "required field is missing")
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(_child(path, key), f"expected number, got {type(value).__name__} {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise _fail(_child(path, key), f"absolute rounds must be >= 0, got {value}")
        return value
    if not 0.0 <= value <= 1.0:
        raise _fail(
            _child(path, key),
            f"fractional round positions must be in [0, 1], got {value!r}",
        )
    return float(value)


def _get_knobs(data: Mapping[str, object], key: str, path: str) -> dict[str, object]:
    raw = data.get(key, {})
    mapping = _require_mapping(raw, _child(path, key))
    knobs: dict[str, object] = {}
    for name, value in mapping.items():
        if isinstance(value, (dict, list, tuple, set)):
            raise _fail(
                _child(_child(path, key), name),
                f"knob values must be scalars, got {type(value).__name__}",
            )
        knobs[name] = value
    return knobs


def _parse_network(data: Mapping[str, object], path: str) -> NetworkSection:
    _reject_unknown(data, ("preset", "n_users", "topology", "malicious_fraction"), path)
    preset = _get_opt_str(data, "preset", path)
    if preset is not None:
        extras = sorted(set(data) - {"preset"})
        if extras:
            raise _fail(
                _child(path, extras[0]),
                "a preset network takes no explicit spec fields",
            )
        return NetworkSection(preset=preset)
    topology = _get_str(data, "topology", path, "barabasi_albert")
    if topology not in TOPOLOGIES:
        raise _fail(
            _child(path, "topology"),
            f"unknown topology {topology!r}; expected one of {TOPOLOGIES}",
        )
    n_users = _get_int(data, "n_users", path, 40)
    if n_users < 2:
        raise _fail(_child(path, "n_users"), f"n_users must be at least 2, got {n_users}")
    return NetworkSection(
        preset=None,
        n_users=n_users,
        topology=topology,
        malicious_fraction=_get_fraction(data, "malicious_fraction", path, 0.25),
    )


def _parse_run(data: Mapping[str, object], path: str) -> RunSection:
    allowed = (
        "mechanism",
        "backend",
        "seed",
        "rounds",
        "interactions_per_peer",
        "sharing_level",
    )
    _reject_unknown(data, allowed, path)
    rounds = _get_int(data, "rounds", path, 30)
    if rounds < 1:
        raise _fail(_child(path, "rounds"), f"rounds must be at least 1, got {rounds}")
    interactions = _get_float(data, "interactions_per_peer", path, 1.0)
    if interactions < 0:
        raise _fail(
            _child(path, "interactions_per_peer"),
            f"interactions_per_peer must be non-negative, got {interactions}",
        )
    return RunSection(
        mechanism=_get_str(data, "mechanism", path, "eigentrust"),
        backend=_get_str(data, "backend", path, "auto"),
        seed=_get_int(data, "seed", path, 0),
        rounds=rounds,
        interactions_per_peer=interactions,
        sharing_level=_get_fraction(data, "sharing_level", path, 1.0),
    )


def _parse_metrics(data: Mapping[str, object], path: str) -> MetricsSection:
    _reject_unknown(data, ("detect_threshold", "recovery_fraction"), path)
    return MetricsSection(
        detect_threshold=_get_float(data, "detect_threshold", path, 0.1),
        recovery_fraction=_get_fraction(data, "recovery_fraction", path, 0.8),
    )


def _parse_catalog_ref(data: Mapping[str, object], path: str) -> CatalogRef:
    _reject_unknown(data, ("catalog", "knobs"), path)
    return CatalogRef(
        name=_get_str(data, "catalog", path, None),
        knobs=_get_knobs(data, "knobs", path),
    )


def _parse_group(data: Mapping[str, object], path: str) -> GroupSpec:
    _reject_unknown(data, ("population", "prefix", "fraction", "count", "minimum"), path)
    population = _get_str(data, "population", path, "dishonest")
    if population not in POPULATIONS:
        raise _fail(
            _child(path, "population"),
            f"unknown population {population!r}; expected one of {POPULATIONS}",
        )
    fraction = _get_opt_float(data, "fraction", path)
    if fraction is not None and not 0.0 <= fraction <= 1.0:
        raise _fail(_child(path, "fraction"), f"expected a value in [0, 1], got {fraction!r}")
    count = _get_opt_int(data, "count", path)
    if count is not None and count < 0:
        raise _fail(_child(path, "count"), f"count must be non-negative, got {count}")
    if fraction is not None and count is not None:
        raise _fail(path, "give fraction or count, not both")
    minimum = _get_int(data, "minimum", path, 1)
    if minimum < 0:
        raise _fail(_child(path, "minimum"), f"minimum must be non-negative, got {minimum}")
    return GroupSpec(
        population=population,
        prefix=_get_opt_str(data, "prefix", path),
        fraction=fraction,
        count=count,
        minimum=minimum,
    )


def _parse_event(data: Mapping[str, object], path: str) -> EventSpec:
    _reject_unknown(
        data, ("round", "action", "group", "behavior", "args", "online", "pin"), path
    )
    action = _get_str(data, "action", path, None)
    if action not in EVENT_ACTIONS:
        raise _fail(
            _child(path, "action"),
            f"unknown action {action!r}; expected one of {EVENT_ACTIONS}",
        )
    behavior = _get_opt_str(data, "behavior", path)
    if action == "switch" and behavior is None:
        raise _fail(_child(path, "behavior"), "switch events need a behavior name")
    if action != "switch" and (behavior is not None or "args" in data):
        raise _fail(path, f"behavior/args only apply to switch events, not {action!r}")
    if action != "set-online" and ("online" in data or "pin" in data):
        raise _fail(path, f"online/pin only apply to set-online events, not {action!r}")
    return EventSpec(
        round=_get_round(data, "round", path),
        action=action,
        group=_get_str(data, "group", path, None),
        behavior=behavior,
        args=_get_knobs(data, "args", path),
        online=_get_bool(data, "online", path, True),
        pin=_get_bool(data, "pin", path, False),
    )


def _parse_churn_phase(data: Mapping[str, object], path: str) -> ChurnPhaseSpec:
    _reject_unknown(data, ("start", "end", "leave_probability", "return_probability"), path)
    return ChurnPhaseSpec(
        start=_get_round(data, "start", path),
        end=_get_round(data, "end", path),
        leave_probability=_get_fraction(data, "leave_probability", path, 0.0),
        return_probability=_get_fraction(data, "return_probability", path, 0.5),
    )


def _parse_churn(data: Mapping[str, object], path: str) -> ChurnSpec:
    _reject_unknown(data, ("leave_probability", "return_probability", "phases"), path)
    raw_phases = data.get("phases", [])
    if not isinstance(raw_phases, Sequence) or isinstance(raw_phases, (str, bytes)):
        raise _fail(_child(path, "phases"), "expected a list of churn phases")
    phases = tuple(
        _parse_churn_phase(
            _require_mapping(entry, f"{_child(path, 'phases')}[{index}]"),
            f"{_child(path, 'phases')}[{index}]",
        )
        for index, entry in enumerate(raw_phases)
    )
    return ChurnSpec(
        leave_probability=_get_fraction(data, "leave_probability", path, 0.0),
        return_probability=_get_fraction(data, "return_probability", path, 0.5),
        phases=phases,
    )


def _parse_campaign(data: Mapping[str, object], path: str) -> CampaignSection:
    _reject_unknown(data, ("window", "groups", "events", "churn"), path)
    window_data = _require_mapping(data.get("window", {}), _child(path, "window"))
    _reject_unknown(window_data, ("start", "end"), _child(path, "window"))
    window = (
        _get_round(window_data, "start", _child(path, "window")),
        _get_round(window_data, "end", _child(path, "window")),
    )
    groups_data = _require_mapping(data.get("groups", {}), _child(path, "groups"))
    groups = {
        name: _parse_group(
            _require_mapping(entry, _child(_child(path, "groups"), name)),
            _child(_child(path, "groups"), name),
        )
        for name, entry in groups_data.items()
    }
    raw_events = data.get("events", [])
    if not isinstance(raw_events, Sequence) or isinstance(raw_events, (str, bytes)):
        raise _fail(_child(path, "events"), "expected a list of events")
    events = tuple(
        _parse_event(
            _require_mapping(entry, f"{_child(path, 'events')}[{index}]"),
            f"{_child(path, 'events')}[{index}]",
        )
        for index, entry in enumerate(raw_events)
    )
    for index, event in enumerate(events):
        if event.group not in groups:
            raise _fail(
                f"{_child(path, 'events')}[{index}].group",
                f"undeclared group {event.group!r}; declared: {sorted(groups)}",
            )
    selected = {event.group for event in events if event.action == "select"}
    for index, event in enumerate(events):
        if event.action != "select" and event.group not in selected:
            raise _fail(
                f"{_child(path, 'events')}[{index}].group",
                f"group {event.group!r} is never resolved by a select event",
            )
    churn_data = data.get("churn")
    churn = (
        _parse_churn(_require_mapping(churn_data, _child(path, "churn")), _child(path, "churn"))
        if churn_data is not None
        else None
    )
    return CampaignSection(window=window, groups=groups, events=events, churn=churn)


def _parse_tier(data: Mapping[str, object], path: str) -> TierSpec:
    _reject_unknown(data, ("n_users", "rounds", "interactions_per_peer", "knobs"), path)
    n_users = _get_opt_int(data, "n_users", path)
    if n_users is not None and n_users < 2:
        raise _fail(_child(path, "n_users"), f"n_users must be at least 2, got {n_users}")
    rounds = _get_opt_int(data, "rounds", path)
    if rounds is not None and rounds < 1:
        raise _fail(_child(path, "rounds"), f"rounds must be at least 1, got {rounds}")
    interactions = _get_opt_float(data, "interactions_per_peer", path)
    if interactions is not None and interactions < 0:
        raise _fail(
            _child(path, "interactions_per_peer"),
            f"interactions_per_peer must be non-negative, got {interactions}",
        )
    return TierSpec(
        n_users=n_users,
        rounds=rounds,
        interactions_per_peer=interactions,
        knobs=_get_knobs(data, "knobs", path),
    )


def migrate_document(data: Mapping[str, object]) -> Mapping[str, object]:
    """Upgrade a raw document to the current schema version.

    The migration hook for forward compatibility: when ``schema_version``
    bumps, add an upgrade step here (v1 → v2, …) so old template files keep
    parsing.  Version 1 documents pass through unchanged; unsupported
    versions fail with the usual precise error path.
    """
    mapping = _require_mapping(data, "")
    version = _get_int(mapping, "schema_version", "", None)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise _fail(
            "schema_version",
            f"unsupported schema version {version}; supported: {list(SUPPORTED_SCHEMA_VERSIONS)}",
        )
    # Future: chain per-version upgrade functions here until the document
    # reaches CURRENT_SCHEMA_VERSION.
    return mapping


def parse_template(data: Mapping[str, object]) -> ScenarioTemplate:
    """Validate a raw document into a :class:`ScenarioTemplate` (strict)."""
    mapping = migrate_document(data)
    allowed = (
        "schema_version",
        "name",
        "description",
        "network",
        "run",
        "metrics",
        "scenario",
        "campaign",
        "tiers",
    )
    _reject_unknown(mapping, allowed, "")
    name = _get_str(mapping, "name", "", None)
    if not name or "/" in name:
        raise _fail("name", f"template names must be non-empty and slash-free, got {name!r}")
    scenario_data = mapping.get("scenario")
    campaign_data = mapping.get("campaign")
    if (scenario_data is None) == (campaign_data is None):
        raise _fail("", "exactly one of 'scenario' (catalog ref) or 'campaign' is required")
    catalog = (
        _parse_catalog_ref(_require_mapping(scenario_data, "scenario"), "scenario")
        if scenario_data is not None
        else None
    )
    campaign = (
        _parse_campaign(_require_mapping(campaign_data, "campaign"), "campaign")
        if campaign_data is not None
        else None
    )
    tiers_data = _require_mapping(mapping.get("tiers", {}), "tiers")
    _reject_unknown(tiers_data, TIER_NAMES, "tiers")
    tiers = {
        tier: _parse_tier(
            _require_mapping(tiers_data[tier], _child("tiers", tier)), _child("tiers", tier)
        )
        for tier in TIER_NAMES
        if tier in tiers_data
    }
    return ScenarioTemplate(
        schema_version=CURRENT_SCHEMA_VERSION,
        name=name,
        description=_get_str(mapping, "description", "", ""),
        network=_parse_network(_require_mapping(mapping.get("network", {}), "network"), "network"),
        run=_parse_run(_require_mapping(mapping.get("run", {}), "run"), "run"),
        metrics=_parse_metrics(_require_mapping(mapping.get("metrics", {}), "metrics"), "metrics"),
        catalog=catalog,
        campaign=campaign,
        tiers=tiers,
    )


# -- text loading ----------------------------------------------------------------


def _load_yaml(text: str) -> object:
    try:
        import yaml
    except ImportError:  # pragma: no cover - exercised only without PyYAML
        raise TemplateError(
            "",
            "PyYAML is not installed; write the template as JSON or install pyyaml",
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise TemplateError("", f"malformed YAML: {error}") from error


def template_from_text(text: str, *, format: str = "yaml") -> ScenarioTemplate:
    """Parse template text (``format`` is ``"yaml"`` or ``"json"``)."""
    if format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise TemplateError("", f"malformed JSON: {error}") from error
    elif format == "yaml":
        data = _load_yaml(text)
    else:
        raise TemplateError("", f"unknown template format {format!r}; use 'yaml' or 'json'")
    if not isinstance(data, Mapping):
        raise TemplateError("", f"template document must be a mapping, got {type(data).__name__}")
    return parse_template(data)


# -- serialization (round-trip) --------------------------------------------------


def _tier_to_dict(tier: TierSpec) -> dict[str, object]:
    data: dict[str, object] = {}
    if tier.n_users is not None:
        data["n_users"] = tier.n_users
    if tier.rounds is not None:
        data["rounds"] = tier.rounds
    if tier.interactions_per_peer is not None:
        data["interactions_per_peer"] = tier.interactions_per_peer
    if tier.knobs:
        data["knobs"] = dict(tier.knobs)
    return data


def _campaign_to_dict(campaign: CampaignSection) -> dict[str, object]:
    data: dict[str, object] = {
        "window": {"start": campaign.window[0], "end": campaign.window[1]},
        "groups": {
            name: {
                "population": group.population,
                **({"prefix": group.prefix} if group.prefix is not None else {}),
                **({"fraction": group.fraction} if group.fraction is not None else {}),
                **({"count": group.count} if group.count is not None else {}),
                "minimum": group.minimum,
            }
            for name, group in campaign.groups.items()
        },
        "events": [
            {
                "round": event.round,
                "action": event.action,
                "group": event.group,
                **({"behavior": event.behavior} if event.behavior is not None else {}),
                **({"args": dict(event.args)} if event.args else {}),
                **(
                    {"online": event.online, "pin": event.pin}
                    if event.action == "set-online"
                    else {}
                ),
            }
            for event in campaign.events
        ],
    }
    if campaign.churn is not None:
        data["churn"] = {
            "leave_probability": campaign.churn.leave_probability,
            "return_probability": campaign.churn.return_probability,
            "phases": [
                {
                    "start": phase.start,
                    "end": phase.end,
                    "leave_probability": phase.leave_probability,
                    "return_probability": phase.return_probability,
                }
                for phase in campaign.churn.phases
            ],
        }
    return data


def template_to_dict(template: ScenarioTemplate) -> dict[str, object]:
    """Serialize a template back to canonical plain data.

    Round-trip contract: ``parse_template(template_to_dict(t)) == t`` for
    every valid template ``t``.
    """
    network: dict[str, object]
    if template.network.preset is not None:
        network = {"preset": template.network.preset}
    else:
        network = {
            "n_users": template.network.n_users,
            "topology": template.network.topology,
            "malicious_fraction": template.network.malicious_fraction,
        }
    data: dict[str, object] = {
        "schema_version": template.schema_version,
        "name": template.name,
        "description": template.description,
        "network": network,
        "run": {
            "mechanism": template.run.mechanism,
            "backend": template.run.backend,
            "seed": template.run.seed,
            "rounds": template.run.rounds,
            "interactions_per_peer": template.run.interactions_per_peer,
            "sharing_level": template.run.sharing_level,
        },
        "metrics": {
            "detect_threshold": template.metrics.detect_threshold,
            "recovery_fraction": template.metrics.recovery_fraction,
        },
        "tiers": {name: _tier_to_dict(template.tiers[name]) for name in template.tier_names()},
    }
    if template.catalog is not None:
        data["scenario"] = {
            "catalog": template.catalog.name,
            **({"knobs": dict(template.catalog.knobs)} if template.catalog.knobs else {}),
        }
    if template.campaign is not None:
        data["campaign"] = _campaign_to_dict(template.campaign)
    return data

"""``scenario`` CLI subcommands: list, validate, verify and run templates.

Reached as ``python -m repro.experiments scenario <command>`` (and the
``repro-scenario`` console script).  ``validate`` is the CI scenario-gate
workhorse: it parses every shipped template strictly, checks the
parse → serialize → parse round-trip, and (with ``--catalog``) checks the
catalog ⇄ template parity both ways; ``verify`` runs the golden-record
equivalence check; ``run`` executes one template and writes deterministic
record files suitable for ``cmp``-based byte comparison across backends.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError, TemplateError
from repro.experiments.results import records_from_json, records_to_csv
from repro.scenarios.catalog import BUILTIN_SCENARIOS
from repro.scenarios.runner import resume_scenario
from repro.scenarios.schema.compile import compile_template
from repro.scenarios.schema.library import (
    builtin_template_dir,
    discover_templates,
    find_template,
    load_template,
    scenario_record_json,
    template_record_json,
    verify_template,
)
from repro.scenarios.schema.model import (
    SUPPORTED_SCHEMA_VERSIONS,
    ScenarioTemplate,
    parse_template,
    template_to_dict,
)


def _template_dir(value: str | None) -> Path:
    return Path(value) if value is not None else builtin_template_dir()


def _load_all(directory: Path) -> list[tuple[Path, ScenarioTemplate]]:
    return [(path, load_template(path)) for path in discover_templates(directory)]


def _write_report(path: str | None, payload: dict[str, object]) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_list(args: argparse.Namespace) -> int:
    directory = _template_dir(args.dir)
    for path, template in _load_all(directory):
        kind = "catalog" if template.catalog is not None else "campaign"
        tiers = ",".join(template.tier_names()) or "-"
        print(
            f"{template.name:24s} {kind:8s} tiers={tiers:20s} "
            f"[{path.name}] {template.description}"
        )
    return 0


def _validate_one(path: Path) -> dict[str, object]:
    entry: dict[str, object] = {"file": path.name}
    try:
        template = load_template(path)
        # Round-trip: the canonical serialization must re-parse to the
        # identical model (catches serializer drift immediately).
        if parse_template(template_to_dict(template)) != template:
            raise TemplateError("", f"[{path.name}] serialization round-trip mismatch")
        # Every declared tier must compile (campaign materialization,
        # knob names, window arithmetic) without running anything.
        for tier in [None, *template.tier_names()]:
            compile_template(template, tier)
        entry.update(
            name=template.name,
            schema_version=template.schema_version,
            tiers=template.tier_names(),
            ok=True,
        )
    except ReproError as error:
        entry.update(ok=False, error=str(error))
    return entry


def _cmd_validate(args: argparse.Namespace) -> int:
    directory = _template_dir(args.dir)
    paths = [Path(p) for p in args.paths] if args.paths else discover_templates(directory)
    entries = [_validate_one(path) for path in paths]
    failures = [entry for entry in entries if not entry["ok"]]
    parity_errors: list[str] = []
    if args.catalog and not args.paths:
        names = {entry.get("name") for entry in entries if entry["ok"]}
        missing = sorted(BUILTIN_SCENARIOS - names)
        if missing:
            parity_errors.append(f"catalog scenarios without a template: {missing}")
    report = {
        "supported_schema_versions": list(SUPPORTED_SCHEMA_VERSIONS),
        "templates": entries,
        "parity_errors": parity_errors,
        "ok": not failures and not parity_errors,
    }
    _write_report(args.report, report)
    for entry in entries:
        status = "ok" if entry["ok"] else f"FAIL: {entry.get('error')}"
        print(f"{entry['file']}: {status}")
    for message in parity_errors:
        print(f"PARITY FAIL: {message}")
    if failures or parity_errors:
        return 1
    print(f"{len(entries)} templates valid")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    directory = _template_dir(args.dir)
    if args.names:
        templates = [find_template(name, directory) for name in args.names]
    else:
        templates = [template for _, template in _load_all(directory)]
    results = [
        verify_template(
            template, args.tier, mechanism=args.mechanism, backend=args.backend
        )
        for template in templates
    ]
    _write_report(
        args.report,
        {"results": [result.to_dict() for result in results], "ok": all(r.ok for r in results)},
    )
    for result in results:
        status = "ok" if result.ok else "FAIL"
        print(
            f"{result.template:24s} tier={result.tier or '-':8s} "
            f"{result.mode:20s} {status}: {result.detail}"
        )
    if not all(result.ok for result in results):
        return 1
    print(f"{len(results)} templates verified")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume:
        # Resume a checkpointed run: all run parameters come from the
        # checkpoint itself, so no template is needed (or allowed to
        # contradict it — it is simply ignored if given).
        result = resume_scenario(
            args.resume,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
        )
        record_json = scenario_record_json(result)
    else:
        if not args.template:
            raise ConfigurationError("run needs a template name/path (or --resume)")
        if args.checkpoint_every is not None and not args.checkpoint:
            raise ConfigurationError("--checkpoint-every needs --checkpoint PATH")
        directory = _template_dir(args.dir)
        target = Path(args.template)
        if target.is_file():
            template = load_template(target)
        else:
            template = find_template(args.template, directory)
        compiled = compile_template(
            template, args.tier, mechanism=args.mechanism, backend=args.backend
        )
        record_json = template_record_json(
            compiled,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(record_json)
        print(f"records written to {args.out}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(records_to_csv(records_from_json(record_json)))
        print(f"CSV written to {args.csv}")
    if not args.out and not args.csv:
        print(record_json, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments scenario",
        description="List, validate, verify and run declarative scenario templates.",
    )
    parser.add_argument(
        "--dir",
        metavar="PATH",
        default=None,
        help="template directory (default: the shipped templates/)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the shipped templates")

    validate = commands.add_parser(
        "validate", help="strictly validate templates (the CI scenario-gate check)"
    )
    validate.add_argument(
        "paths", nargs="*", metavar="PATH", help="template files (default: all shipped)"
    )
    validate.add_argument(
        "--catalog",
        action="store_true",
        help="also fail if any catalog scenario lacks a template counterpart",
    )
    validate.add_argument(
        "--report", metavar="PATH", help="write a JSON validation report here"
    )

    verify = commands.add_parser(
        "verify", help="golden-record equivalence check against the programmatic catalog"
    )
    verify.add_argument(
        "names", nargs="*", metavar="NAME", help="template names (default: all shipped)"
    )
    verify.add_argument("--tier", choices=("small", "medium", "large"), default=None)
    verify.add_argument("--mechanism", default=None)
    verify.add_argument("--backend", choices=("auto", "python", "vectorized"), default=None)
    verify.add_argument("--report", metavar="PATH", help="write a JSON report here")

    run = commands.add_parser("run", help="run one template and write its records")
    run.add_argument(
        "template", metavar="NAME_OR_PATH", nargs="?", default=None,
        help="template name or file (omit with --resume)",
    )
    run.add_argument("--tier", choices=("small", "medium", "large"), default=None)
    run.add_argument("--mechanism", default=None)
    run.add_argument("--backend", choices=("auto", "python", "vectorized"), default=None)
    run.add_argument("--out", metavar="PATH", help="write the JSON record file here")
    run.add_argument("--csv", metavar="PATH", help="also write the records as CSV here")
    run.add_argument(
        "--checkpoint-every", type=int, metavar="N", default=None,
        help="snapshot the run state every N rounds (needs --checkpoint)",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="checkpoint file to write (atomic, newest wins)",
    )
    run.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume a checkpointed run; finishes it byte-identically",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    handler = {
        "list": _cmd_list,
        "validate": _cmd_validate,
        "verify": _cmd_verify,
        "run": _cmd_run,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

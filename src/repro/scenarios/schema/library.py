"""The shipped template library: discovery, loading, and verification.

Templates live in the repository-level ``templates/`` directory (one file
per workload, YAML or JSON).  :func:`discover_templates` finds them,
:func:`load_template` parses one file, and :func:`verify_template` runs the
golden-record equivalence check: a catalog-reference template whose knobs
are all defaults must produce an experiment record *byte-identical* to the
one the programmatic robustness experiment produces for the same
parameters; any other template must reproduce its own record byte-for-byte
across a full cache flush.  The CI scenario-gate and the repro-lint
template-parity rule are both built on these helpers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TemplateError
from repro.experiments import robustness
from repro.experiments.results import ExperimentRecord, records_to_json
from repro.scenarios.catalog import clear_campaign_cache
from repro.scenarios.runner import (
    ScenarioRunConfig,
    ScenarioRunResult,
    clear_run_cache,
    run_scenario,
)
from repro.scenarios.schema.compile import CompiledScenario, compile_template
from repro.scenarios.schema.model import ScenarioTemplate, template_from_text
from repro.scenarios.setup import clear_setup_cache

#: Environment override for the template directory (CI and tests use it).
TEMPLATE_DIR_ENV = "REPRO_TEMPLATE_DIR"

#: File suffixes recognised as templates, mapped to parser formats.
TEMPLATE_SUFFIXES = {".yaml": "yaml", ".yml": "yaml", ".json": "json"}

#: The record label both the template path and the programmatic path use —
#: shared so the serialized records can be compared byte-for-byte.
RECORD_EXPERIMENT = "scenario-template"


def builtin_template_dir() -> Path:
    """Locate the shipped ``templates/`` directory.

    ``REPRO_TEMPLATE_DIR`` overrides; otherwise walk up from this file to
    the repository root (the first ancestor holding a ``templates/``
    directory).
    """
    override = os.environ.get(TEMPLATE_DIR_ENV)
    if override:
        path = Path(override)
        if not path.is_dir():
            raise TemplateError("", f"{TEMPLATE_DIR_ENV}={override!r} is not a directory")
        return path
    for ancestor in Path(__file__).resolve().parents:
        candidate = ancestor / "templates"
        if candidate.is_dir():
            return candidate
    raise TemplateError(
        "",
        f"no templates/ directory found above {__file__}; set {TEMPLATE_DIR_ENV}",
    )


def discover_templates(directory: Path | None = None) -> list[Path]:
    """Every template file in the directory, sorted by name."""
    root = directory if directory is not None else builtin_template_dir()
    return sorted(
        (path for path in root.iterdir() if path.suffix in TEMPLATE_SUFFIXES),
        key=lambda path: path.name,
    )


def load_template(path: Path | str) -> ScenarioTemplate:
    """Parse one template file (format chosen by suffix)."""
    file_path = Path(path)
    try:
        format = TEMPLATE_SUFFIXES[file_path.suffix]
    except KeyError:
        raise TemplateError(
            "",
            f"{file_path.name}: unknown template suffix {file_path.suffix!r}; "
            f"expected one of {sorted(TEMPLATE_SUFFIXES)}",
        ) from None
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise TemplateError("", f"cannot read template {file_path}: {error}") from error
    try:
        return template_from_text(text, format=format)
    except TemplateError as error:
        raise TemplateError(error.path, f"[{file_path.name}] {error.args[0]}") from error


def find_template(name: str, directory: Path | None = None) -> ScenarioTemplate:
    """Load the shipped template whose ``name`` field matches (not the file
    name — one template per file, but the document name is the identity)."""
    for path in discover_templates(directory):
        template = load_template(path)
        if template.name == name:
            return template
    root = directory if directory is not None else builtin_template_dir()
    raise TemplateError("", f"no template named {name!r} under {root}")


def _clear_caches() -> None:
    clear_run_cache()
    clear_setup_cache()
    clear_campaign_cache()


def _record(config: ScenarioRunConfig, metrics: dict[str, object]) -> ExperimentRecord:
    """One comparable record.  ``backend`` is deliberately excluded from the
    params — byte-identity across backends is the point of the gate."""
    return ExperimentRecord(
        experiment=RECORD_EXPERIMENT,
        task_index=0,
        params={
            "scenario": config.scenario,
            "mechanism": config.mechanism,
            "n_users": config.n_users,
            "rounds": config.rounds,
            "malicious_fraction": config.malicious_fraction,
            "preset": config.preset,
            "interactions_per_peer": config.interactions_per_peer,
            "sharing_level": config.sharing_level,
            "detect_threshold": config.detect_threshold,
            "recovery_fraction": config.recovery_fraction,
        },
        seed=config.seed,
        status="ok",
        metrics=metrics,
    )


def scenario_record_json(result: ScenarioRunResult) -> str:
    """Serialize one scenario run as its canonical experiment record.

    Shared by the direct, checkpointed and resumed execution paths — the
    byte-identity contract for checkpoint/resume is checked on exactly this
    serialization.
    """
    outcome = robustness.ScenarioOutcome(
        scenario=result.config.scenario,
        mechanism=result.config.mechanism,
        window=result.campaign.window,
        robustness=result.robustness,
    )
    metrics = robustness.summarize(robustness.RobustnessResult(outcomes=[outcome]))
    return records_to_json([_record(result.config, metrics)])


def template_record_json(
    compiled: CompiledScenario,
    *,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
) -> str:
    """Run a compiled template and serialize its record deterministically.

    ``checkpoint_every``/``checkpoint_path`` pass through to
    :func:`~repro.scenarios.runner.run_scenario` for crash-resumable runs.
    """
    result = run_scenario(
        compiled.config,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    return scenario_record_json(result)


def _programmatic_record_json(config: ScenarioRunConfig) -> str:
    """The same record produced by the pre-existing Python path: the
    robustness experiment's ``run()``/``summarize()`` chain."""
    result = robustness.run(
        scenario=config.scenario,
        mechanism=config.mechanism,
        n_users=config.n_users,
        rounds=config.rounds,
        seed=config.seed,
        backend=config.backend,
        malicious_fraction=config.malicious_fraction,
        preset=config.preset,
        detect_threshold=config.detect_threshold,
        recovery_fraction=config.recovery_fraction,
    )
    return records_to_json([_record(config, robustness.summarize(result))])


def _is_catalog_defaults(compiled: CompiledScenario) -> bool:
    """Whether the compiled config is reachable through ``robustness.run``
    (no knob overrides, default interaction shape) — the precondition for
    the catalog-equivalence comparison."""
    config = compiled.config
    return (
        compiled.template.catalog is not None
        and not config.knobs
        # Configured values compared against their documented defaults, not
        # computed floats — exactness is the point here.
        and config.interactions_per_peer == 1.0  # repro-lint: ignore[R5] configured default
        and config.sharing_level == 1.0  # repro-lint: ignore[R5] configured default
    )


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one template's golden-record check."""

    template: str
    tier: str | None
    scenario: str
    mechanism: str
    mode: str  # "catalog-equivalence" or "self-consistency"
    ok: bool
    detail: str

    def to_dict(self) -> dict[str, object]:
        return {
            "template": self.template,
            "tier": self.tier,
            "scenario": self.scenario,
            "mechanism": self.mechanism,
            "mode": self.mode,
            "ok": self.ok,
            "detail": self.detail,
        }


def verify_template(
    template: ScenarioTemplate,
    tier: str | None = None,
    *,
    mechanism: str | None = None,
    backend: str | None = None,
) -> VerificationResult:
    """Golden-record equivalence check for one template at one tier.

    Catalog-reference templates with default knobs are compared
    byte-for-byte against the programmatic robustness experiment; every
    other template (declarative campaigns, knob overrides) is re-run after
    a full cache flush and must reproduce its own record byte-for-byte.
    """
    compiled = compile_template(template, tier, mechanism=mechanism, backend=backend)
    template_json = template_record_json(compiled)
    if _is_catalog_defaults(compiled):
        mode = "catalog-equivalence"
        reference_json = _programmatic_record_json(compiled.config)
    else:
        mode = "self-consistency"
        _clear_caches()
        reference_json = template_record_json(compiled)
    ok = template_json == reference_json
    detail = (
        "records byte-identical"
        if ok
        else f"record mismatch ({len(template_json)} vs {len(reference_json)} bytes)"
    )
    return VerificationResult(
        template=template.name,
        tier=tier,
        scenario=compiled.config.scenario,
        mechanism=compiled.config.mechanism,
        mode=mode,
        ok=ok,
        detail=detail,
    )

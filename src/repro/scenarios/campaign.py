"""Declarative attack campaigns: scheduled behaviour switches and churn.

The paper frames reputation mechanisms by the adversarial context they must
survive — selfish peers, malicious peers, traitors, whitewashers, collusion
and churn.  This module turns that context into *data*: an
:class:`AttackCampaign` is an ordered list of :class:`CampaignEvent`s, each
pinned to a round, that a :class:`CampaignDriver` applies through the
engine's :class:`~repro.simulation.engine.RoundHook` extension point.

Events act on named *groups*: a :class:`SelectGroup` event resolves a
declarative :class:`PeerSelector` into a concrete peer list once (drawing
only from the dedicated ``"campaign"`` random stream, so the rest of the
simulation stays stream-exact), and later events — behaviour switches,
forced churn, forced whitewashing — reference the group by name.  Sticky
groups are what make multi-phase attacks (build up, betray, recover,
repeat) act on the *same* peers every phase.

Campaigns compose: :func:`combine` merges event schedules so, e.g., a
collusion ring can run concurrently with a churn spike.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.errors import CheckpointError, ConfigurationError
from repro.simulation.adversary import BehaviorModel, WhitewasherBehavior
from repro.simulation.churn import ChurnModel
from repro.simulation.engine import InteractionSimulator
from repro.simulation.peer import Peer

#: Factory building the new behaviour for one peer of a switched group.
#: Receives the peer, the whole group (for ring wiring) and the campaign rng.
BehaviorFactory = Callable[[Peer, Sequence[Peer], random.Random], BehaviorModel]

#: The populations a selector can draw from.
POPULATIONS = ("all", "honest", "dishonest", "online", "offline")


@dataclass(frozen=True)
class PeerSelector:
    """Declarative, deterministic selection of a set of peers.

    ``population`` restricts the candidate pool; ``prefix`` further filters
    by base-identifier prefix (how injected sybils are targeted).  Exactly
    one of ``fraction``/``count`` sizes the selection (omit both to take the
    whole pool).  Candidates are sorted by base id before sampling and the
    sample is re-sorted afterwards, so the selected group is a deterministic
    function of the population and the campaign rng state.
    """

    population: str = "dishonest"
    prefix: str | None = None
    fraction: float | None = None
    count: int | None = None
    minimum: int = 1

    def __post_init__(self) -> None:
        if self.population not in POPULATIONS:
            raise ConfigurationError(
                f"unknown population {self.population!r}; expected one of {POPULATIONS}"
            )
        if self.fraction is not None and self.count is not None:
            raise ConfigurationError("give fraction or count, not both")
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError("selector fraction must be in [0, 1]")
        if self.count is not None and self.count < 0:
            raise ConfigurationError("selector count must be non-negative")

    def _pool(self, peers: Sequence[Peer]) -> list[Peer]:
        pool = list(peers)
        if self.population == "honest":
            pool = [peer for peer in pool if peer.user.is_honest]
        elif self.population == "dishonest":
            pool = [peer for peer in pool if not peer.user.is_honest]
        elif self.population == "online":
            pool = [peer for peer in pool if peer.online]
        elif self.population == "offline":
            pool = [peer for peer in pool if not peer.online]
        if self.prefix is not None:
            pool = [peer for peer in pool if peer.base_id.startswith(self.prefix)]
        return sorted(pool, key=lambda peer: peer.base_id)

    def select(self, peers: Sequence[Peer], rng: random.Random) -> list[Peer]:
        """Resolve the selector against the current population."""
        pool = self._pool(peers)
        if self.fraction is None and self.count is None:
            return pool
        if self.count is not None:
            size = self.count
        else:
            size = int(round(self.fraction * len(pool)))
        size = max(self.minimum, size)
        size = min(size, len(pool))
        if size >= len(pool):
            return pool
        return sorted(rng.sample(pool, size), key=lambda peer: peer.base_id)


class CampaignEvent(abc.ABC):
    """One scheduled campaign action."""

    round_index: int
    group: str

    @abc.abstractmethod
    def apply(self, driver: CampaignDriver, simulator: InteractionSimulator) -> None:
        """Execute the event against the live simulation."""


@dataclass(frozen=True)
class SelectGroup(CampaignEvent):
    """Resolve a selector into the named sticky group."""

    round_index: int
    group: str
    selector: PeerSelector

    def apply(self, driver: CampaignDriver, simulator: InteractionSimulator) -> None:
        rng = simulator.streams.stream("campaign")
        driver.groups[self.group] = self.selector.select(simulator.directory.peers(), rng)


@dataclass(frozen=True)
class SwitchBehavior(CampaignEvent):
    """Replace the behaviour of every peer in a group."""

    round_index: int
    group: str
    factory: BehaviorFactory

    def apply(self, driver: CampaignDriver, simulator: InteractionSimulator) -> None:
        rng = simulator.streams.stream("campaign")
        members = driver.members(self.group)
        for peer in members:
            peer.behavior = self.factory(peer, members, rng)


@dataclass(frozen=True)
class SetOnline(CampaignEvent):
    """Force a group on- or offline, optionally pinning it there.

    A pinned-offline group is re-forced offline at every subsequent round
    start, overriding the natural churn model's rejoin draws — how a sybil
    cohort stays dormant until its burst round.  The event always restates
    the pin: ``online=False, pin=False`` forces the group offline *now* but
    releases any earlier pin, handing it back to natural churn.
    """

    round_index: int
    group: str
    online: bool
    pin: bool = False

    def apply(self, driver: CampaignDriver, simulator: InteractionSimulator) -> None:
        for peer in driver.members(self.group):
            peer.online = self.online
            if not self.online and self.pin:
                driver.pinned_offline.add(peer.base_id)
            else:
                driver.pinned_offline.discard(peer.base_id)


@dataclass(frozen=True)
class Whitewash(CampaignEvent):
    """Force every peer of a group to shed its identity and rejoin fresh.

    The reputation system loses the link to the old identity (scores reset
    to the mechanism default) while the simulator keeps attributing history
    to the ground-truth user, exactly like engine-driven whitewashing.
    """

    round_index: int
    group: str

    def apply(self, driver: CampaignDriver, simulator: InteractionSimulator) -> None:
        for peer in driver.members(self.group):
            old_id = peer.peer_id
            peer.new_identity()
            simulator.directory.rebind_identity(peer, old_id)
            if isinstance(peer.behavior, WhitewasherBehavior):
                peer.behavior.note_whitewash()


@dataclass
class AttackCampaign:
    """A named, composable schedule of campaign events.

    ``window`` is the half-open ``[start, end)`` round interval during which
    the attack is considered *active* — the robustness metrics anchor
    time-to-detect on its start and time-to-recover on its end.  ``churn``
    optionally replaces the simulation's churn model (campaigns that need a
    churn spike install a
    :class:`~repro.simulation.churn.PhasedChurnModel`).
    """

    name: str
    events: list[CampaignEvent] = field(default_factory=list)
    window: tuple[int, int] = (0, 0)
    churn: ChurnModel | None = None
    description: str = ""

    def __post_init__(self) -> None:
        start, end = self.window
        if start < 0 or end < start:
            raise ConfigurationError(
                f"campaign window needs 0 <= start <= end (got [{start}, {end}))"
            )
        for event in self.events:
            if event.round_index < 0:
                raise ConfigurationError(
                    f"campaign event scheduled at negative round {event.round_index}"
                )
        self.events = sorted(self.events, key=lambda event: event.round_index)

    def events_at(self, round_index: int) -> list[CampaignEvent]:
        return [event for event in self.events if event.round_index == round_index]

    @property
    def attack_start(self) -> int:
        return self.window[0]

    @property
    def attack_end(self) -> int:
        return self.window[1]


def combine(name: str, *campaigns: AttackCampaign) -> AttackCampaign:
    """Merge campaigns into one: union of events, envelope of windows.

    Group names are namespaced per source campaign to keep their sticky
    selections independent.  At most one source campaign may carry a custom
    churn model (two would conflict).
    """
    if not campaigns:
        raise ConfigurationError("combine needs at least one campaign")
    events: list[CampaignEvent] = []
    churn: ChurnModel | None = None
    for campaign in campaigns:
        for event in campaign.events:
            events.append(_namespaced(event, campaign.name))
        if campaign.churn is not None:
            if churn is not None:
                raise ConfigurationError("cannot combine two campaigns that both override churn")
            churn = campaign.churn
    starts = [c.attack_start for c in campaigns]
    ends = [c.attack_end for c in campaigns]
    return AttackCampaign(
        name=name,
        events=events,
        window=(min(starts), max(ends)),
        churn=churn,
        description=" + ".join(c.name for c in campaigns),
    )


def _namespaced(event: CampaignEvent, namespace: str) -> CampaignEvent:
    qualified = f"{namespace}/{event.group}"
    if isinstance(event, SelectGroup):
        return SelectGroup(event.round_index, qualified, event.selector)
    if isinstance(event, SwitchBehavior):
        return SwitchBehavior(event.round_index, qualified, event.factory)
    if isinstance(event, SetOnline):
        return SetOnline(event.round_index, qualified, event.online, event.pin)
    if isinstance(event, Whitewash):
        return Whitewash(event.round_index, qualified)
    raise ConfigurationError(f"cannot namespace unknown event type {type(event).__name__}")


class CampaignDriver:
    """Applies an :class:`AttackCampaign` through the engine's round hooks."""

    def __init__(self, campaign: AttackCampaign) -> None:
        self.campaign = campaign
        self.groups: dict[str, list[Peer]] = {}
        self.pinned_offline: set[str] = set()

    def members(self, group: str) -> list[Peer]:
        try:
            return self.groups[group]
        except KeyError:
            raise ConfigurationError(
                f"campaign group {group!r} referenced before SelectGroup resolved it"
            ) from None

    # -- RoundHook interface ------------------------------------------------

    def on_round_start(self, simulator: InteractionSimulator, round_index: int) -> None:
        for event in self.campaign.events_at(round_index):
            event.apply(self, simulator)
        if self.pinned_offline:
            for peer in simulator.directory.peers():
                if peer.base_id in self.pinned_offline:
                    peer.online = False

    def on_round_end(
        self, simulator: InteractionSimulator, round_index: int, scores: dict[str, float]
    ) -> None:
        """Campaigns act at round starts; nothing to do at round end."""

    # -- checkpoint protocol ------------------------------------------------

    def checkpoint_state(self) -> dict[str, object]:
        """Picklable cursor state: sticky group selections + offline pins.

        Peers are referenced by stable base id — the campaign itself (with
        its closures) is configuration and gets rebuilt on resume, so only
        the runtime decisions travel through the checkpoint.
        """
        return {
            "groups": {
                name: [peer.base_id for peer in members]
                for name, members in self.groups.items()
            },
            "pinned_offline": sorted(self.pinned_offline),
        }

    def restore_checkpoint_state(
        self, state: dict[str, object], simulator: InteractionSimulator
    ) -> None:
        """Re-resolve checkpointed group selections against the restored
        directory (same peers, same base ids)."""
        by_base_id = {peer.base_id: peer for peer in simulator.directory.peers()}
        groups = state.get("groups", {})
        pinned = state.get("pinned_offline", [])
        if not isinstance(groups, dict) or not isinstance(pinned, list):
            raise CheckpointError("malformed campaign-driver checkpoint state")
        try:
            self.groups = {
                str(name): [by_base_id[base_id] for base_id in base_ids]
                for name, base_ids in groups.items()
            }
        except KeyError as missing:
            raise CheckpointError(
                f"campaign checkpoint references unknown peer {missing.args[0]!r}"
            ) from missing
        self.pinned_offline = {str(base_id) for base_id in pinned}

"""The named attack-scenario catalog.

Each entry is a :class:`ScenarioSpec`: a name, a knob set with defaults, a
builder producing the :class:`~repro.scenarios.campaign.AttackCampaign` for
a given round budget, and (for scenarios that change the population, like
sybil influx) a graph-setup step.  The catalog is the declarative contract
between the simulation substrate and the robustness experiment: every
mechanism is evaluated against every entry, and sweeps/benchmarks reference
entries by name instead of re-assembling parameter tuples.

Scenarios
---------
``baseline``
    No attack — the control row recovery metrics are read against.
``collusion-ring``
    A ring of dishonest peers inflates each other and deflates everyone
    else; ``ring_fraction`` sizes the ring, ``density`` thins how many
    accomplices each member actually endorses.
``whitewash-wave``
    Dishonest peers periodically shed their identities (exit + rejoin under
    a fresh id) so the mechanism keeps losing its evidence about them.
``traitor-oscillation``
    Peers alternate grooming phases (serve well, build reputation) and
    betrayal phases (serve maliciously) on a configurable duty cycle.
``slander``
    Rating attack: attackers serve honestly but bad-mouth everyone outside
    their clique and (optionally) ballot-stuff each other.
``sybil-burst``
    A dormant cohort of fabricated identities floods in mid-run as a
    colluding bloc, then vanishes when the attack window closes.
``collusion-under-churn``
    The collusion ring layered on a churn spike — detection under
    population instability.
``marketplace``
    Buyer/seller dynamics: a fraud ring of dishonest merchants grooms a
    good reputation before ballot-stuffing each other, while a slice of
    honest users free-rides (consumes without serving).
``flash-crowd``
    Load spike: a dormant crowd floods in at the window start while the
    churn model surges return rates — a popularity event, not an attack.
``regional-partition``
    A random region of the network drops offline for the whole window
    (link failure / geographic partition) and then returns.
``long-horizon-drift``
    Slow behavioural drift: the dishonest cohort oscillates with a
    betrayal duty cycle that lengthens stage by stage until it defects
    permanently — designed for very long (10k-round) horizons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.campaign import (
    AttackCampaign,
    BehaviorFactory,
    CampaignEvent,
    PeerSelector,
    SelectGroup,
    SetOnline,
    SwitchBehavior,
    Whitewash,
    combine,
)
from repro.simulation.adversary import (
    BehaviorModel,
    CollusiveBehavior,
    GroomingBehavior,
    HonestBehavior,
    MaliciousBehavior,
    SelfishBehavior,
    SlanderBehavior,
    WhitewasherBehavior,
)
from repro.simulation.churn import ChurnPhase, PhasedChurnModel
from repro.simulation.peer import Peer
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User, standard_profile

#: Base-id prefix identifying injected sybil identities.
SYBIL_PREFIX = "sybil-"


def attack_window(
    rounds: int, lead_fraction: float = 0.25, attack_fraction: float = 0.5
) -> tuple[int, int]:
    """The ``[start, end)`` attack interval for a round budget.

    The lead keeps a pre-attack baseline to anchor recovery against; the
    remainder after the window is where recovery is measured.
    """
    if rounds < 1:
        raise ConfigurationError("attack_window needs at least one round")
    start = max(1, int(round(rounds * lead_fraction)))
    length = max(1, int(round(rounds * attack_fraction)))
    end = min(rounds, start + length)
    return start, end


# -- behaviour factories ---------------------------------------------------------


def _malicious_factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
    return MaliciousBehavior()


def _grooming_factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
    return GroomingBehavior()


def _whitewasher_factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
    return WhitewasherBehavior()


def _honest_factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
    return HonestBehavior()


def _selfish_factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
    return SelfishBehavior()


def _collusive_factory(density: float) -> BehaviorFactory:
    """Ring factory: each member endorses a ``density`` share of the ring."""

    def factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
        others = sorted(p.peer_id for p in group if p.base_id != peer.base_id)
        if density < 1.0 and others:
            keep = max(1, int(round(density * len(others))))
            others = sorted(rng.sample(others, min(keep, len(others))))
        return CollusiveBehavior(ring=set(others))

    return factory


def _slander_factory(ballot_stuffing: bool, slander_probability: float) -> BehaviorFactory:
    def factory(peer: Peer, group: Sequence[Peer], rng: random.Random) -> BehaviorModel:
        accomplices = (
            {p.peer_id for p in group if p.base_id != peer.base_id}
            if ballot_stuffing
            else set()
        )
        return SlanderBehavior(accomplices=accomplices, slander_probability=slander_probability)

    return factory


#: Behaviour names the declarative scenario schema may reference, mapped to
#: a factory-of-factories: ``builder(**args) -> BehaviorFactory``.  Simple
#: behaviours take no arguments; parameterized ones expose exactly the knobs
#: their underlying factory closes over.
_BEHAVIOR_BUILDERS: dict[str, Callable[..., BehaviorFactory]] = {
    "honest": lambda: _honest_factory,
    "malicious": lambda: _malicious_factory,
    "selfish": lambda: _selfish_factory,
    "grooming": lambda: _grooming_factory,
    "whitewasher": lambda: _whitewasher_factory,
    "collusive": lambda density=1.0: _collusive_factory(density),
    "slander": lambda ballot_stuffing=True, slander_probability=1.0: _slander_factory(
        ballot_stuffing, slander_probability
    ),
}


def behavior_names() -> list[str]:
    """Behaviour names addressable from declarative scenario templates."""
    return sorted(_BEHAVIOR_BUILDERS)


def behavior_factory(name: str, **args: object) -> BehaviorFactory:
    """The named behaviour factory, parameterized by ``args``.

    The declarative scenario schema resolves template ``switch`` events
    through this single entry point so template files can reference any
    behaviour the catalog's own builders use.
    """
    try:
        builder = _BEHAVIOR_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown behavior {name!r}; available: {behavior_names()}"
        ) from None
    try:
        return builder(**args)
    except TypeError:
        raise ConfigurationError(
            f"behavior {name!r} does not accept arguments {sorted(args)}"
        ) from None


# -- campaign builders -----------------------------------------------------------


def baseline(*, rounds: int) -> AttackCampaign:
    """No attack: the control scenario (window collapses to the run's end)."""
    return AttackCampaign(
        name="baseline",
        events=[],
        window=(rounds, rounds),
        description="no attack; control row for recovery metrics",
    )


def collusion_ring(
    *,
    rounds: int,
    ring_fraction: float = 0.6,
    density: float = 1.0,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    selector = PeerSelector(population="dishonest", fraction=ring_fraction, minimum=2)
    events: list[CampaignEvent] = [
        # Sleeper phase: the future ring grooms a good reputation first, so
        # the attack window flips coordinated inflation on from a position
        # of trust (the distinguishing feature of a real collusion ring).
        SelectGroup(0, "ring", selector),
        SwitchBehavior(0, "ring", _grooming_factory),
        SwitchBehavior(start, "ring", _collusive_factory(density)),
        SwitchBehavior(end, "ring", _malicious_factory),
    ]
    return AttackCampaign(
        name="collusion-ring",
        events=events,
        window=(start, end),
        description=f"ring of {ring_fraction:.0%} of dishonest peers, density {density}",
    )


def whitewash_wave(
    *,
    rounds: int,
    fraction: float = 0.8,
    wave_period: int = 3,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    if wave_period < 1:
        raise ConfigurationError("wave_period must be at least 1")
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(start, "washers", PeerSelector(population="dishonest", fraction=fraction)),
        SwitchBehavior(start, "washers", _whitewasher_factory),
    ]
    for wave_round in range(start, end, wave_period):
        events.append(Whitewash(wave_round, "washers"))
    return AttackCampaign(
        name="whitewash-wave",
        events=events,
        window=(start, end),
        description=f"identity reset every {wave_period} rounds during the window",
    )


def traitor_oscillation(
    *,
    rounds: int,
    fraction: float = 0.6,
    build_rounds: int = 4,
    betray_rounds: int = 3,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    if build_rounds < 1 or betray_rounds < 1:
        raise ConfigurationError("build_rounds and betray_rounds must be at least 1")
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(0, "traitors", PeerSelector(population="dishonest", fraction=fraction)),
        # Grooming from round 0: the lead *is* the build-up phase.
        SwitchBehavior(0, "traitors", _grooming_factory),
    ]
    betraying_from = start
    while betraying_from < end:
        events.append(SwitchBehavior(betraying_from, "traitors", _malicious_factory))
        grooming_from = betraying_from + betray_rounds
        if grooming_from < end:
            events.append(SwitchBehavior(grooming_from, "traitors", _grooming_factory))
        betraying_from = grooming_from + build_rounds
    if end < rounds:
        # After the window the traitors stay defected, so recovery measures
        # how fast the mechanism re-marks them down.
        events.append(SwitchBehavior(end, "traitors", _malicious_factory))
    return AttackCampaign(
        name="traitor-oscillation",
        events=events,
        window=(start, end),
        description=f"betray {betray_rounds} rounds / groom {build_rounds} rounds",
    )


def slander(
    *,
    rounds: int,
    fraction: float = 0.7,
    ballot_stuffing: bool = True,
    slander_probability: float = 1.0,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        # Slanderers also groom first: a rating attack mounted by peers the
        # mechanism already trusts is the damaging variant.
        SelectGroup(0, "slanderers", PeerSelector(population="dishonest", fraction=fraction)),
        SwitchBehavior(0, "slanderers", _grooming_factory),
        SwitchBehavior(start, "slanderers", _slander_factory(ballot_stuffing, slander_probability)),
        SwitchBehavior(end, "slanderers", _malicious_factory),
    ]
    stuffing = "with" if ballot_stuffing else "without"
    return AttackCampaign(
        name="slander",
        events=events,
        window=(start, end),
        description=f"bad-mouthing {stuffing} ballot stuffing",
    )


def sybil_burst(
    *,
    rounds: int,
    n_sybils: int = 8,
    attach_degree: int = 3,
    lead_fraction: float = 0.3,
    attack_fraction: float = 0.45,
) -> AttackCampaign:
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    selector = PeerSelector(population="all", prefix=SYBIL_PREFIX)
    events: list[CampaignEvent] = [
        SelectGroup(0, "sybils", selector),
        SetOnline(0, "sybils", online=False, pin=True),
        SetOnline(start, "sybils", online=True),
        SwitchBehavior(start, "sybils", _collusive_factory(1.0)),
        SetOnline(end, "sybils", online=False, pin=True),
    ]
    return AttackCampaign(
        name="sybil-burst",
        events=events,
        window=(start, end),
        description=f"{n_sybils} colluding sybils online only during the window",
    )


def collusion_under_churn(
    *,
    rounds: int,
    ring_fraction: float = 0.6,
    density: float = 1.0,
    churn_leave_probability: float = 0.25,
    churn_return_probability: float = 0.6,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    ring = collusion_ring(
        rounds=rounds,
        ring_fraction=ring_fraction,
        density=density,
        lead_fraction=lead_fraction,
        attack_fraction=attack_fraction,
    )
    start, end = ring.window
    churn_spike = AttackCampaign(
        name="churn-spike",
        events=[],
        window=(start, end),
        churn=PhasedChurnModel(
            leave_probability=0.02,
            return_probability=0.5,
            phases=[
                ChurnPhase(
                    start,
                    end,
                    leave_probability=churn_leave_probability,
                    return_probability=churn_return_probability,
                )
            ],
        ),
        description="churn spike during the attack window",
    )
    campaign = combine("collusion-under-churn", ring, churn_spike)
    campaign.description = (
        f"collusion ring plus churn spike (leave {churn_leave_probability} "
        f"during [{start}, {end}))"
    )
    return campaign


def marketplace(
    *,
    rounds: int,
    fraud_fraction: float = 0.5,
    freeride_fraction: float = 0.15,
    density: float = 1.0,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.5,
) -> AttackCampaign:
    """Buyer/seller dynamics: a grooming fraud ring plus honest free-riders.

    Dishonest merchants build a good track record first, then ballot-stuff
    each other during the window (fake five-star reviews) and defect outright
    afterwards.  Meanwhile a slice of the honest population free-rides from
    round 0 — consuming service while rarely providing it — which is not an
    attack but shapes the marketplace the mechanism must price.
    """
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(0, "fraud-ring", PeerSelector(population="dishonest", fraction=fraud_fraction, minimum=2)),
        SwitchBehavior(0, "fraud-ring", _grooming_factory),
        SelectGroup(0, "free-riders", PeerSelector(population="honest", fraction=freeride_fraction)),
        SwitchBehavior(0, "free-riders", _selfish_factory),
        SwitchBehavior(start, "fraud-ring", _collusive_factory(density)),
        SwitchBehavior(end, "fraud-ring", _malicious_factory),
    ]
    return AttackCampaign(
        name="marketplace",
        events=events,
        window=(start, end),
        description=(
            f"fraud ring of {fraud_fraction:.0%} of dishonest sellers, "
            f"{freeride_fraction:.0%} of honest users free-riding"
        ),
    )


def flash_crowd(
    *,
    rounds: int,
    crowd_fraction: float = 0.4,
    surge_return_probability: float = 0.95,
    surge_leave_probability: float = 0.02,
    base_leave_probability: float = 0.05,
    base_return_probability: float = 0.5,
    lead_fraction: float = 0.3,
    attack_fraction: float = 0.4,
) -> AttackCampaign:
    """Load spike: a dormant crowd floods in while churn surges.

    No adversarial behaviour changes — the stressor is pure population
    dynamics.  A ``crowd_fraction`` slice of all peers is held offline until
    the window opens, then released at once while the churn model switches
    to surge rates (high return, low leave); after the window the base churn
    rates drain the crowd back out.
    """
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(0, "crowd", PeerSelector(population="all", fraction=crowd_fraction)),
        SetOnline(0, "crowd", online=False, pin=True),
        SetOnline(start, "crowd", online=True),
    ]
    churn = PhasedChurnModel(
        leave_probability=base_leave_probability,
        return_probability=base_return_probability,
        phases=[
            ChurnPhase(
                start,
                end,
                leave_probability=surge_leave_probability,
                return_probability=surge_return_probability,
            )
        ],
    )
    return AttackCampaign(
        name="flash-crowd",
        events=events,
        window=(start, end),
        churn=churn,
        description=f"{crowd_fraction:.0%} of peers flood in at round {start}",
    )


def regional_partition(
    *,
    rounds: int,
    region_fraction: float = 0.3,
    lead_fraction: float = 0.25,
    attack_fraction: float = 0.4,
) -> AttackCampaign:
    """A random region drops offline for the window, then returns.

    Models a link failure or geographic partition: the region's peers are
    pinned offline for ``[start, end)``, so the mechanism must cope with the
    evidence gap and re-integrate the region afterwards.
    """
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(0, "region", PeerSelector(population="all", fraction=region_fraction)),
        SetOnline(start, "region", online=False, pin=True),
        SetOnline(end, "region", online=True),
    ]
    return AttackCampaign(
        name="regional-partition",
        events=events,
        window=(start, end),
        description=f"{region_fraction:.0%} of peers partitioned during [{start}, {end})",
    )


def long_horizon_drift(
    *,
    rounds: int,
    fraction: float = 0.8,
    n_stages: int = 5,
    lead_fraction: float = 0.1,
    attack_fraction: float = 0.8,
) -> AttackCampaign:
    """Slow behavioural drift toward permanent defection.

    The window is cut into ``n_stages`` equal stages; in stage *k* the
    drifting cohort betrays for ``(k+1)/n_stages`` of the stage and grooms
    for the rest, so the betrayal duty cycle lengthens until — after the
    window — the cohort defects for good.  Designed for very long horizons
    (the large template tier runs it for 10k rounds), where mechanisms with
    unbounded memory are slowest to track the drift.
    """
    if n_stages < 1:
        raise ConfigurationError("n_stages must be at least 1")
    start, end = attack_window(rounds, lead_fraction, attack_fraction)
    events: list[CampaignEvent] = [
        SelectGroup(0, "drifters", PeerSelector(population="dishonest", fraction=fraction)),
        SwitchBehavior(0, "drifters", _grooming_factory),
    ]
    span = end - start
    for stage in range(n_stages):
        stage_start = start + (stage * span) // n_stages
        stage_end = start + ((stage + 1) * span) // n_stages
        if stage_end <= stage_start:
            continue
        betray_rounds = max(1, (stage_end - stage_start) * (stage + 1) // n_stages)
        events.append(SwitchBehavior(stage_start, "drifters", _malicious_factory))
        groom_from = stage_start + betray_rounds
        if groom_from < stage_end:
            events.append(SwitchBehavior(groom_from, "drifters", _grooming_factory))
    events.append(SwitchBehavior(end, "drifters", _malicious_factory))
    return AttackCampaign(
        name="long-horizon-drift",
        events=events,
        window=(start, end),
        description=f"betrayal duty cycle lengthening over {n_stages} stages",
    )


# -- graph setup (population-changing scenarios) ---------------------------------


def inject_sybils(
    graph: SocialGraph,
    rng: random.Random,
    *,
    n_sybils: int = 8,
    attach_degree: int = 3,
    **_ignored: object,
) -> list[User]:
    """Add a dormant sybil cohort to the graph before the run starts.

    Sybils are fabricated dishonest identities wired into a clique (so they
    can ballot-stuff each other) plus ``attach_degree`` edges each onto the
    existing population (their victim surface).  The campaign keeps them
    offline until the burst round.
    """
    if n_sybils < 1:
        raise ConfigurationError("n_sybils must be at least 1")
    if attach_degree < 1:
        raise ConfigurationError("attach_degree must be at least 1")
    existing_ids = sorted(graph.user_ids())
    sybils: list[User] = []
    for index in range(n_sybils):
        user_id = f"{SYBIL_PREFIX}{index:03d}"
        user = User(
            user_id=user_id,
            profile=standard_profile(user_id),
            honesty=0.05,
            competence=0.2,
            activity=0.9,
            privacy_concern=0.0,
        )
        graph.add_user(user)
        sybils.append(user)
    for index, user in enumerate(sybils):
        for other in sybils[index + 1 :]:
            graph.add_relationship(user.user_id, other.user_id)
        targets = rng.sample(existing_ids, min(attach_degree, len(existing_ids)))
        for target in targets:
            if not graph.are_connected(user.user_id, target):
                graph.add_relationship(user.user_id, target)
    return sybils


# -- the catalog -----------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One catalog entry: name, knobs, campaign builder, optional graph setup."""

    name: str
    description: str
    build: Callable[..., AttackCampaign]
    knobs: Mapping[str, object] = field(default_factory=dict)
    setup_graph: Callable[..., object] | None = None
    #: Knobs consumed by ``setup_graph`` instead of the campaign builder.
    graph_knobs: tuple[str, ...] = ()

    def merged_knobs(self, overrides: Mapping[str, object]) -> dict[str, object]:
        unknown = sorted(set(overrides) - set(self.knobs))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} has no knobs {unknown}; "
                f"available: {sorted(self.knobs)}"
            )
        merged = dict(self.knobs)
        merged.update(overrides)
        return merged


CATALOG: dict[str, ScenarioSpec] = {
    "baseline": ScenarioSpec(
        name="baseline",
        description="no attack; the control row",
        build=baseline,
    ),
    "collusion-ring": ScenarioSpec(
        name="collusion-ring",
        description="dishonest ring inflates accomplices, deflates everyone else",
        build=collusion_ring,
        knobs={
            "ring_fraction": 0.6,
            "density": 1.0,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "whitewash-wave": ScenarioSpec(
        name="whitewash-wave",
        description="periodic identity resets erase the mechanism's evidence",
        build=whitewash_wave,
        knobs={
            "fraction": 0.8,
            "wave_period": 3,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "traitor-oscillation": ScenarioSpec(
        name="traitor-oscillation",
        description="groom/betray duty cycle of on-off traitors",
        build=traitor_oscillation,
        knobs={
            "fraction": 0.6,
            "build_rounds": 4,
            "betray_rounds": 3,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "slander": ScenarioSpec(
        name="slander",
        description="honest service, poisoned ratings (bad-mouth + ballot-stuff)",
        build=slander,
        knobs={
            "fraction": 0.7,
            "ballot_stuffing": True,
            "slander_probability": 1.0,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "sybil-burst": ScenarioSpec(
        name="sybil-burst",
        description="dormant colluding sybil cohort floods in mid-run",
        build=sybil_burst,
        knobs={
            "n_sybils": 8,
            "attach_degree": 3,
            "lead_fraction": 0.3,
            "attack_fraction": 0.45,
        },
        setup_graph=inject_sybils,
        graph_knobs=("n_sybils", "attach_degree"),
    ),
    "collusion-under-churn": ScenarioSpec(
        name="collusion-under-churn",
        description="collusion ring layered on a churn spike",
        build=collusion_under_churn,
        knobs={
            "ring_fraction": 0.6,
            "density": 1.0,
            "churn_leave_probability": 0.25,
            "churn_return_probability": 0.6,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "marketplace": ScenarioSpec(
        name="marketplace",
        description="grooming fraud ring of sellers plus free-riding buyers",
        build=marketplace,
        knobs={
            "fraud_fraction": 0.5,
            "freeride_fraction": 0.15,
            "density": 1.0,
            "lead_fraction": 0.25,
            "attack_fraction": 0.5,
        },
    ),
    "flash-crowd": ScenarioSpec(
        name="flash-crowd",
        description="dormant crowd floods in under surging churn (load spike)",
        build=flash_crowd,
        knobs={
            "crowd_fraction": 0.4,
            "surge_return_probability": 0.95,
            "surge_leave_probability": 0.02,
            "base_leave_probability": 0.05,
            "base_return_probability": 0.5,
            "lead_fraction": 0.3,
            "attack_fraction": 0.4,
        },
    ),
    "regional-partition": ScenarioSpec(
        name="regional-partition",
        description="a random region drops offline for the window, then returns",
        build=regional_partition,
        knobs={
            "region_fraction": 0.3,
            "lead_fraction": 0.25,
            "attack_fraction": 0.4,
        },
    ),
    "long-horizon-drift": ScenarioSpec(
        name="long-horizon-drift",
        description="betrayal duty cycle lengthening toward permanent defection",
        build=long_horizon_drift,
        knobs={
            "fraction": 0.8,
            "n_stages": 5,
            "lead_fraction": 0.1,
            "attack_fraction": 0.8,
        },
    ),
}

#: Names shipped by the module itself; :func:`register_scenario` protects
#: them from being shadowed by template-defined scenarios.
BUILTIN_SCENARIOS = frozenset(CATALOG)


def scenario_names() -> list[str]:
    """Catalog entry names in declaration order."""
    return list(CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(CATALOG)}"
        ) from None


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> None:
    """Add a scenario to the catalog at runtime (template-defined workloads).

    Built-in names can never be shadowed.  Re-registering a non-builtin name
    requires ``replace=True`` and purges the campaign memo for that name, so
    a template edited between two ``scenario run`` calls in one process
    cannot serve a stale campaign.
    """
    if spec.name in BUILTIN_SCENARIOS:
        raise ConfigurationError(
            f"scenario {spec.name!r} is a built-in catalog entry and cannot be replaced"
        )
    if spec.name in CATALOG and not replace:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered (pass replace=True to update)"
        )
    for key in [key for key in _CAMPAIGN_CACHE if key[0] == spec.name]:
        del _CAMPAIGN_CACHE[key]
    CATALOG[spec.name] = spec


def unregister_scenario(name: str) -> None:
    """Remove a runtime-registered scenario (no-op for unknown names)."""
    if name in BUILTIN_SCENARIOS:
        raise ConfigurationError(f"scenario {name!r} is built-in and cannot be unregistered")
    CATALOG.pop(name, None)
    for key in [key for key in _CAMPAIGN_CACHE if key[0] == name]:
        del _CAMPAIGN_CACHE[key]


#: Memo of built campaigns keyed by (scenario, rounds, knobs).  Campaigns
#: without a churn override are safe to share: their events are frozen
#: dataclasses and sticky-group state lives in the per-run
#: :class:`~repro.scenarios.campaign.CampaignDriver`.  Campaigns that carry
#: a churn model are built fresh every time — a
#: :class:`~repro.simulation.churn.PhasedChurnModel` counts rounds, and
#: although the engine rewinds it at simulator construction, two
#: simulators *constructed* before either *runs* would share (and corrupt)
#: one counter.  Sweeps and robustness matrices rebuild the same few
#: campaigns thousands of times otherwise.
_CAMPAIGN_CACHE_SIZE = 64
_CAMPAIGN_CACHE: dict[tuple, AttackCampaign] = {}


def clear_campaign_cache() -> None:
    """Drop every memoized campaign (tests use this)."""
    _CAMPAIGN_CACHE.clear()


def build_campaign(name: str, *, rounds: int, **overrides: object) -> AttackCampaign:
    """Build the named scenario's campaign for a round budget.

    ``overrides`` replace catalog knob defaults; unknown knobs raise.  Graph
    knobs (e.g. sybil counts) are accepted here for validation but consumed
    by :func:`setup_scenario_graph`.  Repeated calls with the same
    arguments return the same campaign object when it is stateless (no
    churn override); campaigns carrying a churn model are always fresh.
    """
    spec = get_scenario(name)
    knobs = spec.merged_knobs(overrides)
    try:
        key: tuple | None = (name, rounds, tuple(sorted(knobs.items())))
    except TypeError:
        key = None  # unhashable knob values: build fresh
    if key is not None:
        cached = _CAMPAIGN_CACHE.get(key)
        if cached is not None:
            return cached
    campaign = spec.build(rounds=rounds, **knobs)
    if key is not None and campaign.churn is None:
        if len(_CAMPAIGN_CACHE) >= _CAMPAIGN_CACHE_SIZE:
            _CAMPAIGN_CACHE.clear()
        _CAMPAIGN_CACHE[key] = campaign
    return campaign


def setup_scenario_graph(
    name: str, graph: SocialGraph, rng: random.Random, **overrides: object
) -> None:
    """Apply the scenario's population changes (if any) to a fresh graph."""
    spec = get_scenario(name)
    if spec.setup_graph is None:
        return
    knobs = spec.merged_knobs(overrides)
    spec.setup_graph(graph, rng, **{key: knobs[key] for key in spec.graph_knobs})

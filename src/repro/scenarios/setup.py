"""Shared scenario setup: build once per scenario row, reuse per cell.

The robustness experiment (and any sweep over it) evaluates every mechanism
against every catalog scenario.  Within one scenario row the expensive
setup work — generating the social network, applying the scenario's
population changes (sybil injection), drawing the directory's behaviour
plan — is *identical* across mechanism columns: it depends on the
specification and the seed, never on the mechanism, because provider
selection only becomes score-dependent once the simulation starts.  This
module caches that setup as a :class:`ScenarioSetup` snapshot keyed by
(specification, scenario, seed) and hands it to every cell.

Safety model: the snapshot is *immutable by contract and guarded by
version*.  Simulations mutate peers (which the
:class:`~repro.simulation.engine.DirectoryPlan` re-materializes freshly per
run), never the graph; scenarios that do mutate the population do so on a
``copy()`` of the cached base network at build time.  The graph's mutation
counter is recorded at store time, and a snapshot whose graph moved is
rebuilt instead of reused — a misbehaving consumer costs a regeneration,
not corrupted results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import accel
from repro.scenarios.catalog import get_scenario
from repro.simulation.engine import DirectoryPlan, build_directory_plan
from repro.simulation.rng import RandomStreams
from repro.socialnet.generators import (
    SocialNetworkSpec,
    cached_social_network,
    generate_social_network,
)
from repro.socialnet.graph import SocialGraph
from repro.socialnet.presets import preset_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.scenarios.runner import ScenarioRunConfig

#: LRU capacity; one entry per (spec, scenario, seed) — a robustness matrix
#: touches one at a time, a sweep a handful.
_SETUP_CACHE_SIZE = 8
_SETUP_CACHE: OrderedDict[tuple, ScenarioSetup] = OrderedDict()


@dataclass(frozen=True)
class ScenarioSetup:
    """One scenario row's shareable setup: graph plus directory plan."""

    graph: SocialGraph
    graph_version: int
    plan: DirectoryPlan

    def valid(self) -> bool:
        """Whether the snapshot's graph is still exactly as stored."""
        return self.graph.version == self.graph_version


def _config_spec(config: ScenarioRunConfig) -> SocialNetworkSpec:
    if config.preset is not None:
        return preset_spec(config.preset, seed=config.seed)
    return SocialNetworkSpec(
        n_users=config.n_users,
        topology=config.topology,
        malicious_fraction=config.malicious_fraction,
        seed=config.seed,
    )


def _setup_key(config: ScenarioRunConfig) -> tuple | None:
    spec = get_scenario(config.scenario)
    try:
        graph_knobs = tuple(
            sorted((k, v) for k, v in config.knobs.items() if k in spec.graph_knobs)
        )
    except TypeError:
        return None
    return (
        config.scenario,
        config.seed,
        config.preset,
        config.n_users,
        config.topology,
        config.malicious_fraction,
        graph_knobs,
    )


def build_scenario_setup(config: ScenarioRunConfig) -> ScenarioSetup:
    """Build the setup fresh (no caching): graph, population changes, plan."""
    from repro.scenarios.catalog import setup_scenario_graph

    spec = _config_spec(config)
    scenario = get_scenario(config.scenario)
    if scenario.setup_graph is None:
        graph = cached_social_network(spec)
    else:
        # Population-changing scenarios mutate the graph; never hand them
        # the shared base network.  (Cold mode regenerates outright.)
        if accel.flags().setup_cache:
            graph = cached_social_network(spec).copy()
        else:
            graph = generate_social_network(spec)
        # Population changes (sybil injection) draw from their own derived
        # stream so the generator's draws stay untouched.
        setup_rng = RandomStreams(config.seed).stream("scenario-setup")
        setup_scenario_graph(config.scenario, graph, setup_rng, **config.knobs)
    # The runner's simulations use the default adversary mix (the campaign,
    # not the mix fractions, drives the attack), so the plan draws exactly
    # what the engine would draw for this graph and seed.
    plan = build_directory_plan(graph, RandomStreams(config.seed).stream("behavior"))
    return ScenarioSetup(graph=graph, graph_version=graph.version, plan=plan)


def scenario_setup(config: ScenarioRunConfig) -> ScenarioSetup:
    """The (possibly cached) setup for one scenario run configuration."""
    if not accel.flags().setup_cache:
        return build_scenario_setup(config)
    key = _setup_key(config)
    if key is None:
        return build_scenario_setup(config)
    cached = _SETUP_CACHE.get(key)
    if cached is not None:
        if cached.valid():
            _SETUP_CACHE.move_to_end(key)
            return cached
        del _SETUP_CACHE[key]
    setup = build_scenario_setup(config)
    _SETUP_CACHE[key] = setup
    while len(_SETUP_CACHE) > _SETUP_CACHE_SIZE:
        _SETUP_CACHE.popitem(last=False)
    return setup


def clear_setup_cache() -> None:
    """Drop every cached scenario setup (tests and benchmarks use this)."""
    _SETUP_CACHE.clear()


__all__ = [
    "ScenarioSetup",
    "build_scenario_setup",
    "clear_setup_cache",
    "scenario_setup",
]

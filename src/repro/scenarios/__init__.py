"""Adversarial attack scenarios and robustness measurement.

A declarative catalog of named attack campaigns — collusion rings,
whitewashing waves, traitor oscillation, slander/ballot-stuffing, sybil
bursts, churn-layered composites — plus the machinery to run any of them
against any reputation mechanism and score the mechanism's attack
resistance (separation, rank correlation, time-to-detect, time-to-recover).

* :mod:`repro.scenarios.campaign` — the composable event/campaign model and
  the round-hook driver;
* :mod:`repro.scenarios.catalog` — the named scenarios and their knobs;
* :mod:`repro.scenarios.metrics` — the per-round trace and robustness
  metrics;
* :mod:`repro.scenarios.runner` — one-call scenario execution;
* :mod:`repro.scenarios.schema` — the declarative template front-end
  (versioned YAML/JSON scenario files compiling onto the same objects).
"""

from repro.scenarios.campaign import (
    AttackCampaign,
    CampaignDriver,
    CampaignEvent,
    PeerSelector,
    SelectGroup,
    SetOnline,
    SwitchBehavior,
    Whitewash,
    combine,
)
from repro.scenarios.catalog import (
    BUILTIN_SCENARIOS,
    CATALOG,
    SYBIL_PREFIX,
    ScenarioSpec,
    attack_window,
    behavior_factory,
    behavior_names,
    build_campaign,
    get_scenario,
    register_scenario,
    scenario_names,
    setup_scenario_graph,
    unregister_scenario,
)
from repro.scenarios.metrics import (
    NEVER,
    RobustnessMetrics,
    RoundObservation,
    ScenarioTrace,
    evaluate_trace,
)
from repro.scenarios.runner import (
    ScenarioRunConfig,
    ScenarioRunResult,
    reputation_for_graph,
    run_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "CATALOG",
    "NEVER",
    "SYBIL_PREFIX",
    "AttackCampaign",
    "CampaignDriver",
    "CampaignEvent",
    "PeerSelector",
    "RobustnessMetrics",
    "RoundObservation",
    "ScenarioRunConfig",
    "ScenarioRunResult",
    "ScenarioSpec",
    "ScenarioTrace",
    "SelectGroup",
    "SetOnline",
    "SwitchBehavior",
    "Whitewash",
    "attack_window",
    "behavior_factory",
    "behavior_names",
    "build_campaign",
    "combine",
    "evaluate_trace",
    "get_scenario",
    "register_scenario",
    "reputation_for_graph",
    "run_scenario",
    "scenario_names",
    "setup_scenario_graph",
    "unregister_scenario",
]

"""Running one catalog scenario end to end.

:func:`run_scenario` assembles the pieces — social graph (optionally
preset-based), reputation mechanism, attack campaign, trace hook — runs the
interaction simulation and condenses the trace into
:class:`~repro.scenarios.metrics.RobustnessMetrics`.  It is the unit of work
the robustness experiment (and any sweep over it) repeats per
(scenario, mechanism) cell.

:func:`reputation_for_graph` is the shared mechanism builder (EigenTrust's
pre-trusted founders, anonymous-feedback wrapping) also used by the
end-to-end :class:`~repro.experiments.scenario.Scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.backend import resolve_backend
from repro.errors import ConfigurationError
from repro.reputation import make_reputation_system
from repro.reputation.anonymous import AnonymousFeedbackReputation
from repro.reputation.base import ReputationSystem
from repro.scenarios.campaign import AttackCampaign, CampaignDriver
from repro.scenarios.catalog import build_campaign, get_scenario, setup_scenario_graph
from repro.scenarios.metrics import RobustnessMetrics, ScenarioTrace, evaluate_trace
from repro.simulation.engine import (
    InteractionSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.rng import RandomStreams
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network
from repro.socialnet.graph import SocialGraph
from repro.socialnet.presets import preset_spec


def reputation_for_graph(
    graph: SocialGraph,
    mechanism: str,
    *,
    seed: int = 0,
    backend: str = "auto",
    anonymous: bool = False,
) -> Optional[ReputationSystem]:
    """Build the named mechanism wired for a concrete graph.

    EigenTrust assumes a small set of pre-trusted peers (the network
    founders); model them as the three best-connected honest users.  Without
    them the uniform restart hands the dishonest clique enough mass to blunt
    the mechanism.  ``mechanism="none"`` returns ``None`` (the no-reputation
    baseline).
    """
    if mechanism == "none":
        return None
    if mechanism == "eigentrust":
        founders = sorted(
            (user.user_id for user in graph.users() if user.is_honest),
            key=lambda uid: -graph.degree(uid),
        )[:3]
        system = make_reputation_system(mechanism, pretrusted=founders, backend=backend)
    else:
        system = make_reputation_system(mechanism, backend=backend)
    if anonymous:
        return AnonymousFeedbackReputation(system, seed=seed)
    return system


@dataclass
class ScenarioRunConfig:
    """Everything one robustness scenario run needs."""

    scenario: str = "collusion-ring"
    mechanism: str = "eigentrust"
    n_users: int = 40
    rounds: int = 30
    seed: int = 0
    backend: str = "auto"
    topology: str = "barabasi_albert"
    malicious_fraction: float = 0.25
    interactions_per_peer: float = 1.0
    sharing_level: float = 1.0
    #: Optional named social-network preset; overrides ``n_users``,
    #: ``topology`` and ``malicious_fraction`` when given.
    preset: Optional[str] = None
    #: Scenario knob overrides (catalog defaults apply otherwise).
    knobs: Dict[str, object] = field(default_factory=dict)
    detect_threshold: float = 0.1
    recovery_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be at least 1")
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        resolve_backend(self.backend)
        get_scenario(self.scenario)  # fail fast on unknown scenario names


@dataclass
class ScenarioRunResult:
    """One executed (scenario, mechanism) cell."""

    config: ScenarioRunConfig
    campaign: AttackCampaign
    graph: SocialGraph
    simulation: SimulationResult
    trace: ScenarioTrace
    robustness: RobustnessMetrics
    final_scores: Dict[str, float]


def run_scenario(config: Optional[ScenarioRunConfig] = None, **overrides) -> ScenarioRunResult:
    """Run one catalog scenario against one mechanism.

    Keyword overrides build a :class:`ScenarioRunConfig` when none is given.
    The whole pipeline draws only from seed-derived named streams, and the
    robustness numbers come from the mechanism's quantized published scores,
    so results are byte-stable across compute backends and worker processes.
    """
    if config is None:
        config = ScenarioRunConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config object or keyword overrides")

    if config.preset is not None:
        spec = preset_spec(config.preset, seed=config.seed)
    else:
        spec = SocialNetworkSpec(
            n_users=config.n_users,
            topology=config.topology,
            malicious_fraction=config.malicious_fraction,
            seed=config.seed,
        )
    graph = generate_social_network(spec)
    # Population changes (sybil injection) draw from their own derived
    # stream so the generator's draws stay untouched.
    setup_rng = RandomStreams(config.seed).stream("scenario-setup")
    setup_scenario_graph(config.scenario, graph, setup_rng, **config.knobs)

    campaign = build_campaign(config.scenario, rounds=config.rounds, **config.knobs)
    reputation = reputation_for_graph(
        graph, config.mechanism, seed=config.seed, backend=config.backend
    )
    driver = CampaignDriver(campaign)
    trace = ScenarioTrace()

    sim_config = SimulationConfig(
        rounds=config.rounds,
        sharing_level=config.sharing_level,
        interactions_per_peer=config.interactions_per_peer,
        seed=config.seed,
        backend=config.backend,
    )
    if campaign.churn is not None:
        sim_config.churn = campaign.churn
    simulator = InteractionSimulator(
        graph,
        sim_config,
        reputation=reputation,
        hooks=(driver, trace),
    )
    simulation = simulator.run()
    robustness = evaluate_trace(
        trace.observations,
        campaign.window,
        detect_threshold=config.detect_threshold,
        recovery_fraction=config.recovery_fraction,
    )
    final_scores = reputation.scores() if reputation is not None else {}
    return ScenarioRunResult(
        config=config,
        campaign=campaign,
        graph=graph,
        simulation=simulation,
        trace=trace,
        robustness=robustness,
        final_scores=final_scores,
    )

"""Running one catalog scenario end to end.

:func:`run_scenario` assembles the pieces — social graph (optionally
preset-based), reputation mechanism, attack campaign, trace hook — runs the
interaction simulation and condenses the trace into
:class:`~repro.scenarios.metrics.RobustnessMetrics`.  It is the unit of work
the robustness experiment (and any sweep over it) repeats per
(scenario, mechanism) cell.

Two acceleration layers sit in front of the simulation, both pure with
respect to results (see :mod:`repro.core.accel`):

* the **setup cache** (:mod:`repro.scenarios.setup`) shares the generated
  graph and the directory plan across every mechanism column of a scenario
  row — only setup is shared; the simulation still runs per mechanism,
  since provider selection is score-dependent;
* the **run cache** (off by default; sweep workers enable it) memoizes
  whole simulations per process, so sweep points that differ only in
  post-simulation metric knobs (detection threshold, recovery fraction)
  re-evaluate the recorded trace instead of re-simulating.

:func:`reputation_for_graph` is the shared mechanism builder (EigenTrust's
pre-trusted founders, anonymous-feedback wrapping) also used by the
end-to-end :class:`~repro.experiments.scenario.Scenario`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import _profiling
from repro.core import accel
from repro.core.backend import resolve_backend
from repro.errors import ConfigurationError
from repro.reputation import make_reputation_system
from repro.reputation.anonymous import AnonymousFeedbackReputation
from repro.reputation.base import ReputationSystem
from repro.scenarios.campaign import AttackCampaign, CampaignDriver
from repro.scenarios.catalog import build_campaign, get_scenario
from repro.scenarios.metrics import RobustnessMetrics, ScenarioTrace, evaluate_trace
from repro.scenarios.setup import scenario_setup
from repro.simulation.engine import (
    InteractionSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.socialnet.graph import SocialGraph


def reputation_for_graph(
    graph: SocialGraph,
    mechanism: str,
    *,
    seed: int = 0,
    backend: str = "auto",
    anonymous: bool = False,
) -> ReputationSystem | None:
    """Build the named mechanism wired for a concrete graph.

    EigenTrust assumes a small set of pre-trusted peers (the network
    founders); model them as the three best-connected honest users.  Without
    them the uniform restart hands the dishonest clique enough mass to blunt
    the mechanism.  ``mechanism="none"`` returns ``None`` (the no-reputation
    baseline).
    """
    if mechanism == "none":
        return None
    if mechanism == "eigentrust":
        founders = sorted(
            (user.user_id for user in graph.users() if user.is_honest),
            key=lambda uid: -graph.degree(uid),
        )[:3]
        system = make_reputation_system(mechanism, pretrusted=founders, backend=backend)
    else:
        system = make_reputation_system(mechanism, backend=backend)
    if anonymous:
        return AnonymousFeedbackReputation(system, seed=seed)
    return system


@dataclass
class ScenarioRunConfig:
    """Everything one robustness scenario run needs."""

    scenario: str = "collusion-ring"
    mechanism: str = "eigentrust"
    n_users: int = 40
    rounds: int = 30
    seed: int = 0
    backend: str = "auto"
    topology: str = "barabasi_albert"
    malicious_fraction: float = 0.25
    interactions_per_peer: float = 1.0
    sharing_level: float = 1.0
    #: Optional named social-network preset; overrides ``n_users``,
    #: ``topology`` and ``malicious_fraction`` when given.
    preset: str | None = None
    #: Scenario knob overrides (catalog defaults apply otherwise).
    knobs: dict[str, object] = field(default_factory=dict)
    detect_threshold: float = 0.1
    recovery_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be at least 1")
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        resolve_backend(self.backend)
        get_scenario(self.scenario)  # fail fast on unknown scenario names

    def simulation_key(self) -> tuple | None:
        """Identity of everything that shapes the *simulation* (not the
        post-hoc metric evaluation): the run-cache key.  ``None`` when the
        knobs are unhashable."""
        try:
            knob_key = tuple(sorted(self.knobs.items()))
        except TypeError:
            return None
        return (
            self.scenario,
            self.mechanism,
            self.n_users,
            self.rounds,
            self.seed,
            self.backend,
            self.topology,
            self.malicious_fraction,
            self.interactions_per_peer,
            self.sharing_level,
            self.preset,
            knob_key,
        )


@dataclass
class ScenarioRunResult:
    """One executed (scenario, mechanism) cell."""

    config: ScenarioRunConfig
    campaign: AttackCampaign
    graph: SocialGraph
    simulation: SimulationResult
    trace: ScenarioTrace
    robustness: RobustnessMetrics
    final_scores: dict[str, float]


#: Per-process memo of executed simulations (run cache).  Sized to hold one
#: full robustness matrix pass (7 catalog scenarios × 5 mechanisms) with
#: headroom, so threshold-grid re-evaluations hit across whole passes.
#: Entries keep the full simulation products (roughly a few MB each at
#: laptop-scale populations), which is why the cache is opt-in.
_RUN_CACHE_SIZE = 48
_RUN_CACHE: OrderedDict[tuple, ScenarioRunResult] = OrderedDict()


def clear_run_cache() -> None:
    """Drop every memoized scenario run (tests and benchmarks use this)."""
    _RUN_CACHE.clear()


def _evaluate(config: ScenarioRunConfig, base: ScenarioRunResult) -> ScenarioRunResult:
    """Re-derive the metric layer of a finished run for (possibly new)
    detection/recovery knobs.  Everything upstream of ``evaluate_trace`` is
    shared with the cached run; the trace observations are frozen rows."""
    robustness = evaluate_trace(
        base.trace.observations,
        base.campaign.window,
        detect_threshold=config.detect_threshold,
        recovery_fraction=config.recovery_fraction,
        final_rank_correlation=base.trace.final_rank_correlation(),
    )
    return ScenarioRunResult(
        config=config,
        campaign=base.campaign,
        graph=base.graph,
        simulation=base.simulation,
        trace=base.trace,
        robustness=robustness,
        final_scores=base.final_scores,
    )


def run_scenario(config: ScenarioRunConfig | None = None, **overrides: object) -> ScenarioRunResult:
    """Run one catalog scenario against one mechanism.

    Keyword overrides build a :class:`ScenarioRunConfig` when none is given.
    The whole pipeline draws only from seed-derived named streams, and the
    robustness numbers come from the mechanism's quantized published scores,
    so results are byte-stable across compute backends, worker processes
    and every acceleration flag.
    """
    if config is None:
        config = ScenarioRunConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config object or keyword overrides")

    run_key = config.simulation_key() if accel.flags().run_cache else None
    if run_key is not None:
        cached = _RUN_CACHE.get(run_key)
        if cached is not None:
            _RUN_CACHE.move_to_end(run_key)
            with _profiling.phase("metrics"):
                return _evaluate(config, cached)

    with _profiling.phase("setup"):
        setup = scenario_setup(config)
        graph = setup.graph
        campaign = build_campaign(config.scenario, rounds=config.rounds, **config.knobs)
        reputation = reputation_for_graph(
            graph, config.mechanism, seed=config.seed, backend=config.backend
        )
        driver = CampaignDriver(campaign)
        trace = ScenarioTrace()

        sim_config = SimulationConfig(
            rounds=config.rounds,
            sharing_level=config.sharing_level,
            interactions_per_peer=config.interactions_per_peer,
            seed=config.seed,
            backend=config.backend,
        )
        if campaign.churn is not None:
            sim_config.churn = campaign.churn
        simulator = InteractionSimulator(
            graph,
            sim_config,
            reputation=reputation,
            hooks=(driver, trace),
            directory_plan=setup.plan,
        )
    with _profiling.phase("simulate"):
        simulation = simulator.run()
    with _profiling.phase("metrics"):
        robustness = evaluate_trace(
            trace.observations,
            campaign.window,
            detect_threshold=config.detect_threshold,
            recovery_fraction=config.recovery_fraction,
            final_rank_correlation=trace.final_rank_correlation(),
        )
        final_scores = reputation.scores() if reputation is not None else {}
    result = ScenarioRunResult(
        config=config,
        campaign=campaign,
        graph=graph,
        simulation=simulation,
        trace=trace,
        robustness=robustness,
        final_scores=final_scores,
    )
    if run_key is not None:
        _RUN_CACHE[run_key] = result
        while len(_RUN_CACHE) > _RUN_CACHE_SIZE:
            _RUN_CACHE.popitem(last=False)
    return result

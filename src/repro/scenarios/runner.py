"""Running one catalog scenario end to end.

:func:`run_scenario` assembles the pieces — social graph (optionally
preset-based), reputation mechanism, attack campaign, trace hook — runs the
interaction simulation and condenses the trace into
:class:`~repro.scenarios.metrics.RobustnessMetrics`.  It is the unit of work
the robustness experiment (and any sweep over it) repeats per
(scenario, mechanism) cell.

Two acceleration layers sit in front of the simulation, both pure with
respect to results (see :mod:`repro.core.accel`):

* the **setup cache** (:mod:`repro.scenarios.setup`) shares the generated
  graph and the directory plan across every mechanism column of a scenario
  row — only setup is shared; the simulation still runs per mechanism,
  since provider selection is score-dependent;
* the **run cache** (off by default; sweep workers enable it) memoizes
  whole simulations per process, so sweep points that differ only in
  post-simulation metric knobs (detection threshold, recovery fraction)
  re-evaluate the recorded trace instead of re-simulating.

:func:`reputation_for_graph` is the shared mechanism builder (EigenTrust's
pre-trusted founders, anonymous-feedback wrapping) also used by the
end-to-end :class:`~repro.experiments.scenario.Scenario`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import _profiling
from repro.core import accel
from repro.core.backend import resolve_backend
from repro.errors import CheckpointError, ConfigurationError
from repro.reputation import make_reputation_system
from repro.reputation.anonymous import AnonymousFeedbackReputation
from repro.reputation.base import ReputationSystem
from repro.scenarios.campaign import AttackCampaign, CampaignDriver
from repro.scenarios.catalog import build_campaign, get_scenario
from repro.scenarios.metrics import RobustnessMetrics, ScenarioTrace, evaluate_trace
from repro.scenarios.setup import scenario_setup
from repro.simulation.checkpoint import (
    SimulatorState,
    capture_state,
    read_checkpoint,
    restore_simulator,
    write_checkpoint,
)
from repro.simulation.engine import (
    InteractionSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.socialnet.graph import SocialGraph


def reputation_for_graph(
    graph: SocialGraph,
    mechanism: str,
    *,
    seed: int = 0,
    backend: str = "auto",
    anonymous: bool = False,
) -> ReputationSystem | None:
    """Build the named mechanism wired for a concrete graph.

    EigenTrust assumes a small set of pre-trusted peers (the network
    founders); model them as the three best-connected honest users.  Without
    them the uniform restart hands the dishonest clique enough mass to blunt
    the mechanism.  ``mechanism="none"`` returns ``None`` (the no-reputation
    baseline).
    """
    if mechanism == "none":
        return None
    if mechanism == "eigentrust":
        founders = sorted(
            (user.user_id for user in graph.users() if user.is_honest),
            key=lambda uid: -graph.degree(uid),
        )[:3]
        system = make_reputation_system(mechanism, pretrusted=founders, backend=backend)
    else:
        system = make_reputation_system(mechanism, backend=backend)
    if anonymous:
        return AnonymousFeedbackReputation(system, seed=seed)
    return system


@dataclass
class ScenarioRunConfig:
    """Everything one robustness scenario run needs."""

    scenario: str = "collusion-ring"
    mechanism: str = "eigentrust"
    n_users: int = 40
    rounds: int = 30
    seed: int = 0
    backend: str = "auto"
    topology: str = "barabasi_albert"
    malicious_fraction: float = 0.25
    interactions_per_peer: float = 1.0
    sharing_level: float = 1.0
    #: Optional named social-network preset; overrides ``n_users``,
    #: ``topology`` and ``malicious_fraction`` when given.
    preset: str | None = None
    #: Scenario knob overrides (catalog defaults apply otherwise).
    knobs: dict[str, object] = field(default_factory=dict)
    detect_threshold: float = 0.1
    recovery_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be at least 1")
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        resolve_backend(self.backend)
        get_scenario(self.scenario)  # fail fast on unknown scenario names

    def simulation_key(self) -> tuple | None:
        """Identity of everything that shapes the *simulation* (not the
        post-hoc metric evaluation): the run-cache key.  ``None`` when the
        knobs are unhashable."""
        try:
            knob_key = tuple(sorted(self.knobs.items()))
        except TypeError:
            return None
        return (
            self.scenario,
            self.mechanism,
            self.n_users,
            self.rounds,
            self.seed,
            self.backend,
            self.topology,
            self.malicious_fraction,
            self.interactions_per_peer,
            self.sharing_level,
            self.preset,
            knob_key,
        )


@dataclass
class ScenarioRunResult:
    """One executed (scenario, mechanism) cell."""

    config: ScenarioRunConfig
    campaign: AttackCampaign
    graph: SocialGraph
    simulation: SimulationResult
    trace: ScenarioTrace
    robustness: RobustnessMetrics
    final_scores: dict[str, float]


#: Per-process memo of executed simulations (run cache).  Sized to hold one
#: full robustness matrix pass (7 catalog scenarios × 5 mechanisms) with
#: headroom, so threshold-grid re-evaluations hit across whole passes.
#: Entries keep the full simulation products (roughly a few MB each at
#: laptop-scale populations), which is why the cache is opt-in.
_RUN_CACHE_SIZE = 48
_RUN_CACHE: OrderedDict[tuple, ScenarioRunResult] = OrderedDict()


def clear_run_cache() -> None:
    """Drop every memoized scenario run (tests and benchmarks use this)."""
    _RUN_CACHE.clear()


def _evaluate(config: ScenarioRunConfig, base: ScenarioRunResult) -> ScenarioRunResult:
    """Re-derive the metric layer of a finished run for (possibly new)
    detection/recovery knobs.  Everything upstream of ``evaluate_trace`` is
    shared with the cached run; the trace observations are frozen rows."""
    robustness = evaluate_trace(
        base.trace.observations,
        base.campaign.window,
        detect_threshold=config.detect_threshold,
        recovery_fraction=config.recovery_fraction,
        final_rank_correlation=base.trace.final_rank_correlation(),
    )
    return ScenarioRunResult(
        config=config,
        campaign=base.campaign,
        graph=base.graph,
        simulation=base.simulation,
        trace=base.trace,
        robustness=robustness,
        final_scores=base.final_scores,
    )


@dataclass
class ScenarioCheckpoint:
    """What a scenario-run checkpoint file carries.

    The run config travels with the simulator state so resume can rebuild
    the unpicklable configuration layer (campaign closures, trace hooks)
    from the catalog before rehydrating hook cursors out of ``state``.
    """

    config: ScenarioRunConfig
    state: SimulatorState


def _save_scenario_checkpoint(
    path: str, config: ScenarioRunConfig, simulator: InteractionSimulator
) -> None:
    state = capture_state(simulator)
    write_checkpoint(
        path,
        "scenario",
        ScenarioCheckpoint(config=config, state=state),
        round_index=state.next_round,
    )


def _run_segments(
    simulator: InteractionSimulator,
    config: ScenarioRunConfig,
    checkpoint_every: int | None,
    checkpoint_path: str | None,
) -> None:
    """Run the remaining rounds, checkpointing at segment boundaries.

    Segmentation changes nothing about the trajectory (see
    :meth:`InteractionSimulator.run_until`); each completed segment
    atomically replaces the checkpoint file, so a crash at any instant
    loses at most ``checkpoint_every`` rounds of work.
    """
    if checkpoint_every is None:
        simulator.run_until(config.rounds)
        return
    assert checkpoint_path is not None  # enforced by _check_checkpoint_args
    while simulator.completed_rounds < config.rounds:
        target = min(config.rounds, simulator.completed_rounds + checkpoint_every)
        simulator.run_until(target)
        _save_scenario_checkpoint(checkpoint_path, config, simulator)


def _check_checkpoint_args(checkpoint_every: int | None, checkpoint_path: str | None) -> None:
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be at least 1")
    if checkpoint_every is not None and checkpoint_path is None:
        raise ConfigurationError("checkpoint_every needs a checkpoint_path to write to")


def _collect_result(
    config: ScenarioRunConfig,
    campaign: AttackCampaign,
    simulator: InteractionSimulator,
    trace: ScenarioTrace,
) -> ScenarioRunResult:
    """Condense a finished simulator into the run result (metrics layer)."""
    simulation = simulator.result()
    robustness = evaluate_trace(
        trace.observations,
        campaign.window,
        detect_threshold=config.detect_threshold,
        recovery_fraction=config.recovery_fraction,
        final_rank_correlation=trace.final_rank_correlation(),
    )
    reputation = simulator.reputation
    final_scores = (
        reputation.scores() if isinstance(reputation, ReputationSystem) else {}
    )
    return ScenarioRunResult(
        config=config,
        campaign=campaign,
        graph=simulator.graph,
        simulation=simulation,
        trace=trace,
        robustness=robustness,
        final_scores=final_scores,
    )


def run_scenario(
    config: ScenarioRunConfig | None = None,
    *,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
    **overrides: object,
) -> ScenarioRunResult:
    """Run one catalog scenario against one mechanism.

    Keyword overrides build a :class:`ScenarioRunConfig` when none is given.
    The whole pipeline draws only from seed-derived named streams, and the
    robustness numbers come from the mechanism's quantized published scores,
    so results are byte-stable across compute backends, worker processes
    and every acceleration flag.

    With ``checkpoint_every=N`` the run snapshots its full state to
    ``checkpoint_path`` every N rounds (atomic replace, newest wins);
    :func:`resume_scenario` picks such a file up after a crash and finishes
    the run byte-identically.  Checkpointed runs bypass the run cache: a
    cache hit would skip the simulation and therefore write no checkpoints.
    """
    if config is None:
        config = ScenarioRunConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config object or keyword overrides")
    _check_checkpoint_args(checkpoint_every, checkpoint_path)

    run_key = (
        config.simulation_key()
        if accel.flags().run_cache and checkpoint_every is None
        else None
    )
    if run_key is not None:
        cached = _RUN_CACHE.get(run_key)
        if cached is not None:
            _RUN_CACHE.move_to_end(run_key)
            with _profiling.phase("metrics"):
                return _evaluate(config, cached)

    with _profiling.phase("setup"):
        setup = scenario_setup(config)
        graph = setup.graph
        campaign = build_campaign(config.scenario, rounds=config.rounds, **config.knobs)
        reputation = reputation_for_graph(
            graph, config.mechanism, seed=config.seed, backend=config.backend
        )
        driver = CampaignDriver(campaign)
        trace = ScenarioTrace()

        sim_config = SimulationConfig(
            rounds=config.rounds,
            sharing_level=config.sharing_level,
            interactions_per_peer=config.interactions_per_peer,
            seed=config.seed,
            backend=config.backend,
        )
        if campaign.churn is not None:
            sim_config.churn = campaign.churn
        simulator = InteractionSimulator(
            graph,
            sim_config,
            reputation=reputation,
            hooks=(driver, trace),
            directory_plan=setup.plan,
        )
    with _profiling.phase("simulate"):
        _run_segments(simulator, config, checkpoint_every, checkpoint_path)
    with _profiling.phase("metrics"):
        result = _collect_result(config, campaign, simulator, trace)
    if run_key is not None:
        _RUN_CACHE[run_key] = result
        while len(_RUN_CACHE) > _RUN_CACHE_SIZE:
            _RUN_CACHE.popitem(last=False)
    return result


def resume_scenario(
    path: str,
    *,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
) -> ScenarioRunResult:
    """Finish a checkpointed scenario run and return its full result.

    Reads a checkpoint written by ``run_scenario(..., checkpoint_every=N)``,
    rebuilds the configuration layer (campaign, hooks) from the catalog,
    rehydrates every piece of runtime state and runs the remaining rounds.
    The returned result — and any record derived from it — is byte-identical
    to the uninterrupted run's.

    ``checkpoint_every`` keeps checkpointing during the resumed portion
    (to ``checkpoint_path``, defaulting to the source file), so a resumed
    run that crashes again stays resumable.
    """
    _, payload = read_checkpoint(path, expected_kind="scenario")
    if not isinstance(payload, ScenarioCheckpoint):
        raise CheckpointError(f"{path}: payload is not a scenario checkpoint")
    config = payload.config
    if checkpoint_every is not None and checkpoint_path is None:
        checkpoint_path = path
    _check_checkpoint_args(checkpoint_every, checkpoint_path)

    with _profiling.phase("setup"):
        campaign = build_campaign(config.scenario, rounds=config.rounds, **config.knobs)
        driver = CampaignDriver(campaign)
        trace = ScenarioTrace()
        simulator = restore_simulator(payload.state, hooks=(driver, trace))
    with _profiling.phase("simulate"):
        _run_segments(simulator, config, checkpoint_every, checkpoint_path)
    with _profiling.phase("metrics"):
        return _collect_result(config, campaign, simulator, trace)

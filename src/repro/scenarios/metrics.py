"""Attack-resistance metrics: what a robustness scenario measures.

A :class:`ScenarioTrace` rides the engine's round hooks and snapshots, every
round, how well the reputation mechanism is holding up: the good-vs-bad
score separation, the rank correlation of published scores against
ground-truth service quality, and the round's malicious-transaction rate.
:func:`evaluate_trace` then condenses the per-round series against the
campaign's attack window into the headline robustness numbers:

* **separation** before / during / after the attack — the gap the attack
  tries to collapse;
* **time-to-detect** — rounds after the attack starts until the mechanism
  separates the populations by at least the detection threshold;
* **time-to-recover** — rounds after the attack ends until separation is
  back to the pre-attack baseline (scaled by the recovery fraction);
* malicious-transaction rates during and after the attack — what the users
  actually experienced.

Everything is pure Python over the engine's quantized scores, so robustness
records are byte-identical across compute backends and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import cast

from repro._util import mean
from repro.errors import CheckpointError, ConfigurationError
from repro.reputation.accuracy import score_separation, spearman_rank_correlation
from repro.simulation.engine import InteractionSimulator

#: A peer never detected / never recovered within the run.
NEVER = -1


@dataclass(frozen=True)
class RoundObservation:
    """One round's robustness snapshot.

    ``rank_correlation`` is ``None`` when the trace runs in its default
    ``correlation="final"`` mode, where only the last round's correlation —
    the one the robustness metrics report — is computed (rank correlation
    is the most expensive per-round statistic, and intermediate values were
    never consumed).  Construct the trace with ``correlation="all"`` to get
    the per-round series.
    """

    round_index: int
    honest_mean: float
    attacker_mean: float
    separation: float
    rank_correlation: float | None
    malicious_rate: float
    online_peers: int


class ScenarioTrace:
    """Round hook recording a :class:`RoundObservation` per round.

    Scores are read under each peer's *current* identity (what provider
    selection actually sees); peers the mechanism has no evidence about —
    including freshly whitewashed identities — count at the mechanism's
    default score, so an identity reset shows up as the attacker mean
    snapping back toward the default.
    """

    def __init__(self, *, correlation: str = "final") -> None:
        if correlation not in ("final", "all"):
            raise ConfigurationError(
                f"correlation must be 'final' or 'all', got {correlation!r}"
            )
        self.observations: list[RoundObservation] = []
        self._correlation_mode = correlation
        #: (scores, quality truth) of the latest round, for the lazy final
        #: correlation; replaced wholesale every round, never mutated.
        self._final_inputs: tuple[dict[str, float], dict[str, float]] | None = None
        self._final_correlation: tuple[int, float] | None = None

    def on_round_start(self, simulator: InteractionSimulator, round_index: int) -> None:
        """Traces only observe; nothing happens at round start."""

    def on_round_end(
        self, simulator: InteractionSimulator, round_index: int, scores: dict[str, float]
    ) -> None:
        reputation = simulator.reputation
        default = getattr(reputation, "default_score", 0.5) if reputation else 0.5
        current_scores: dict[str, float] = {}
        honesty_truth: dict[str, float] = {}
        quality_truth: dict[str, float] = {}
        honest_scores: list[float] = []
        attacker_scores: list[float] = []
        for peer in simulator.directory.peers():
            score = scores.get(peer.peer_id, default)
            current_scores[peer.base_id] = score
            honesty_truth[peer.base_id] = peer.user.honesty
            # Ground-truth service quality: competence delivered at the
            # honesty rate — the quantity a consistent mechanism should rank.
            quality_truth[peer.base_id] = peer.user.honesty * peer.user.competence
            if peer.user.is_honest:
                honest_scores.append(score)
            else:
                attacker_scores.append(score)
        honest_mean = mean(honest_scores) if honest_scores else 0.0
        attacker_mean = mean(attacker_scores) if attacker_scores else 0.0
        # score_separation classifies by honesty >= 0.5, the same split as
        # User.is_honest, so it equals honest_mean - attacker_mean whenever
        # both classes are populated.
        separation = score_separation(current_scores, honesty_truth)
        if self._correlation_mode == "all":
            rank_correlation: float | None = spearman_rank_correlation(
                current_scores, quality_truth
            )
        else:
            rank_correlation = None
            self._final_inputs = (current_scores, quality_truth)
        last_round = simulator.metrics.rounds[-1]
        self.observations.append(
            RoundObservation(
                round_index=round_index,
                honest_mean=honest_mean,
                attacker_mean=attacker_mean,
                separation=separation,
                rank_correlation=rank_correlation,
                malicious_rate=last_round.malicious_rate,
                online_peers=last_round.online_peers,
            )
        )

    def final_rank_correlation(self) -> float:
        """Rank correlation of the last recorded round (0.0 with no rounds).

        In ``correlation="final"`` mode this is where the (single) Spearman
        computation happens — identical input, identical value to what the
        per-round mode records for the last round.
        """
        if not self.observations:
            return 0.0
        final = self.observations[-1]
        if final.rank_correlation is not None:
            return final.rank_correlation
        if self._final_inputs is None:  # pragma: no cover - defensive
            return 0.0
        cached = self._final_correlation
        if cached is not None and cached[0] == final.round_index:
            return cached[1]
        value = spearman_rank_correlation(*self._final_inputs)
        self._final_correlation = (final.round_index, value)
        return value

    def separation_series(self) -> list[float]:
        return [observation.separation for observation in self.observations]

    # -- checkpoint protocol ------------------------------------------------

    def checkpoint_state(self) -> dict[str, object]:
        """Everything the trace accumulated (observations are frozen and
        picklable; the lazy-correlation inputs are plain dicts)."""
        return {
            "observations": list(self.observations),
            "correlation_mode": self._correlation_mode,
            "final_inputs": self._final_inputs,
            "final_correlation": self._final_correlation,
        }

    def restore_checkpoint_state(
        self, state: dict[str, object], simulator: InteractionSimulator
    ) -> None:
        observations = state.get("observations")
        mode = state.get("correlation_mode")
        if not isinstance(observations, list) or mode not in ("final", "all"):
            raise CheckpointError("malformed scenario-trace checkpoint state")
        self.observations = observations
        self._correlation_mode = mode
        self._final_inputs = cast(
            "tuple[dict[str, float], dict[str, float]] | None", state.get("final_inputs")
        )
        self._final_correlation = cast(
            "tuple[int, float] | None", state.get("final_correlation")
        )


@dataclass(frozen=True)
class RobustnessMetrics:
    """The headline attack-resistance numbers of one scenario run."""

    baseline_separation: float
    attack_separation: float
    post_separation: float
    final_separation: float
    final_rank_correlation: float
    time_to_detect: int
    time_to_recover: int
    attack_malicious_rate: float
    post_malicious_rate: float

    @property
    def detected(self) -> bool:
        return self.time_to_detect != NEVER

    @property
    def recovered(self) -> bool:
        return self.time_to_recover != NEVER


def evaluate_trace(
    observations: list[RoundObservation],
    window: tuple[int, int],
    *,
    detect_threshold: float = 0.1,
    recovery_fraction: float = 0.8,
    final_rank_correlation: float | None = None,
) -> RobustnessMetrics:
    """Condense a per-round trace into :class:`RobustnessMetrics`.

    ``window`` is the campaign's half-open ``[start, end)`` attack interval.
    Detection is the first round at or after the attack start where
    separation reaches ``detect_threshold``; recovery is the first round at
    or after the attack end where separation is back to
    ``recovery_fraction`` of the pre-attack baseline (never below the
    detection threshold, so a mechanism with no pre-attack signal cannot
    "recover" trivially).  Both are :data:`NEVER` (-1) when the run ends
    first.

    ``final_rank_correlation`` supplies the last round's correlation when
    the trace ran in lazy ``correlation="final"`` mode (pass
    ``trace.final_rank_correlation()``); omitted, it is read off the final
    observation (0.0 when that was not computed).
    """
    if not observations:
        return RobustnessMetrics(
            baseline_separation=0.0,
            attack_separation=0.0,
            post_separation=0.0,
            final_separation=0.0,
            final_rank_correlation=0.0,
            time_to_detect=NEVER,
            time_to_recover=NEVER,
            attack_malicious_rate=0.0,
            post_malicious_rate=0.0,
        )
    start, end = window
    pre = [o for o in observations if o.round_index < start]
    attack = [o for o in observations if start <= o.round_index < end]
    post = [o for o in observations if o.round_index >= end]
    baseline = mean([o.separation for o in pre]) if pre else 0.0

    time_to_detect = NEVER
    for observation in observations:
        if observation.round_index >= start and observation.separation >= detect_threshold:
            time_to_detect = observation.round_index - start
            break

    recovery_target = max(detect_threshold, recovery_fraction * baseline)
    time_to_recover = NEVER
    for observation in post:
        if observation.separation >= recovery_target:
            time_to_recover = observation.round_index - end
            break

    final = observations[-1]
    if final_rank_correlation is None:
        final_rank_correlation = (
            final.rank_correlation if final.rank_correlation is not None else 0.0
        )
    return RobustnessMetrics(
        baseline_separation=baseline,
        attack_separation=mean([o.separation for o in attack]) if attack else 0.0,
        post_separation=mean([o.separation for o in post]) if post else 0.0,
        final_separation=final.separation,
        final_rank_correlation=final_rank_correlation,
        time_to_detect=time_to_detect,
        time_to_recover=time_to_recover,
        attack_malicious_rate=mean([o.malicious_rate for o in attack]) if attack else 0.0,
        post_malicious_rate=mean([o.malicious_rate for o in post]) if post else 0.0,
    )

"""The trust overlay network used by PowerTrust.

PowerTrust "constructs a trust overlay network to model the trust
relationships among peers" (paper, Section 2.2): a directed graph whose edge
``i → j`` means peer *i* reported feedback about peer *j*, weighted by the
aggregated rating.  Power nodes are the most reputable, most-connected nodes
of this overlay; their assessments get extra weight during global
aggregation.
"""

from __future__ import annotations


import networkx as nx

from repro.reputation.gathering import FeedbackStore, LocalTrustBuilder


class TrustOverlayNetwork:
    """Directed rated-whom overlay built from a feedback store."""

    def __init__(
        self, store: FeedbackStore, *, builder: LocalTrustBuilder | None = None
    ) -> None:
        self._store = store
        #: Pairwise rated-whom ledger shared with the owning mechanism (so
        #: the overlay rides the same incrementally maintained totals) or a
        #: private one when the overlay stands alone.
        self._builder = builder or LocalTrustBuilder(store)
        #: Centrality memo keyed by the store's monotone version (which
        #: bumps on clear() too, unlike the report count), so the repeated
        #: power-node selection rounds of one refresh rebuild the overlay
        #: once instead of once per round.
        self._centrality_cache: tuple[int, dict[str, float]] | None = None

    def build(self) -> nx.DiGraph:
        """Construct the overlay: edge weight = mean rating from rater to subject."""
        overlay = nx.DiGraph()
        for subject in self._store.subjects():
            overlay.add_node(subject)
        for rater in self._store.raters():
            overlay.add_node(rater)
            per_subject: dict[str, list[float]] = {}
            for feedback in self._store.by(rater):
                per_subject.setdefault(feedback.subject, []).append(feedback.rating)
            for subject, ratings in per_subject.items():
                overlay.add_edge(
                    rater,
                    subject,
                    weight=sum(ratings) / len(ratings),
                    reports=len(ratings),
                )
        return overlay

    def in_degree_centrality(self) -> dict[str, float]:
        """Normalized in-degree of every node: how widely a peer was rated.

        Computed straight from the pairwise rated-whom ledger — the overlay
        node set is every subject and rater, its edge set every distinct
        ``(rater, subject)`` pair, so the in-degree of a peer is the number
        of distinct raters that assessed it.  The arithmetic mirrors
        ``networkx.in_degree_centrality`` term for term (multiply by the
        reciprocal of ``n - 1``) so the values equal the historical
        nx-backed computation bitwise, without building a DiGraph per
        refresh.
        """
        version = self._store.version
        if self._centrality_cache is not None and self._centrality_cache[0] == version:
            return self._centrality_cache[1]
        nodes = set(self._store.subjects())
        nodes.update(self._store.raters())
        if not nodes:
            centrality: dict[str, float] = {}
        elif len(nodes) == 1:
            # nx.in_degree_centrality returns 1 for every node of a
            # singleton graph (the n-1 normalization is undefined).
            centrality = {node: 1.0 for node in sorted(nodes)}
        else:
            # sorted() fixes the result dict's insertion order: consumers
            # re-sort with a total tiebreak today, but a deterministic key
            # order keeps any future iteration over the dict safe too.
            scale = 1.0 / (len(nodes) - 1.0)
            centrality = {node: 0.0 for node in sorted(nodes)}
            for row in self._builder.pair_totals().values():
                for subject in row:
                    centrality[subject] += 1.0
            centrality = {node: degree * scale for node, degree in centrality.items()}
        self._centrality_cache = (version, centrality)
        return centrality

    def select_power_nodes(self, scores: dict[str, float], m: int) -> list[str]:
        """Select the ``m`` power nodes: highest score, in-degree as tie-break.

        PowerTrust observes that feedback in real systems follows a power law
        and leverages the few most-assessed, most-reputable nodes; we select
        them by the current global score with overlay in-degree as the
        secondary criterion.
        """
        if m <= 0:
            return []
        centrality = self.in_degree_centrality()
        candidates = sorted(
            scores,
            key=lambda peer: (scores[peer], centrality.get(peer, 0.0), peer),
            reverse=True,
        )
        return candidates[:m]

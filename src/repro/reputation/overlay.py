"""The trust overlay network used by PowerTrust.

PowerTrust "constructs a trust overlay network to model the trust
relationships among peers" (paper, Section 2.2): a directed graph whose edge
``i → j`` means peer *i* reported feedback about peer *j*, weighted by the
aggregated rating.  Power nodes are the most reputable, most-connected nodes
of this overlay; their assessments get extra weight during global
aggregation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.reputation.gathering import FeedbackStore


class TrustOverlayNetwork:
    """Directed rated-whom overlay built from a feedback store."""

    def __init__(self, store: FeedbackStore) -> None:
        self._store = store
        #: Centrality memo keyed by the store's monotone version (which
        #: bumps on clear() too, unlike the report count), so the repeated
        #: power-node selection rounds of one refresh rebuild the overlay
        #: once instead of once per round.
        self._centrality_cache: Optional[Tuple[int, Dict[str, float]]] = None

    def build(self) -> nx.DiGraph:
        """Construct the overlay: edge weight = mean rating from rater to subject."""
        overlay = nx.DiGraph()
        for subject in self._store.subjects():
            overlay.add_node(subject)
        for rater in self._store.raters():
            overlay.add_node(rater)
            per_subject: Dict[str, List[float]] = {}
            for feedback in self._store.by(rater):
                per_subject.setdefault(feedback.subject, []).append(feedback.rating)
            for subject, ratings in per_subject.items():
                overlay.add_edge(
                    rater,
                    subject,
                    weight=sum(ratings) / len(ratings),
                    reports=len(ratings),
                )
        return overlay

    def in_degree_centrality(self) -> Dict[str, float]:
        """Normalized in-degree of every node: how widely a peer was rated."""
        version = self._store.version
        if self._centrality_cache is not None and self._centrality_cache[0] == version:
            return self._centrality_cache[1]
        overlay = self.build()
        if overlay.number_of_nodes() == 0:
            centrality: Dict[str, float] = {}
        else:
            centrality = {
                node: float(value)
                for node, value in nx.in_degree_centrality(overlay).items()
            }
        self._centrality_cache = (version, centrality)
        return centrality

    def select_power_nodes(self, scores: Dict[str, float], m: int) -> List[str]:
        """Select the ``m`` power nodes: highest score, in-degree as tie-break.

        PowerTrust observes that feedback in real systems follows a power law
        and leverages the few most-assessed, most-reputable nodes; we select
        them by the current global score with overlay in-degree as the
        secondary criterion.
        """
        if m <= 0:
            return []
        centrality = self.in_degree_centrality()
        candidates = sorted(
            scores,
            key=lambda peer: (scores[peer], centrality.get(peer, 0.0), peer),
            reverse=True,
        )
        return candidates[:m]

"""Privacy-preserving feedback: anonymization and randomized response.

The paper points to "reputation systems for anonymous networks" and
"signatures of reputation" as ways to reconcile reputation with privacy.  The
:class:`AnonymousFeedbackReputation` wrapper captures the essence of that
trade-off without the cryptography: before a report reaches the wrapped
mechanism,

* the rater identity is stripped (unlinkability), and
* the rating is flipped with probability ``(1 - epsilon) / 2`` (randomized
  response), giving each rater plausible deniability about what they said.

Both transformations reduce the exposure of the rater — and both degrade the
accuracy of the wrapped mechanism, which is exactly the privacy/reputation
antagonism of Figure 2.  The ablation experiment E-A2 quantifies it.
"""

from __future__ import annotations

import random

from repro._util import require_unit_interval
from repro.reputation.base import ReputationSystem
from repro.simulation.transaction import Feedback


class AnonymousFeedbackReputation(ReputationSystem):
    """Wrap a reputation mechanism behind an anonymizing feedback channel."""

    name = "anonymous"

    def __init__(
        self,
        inner: ReputationSystem,
        *,
        epsilon: float = 1.0,
        strip_identity: bool = True,
        seed: int = 0,
    ) -> None:
        # Scoring is delegated to the wrapped mechanism, so the wrapper
        # inherits its compute backend instead of taking one itself.
        super().__init__(default_score=inner.default_score, backend=inner.backend)
        self.inner = inner
        #: Truth-retention parameter of randomized response: with probability
        #: ``epsilon`` the true rating is forwarded, otherwise a fair coin is
        #: reported.  ``epsilon=1`` disables perturbation.
        self.epsilon = require_unit_interval(epsilon, "epsilon")
        self.strip_identity = strip_identity
        self._rng = random.Random(seed)
        self.perturbed_reports = 0
        self.anonymized_reports = 0

    @property
    def information_requirement(self) -> float:  # type: ignore[override]
        """Strictly lower than the wrapped mechanism's requirement."""
        reduction = 0.5 if self.strip_identity else 0.2
        return max(0.05, self.inner.information_requirement * (1.0 - reduction) * self.epsilon)

    def _transform_feedback(self, feedback: Feedback) -> Feedback:
        rating = feedback.rating
        truthful = feedback.truthful
        if self._rng.random() > self.epsilon:
            # Randomized response: report a fair coin instead of the truth.
            rating = 1.0 if self._rng.random() < 0.5 else 0.0
            truthful = truthful and rating == feedback.rating
            self.perturbed_reports += 1
        rater: str | None = feedback.rater
        if self.strip_identity and rater is not None:
            rater = None
            self.anonymized_reports += 1
        return Feedback(
            transaction_id=feedback.transaction_id,
            time=feedback.time,
            subject=feedback.subject,
            rating=rating,
            rater=rater,
            truthful=truthful,
        )

    def record_feedback(self, feedback: Feedback) -> None:
        transformed = self._transform_feedback(feedback)
        self.store.add(transformed)
        self._dirty = True
        self.inner.record_feedback(transformed)

    def compute_scores(self) -> dict[str, float]:
        return self.inner.compute_scores()

    def refresh(self) -> dict[str, float]:
        self.inner.refresh()
        return super().refresh()

    def reset(self) -> None:
        super().reset()
        self.inner.reset()
        self.perturbed_reports = 0
        self.anonymized_reports = 0

"""Simple-average reputation: the weakest meaningful baseline.

The score of a peer is the arithmetic mean of all ratings reported about it,
regardless of who reported them.  It is cheap, needs no rater identities
(low information requirement) but is trivially manipulable by dishonest
raters — exactly the contrast the paper's reputation-power axis captures.
"""

from __future__ import annotations


from repro._util import mean
from repro.core import accel
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.reputation.base import ReputationSystem


class SimpleAverageReputation(ReputationSystem):
    """Mean rating per subject.

    Refresh is incremental by default: a per-subject running ``(sum, count)``
    folds in only the feedback appended since the previous refresh.  The
    running sum left-folds ratings in exactly the order a cold rescan of the
    subject's bucket would (per-subject append order), so the incremental
    score is *bitwise* identical to the cold one on either backend — no
    quantization needed to absorb it.
    """

    name = "average"
    information_requirement = 0.2

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        #: subject -> [rating sum, report count]
        self._agg: dict[str, list[float]] = {}
        self._agg_watermark: tuple[int, int] = (-1, 0)

    def _compute_incremental(self) -> dict[str, float] | None:
        """Fold newly appended feedback into the running per-subject sums.

        Returns ``None`` when incremental refresh is disabled (the caller
        falls back to the cold rescan).
        """
        if not accel.flags().incremental_refresh:
            return None
        columns = self.store.columns()
        epoch = self.store.epoch
        if self._agg_watermark[0] != epoch:
            self._agg = {}
            self._agg_watermark = (epoch, 0)
        position = self._agg_watermark[1]
        if position < len(columns):
            agg = self._agg
            subjects = columns.subjects
            ratings = columns.ratings
            for index in range(position, len(subjects)):
                entry = agg.get(subjects[index])
                if entry is None:
                    agg[subjects[index]] = [ratings[index], 1]
                else:
                    entry[0] += ratings[index]
                    entry[1] += 1
            self._agg_watermark = (epoch, len(subjects))
        agg = self._agg
        return {
            subject: agg[subject][0] / agg[subject][1] for subject in self.store.subjects()
        }

    def compute_scores(self) -> dict[str, float]:
        incremental = self._compute_incremental()
        if incremental is not None:
            return incremental
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized()
        scores: dict[str, float] = {}
        for subject in self.store.subjects():
            ratings = [feedback.rating for feedback in self.store.about(subject)]
            scores[subject] = mean(ratings, default=self.default_score)
        return scores

    def _compute_vectorized(self) -> dict[str, float]:
        subjects = self.store.subjects()
        if not subjects:
            return {}
        index = PeerIndex(subjects)
        columns = self.store.columns()
        positions = backend_kernels.subject_positions_from_columns(columns, index)
        values = backend_kernels.mean_scores(
            positions,
            columns.ratings,
            len(index),
        )
        return index.vector_to_dict(values)

"""Simple-average reputation: the weakest meaningful baseline.

The score of a peer is the arithmetic mean of all ratings reported about it,
regardless of who reported them.  It is cheap, needs no rater identities
(low information requirement) but is trivially manipulable by dishonest
raters — exactly the contrast the paper's reputation-power axis captures.
"""

from __future__ import annotations

from typing import Dict

from repro._util import mean
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.reputation.base import ReputationSystem


class SimpleAverageReputation(ReputationSystem):
    """Mean rating per subject."""

    name = "average"
    information_requirement = 0.2

    def compute_scores(self) -> Dict[str, float]:
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized()
        scores: Dict[str, float] = {}
        for subject in self.store.subjects():
            ratings = [feedback.rating for feedback in self.store.about(subject)]
            scores[subject] = mean(ratings, default=self.default_score)
        return scores

    def _compute_vectorized(self) -> Dict[str, float]:
        subjects = self.store.subjects()
        if not subjects:
            return {}
        index = PeerIndex(subjects)
        columns = self.store.columns()
        positions = backend_kernels.subject_positions_from_columns(columns, index)
        values = backend_kernels.mean_scores(
            positions,
            columns.ratings,
            len(index),
        )
        return index.vector_to_dict(values)

"""The *response* block: acting on reputation scores.

Scores only help users if they change behaviour — which partner to pick,
whom to refuse.  Three standard policies are provided; the simulator's
provider selection and the query-allocation mediator both accept any of
them.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Sequence

from repro._util import require_unit_interval
from repro.errors import ConfigurationError


class ResponsePolicy(abc.ABC):
    """Pick one candidate given their reputation scores."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        candidates: Sequence[str],
        scores: dict[str, float],
        rng: random.Random | None = None,
    ) -> str:
        """Return the chosen candidate identifier."""

    @staticmethod
    def _check(candidates: Sequence[str]) -> None:
        if not candidates:
            raise ConfigurationError("cannot select from an empty candidate set")


class SelectBest(ResponsePolicy):
    """Deterministically choose the highest-scoring candidate."""

    name = "select-best"

    def select(
        self,
        candidates: Sequence[str],
        scores: dict[str, float],
        rng: random.Random | None = None,
    ) -> str:
        self._check(candidates)
        return max(candidates, key=lambda peer: (scores.get(peer, 0.0), peer))


class ProbabilisticSelection(ResponsePolicy):
    """Choose proportionally to score, keeping some probability for everyone.

    EigenTrust recommends probabilistic selection to avoid overloading the
    most reputable peers and to give newcomers a chance to build reputation;
    ``floor`` is the minimum weight any candidate keeps.
    """

    name = "probabilistic"

    def __init__(self, floor: float = 0.05) -> None:
        self.floor = require_unit_interval(floor, "floor")

    def select(
        self,
        candidates: Sequence[str],
        scores: dict[str, float],
        rng: random.Random | None = None,
    ) -> str:
        self._check(candidates)
        # Deterministic fallback: an unseeded Random would pull OS entropy
        # into the run.  Callers wanting varied draws pass their own rng
        # (the engine hands a named RandomStreams stream).
        rng = rng or random.Random(0)
        weights = [max(self.floor, scores.get(peer, 0.0)) for peer in candidates]
        total = sum(weights)
        # repro-lint: ignore[R5] exact sentinel: total is 0.0 only when floor
        # and every score are exactly zero (no arithmetic noise involved)
        if total == 0.0:
            return rng.choice(list(candidates))
        return rng.choices(list(candidates), weights=weights, k=1)[0]


class ThresholdBan(ResponsePolicy):
    """Exclude candidates below a reputation threshold, then pick the best.

    If every candidate falls below the threshold the least bad one is chosen;
    refusing to interact entirely is modelled at a higher level (the
    simulator simply skips the transaction in that case when configured to).
    """

    name = "threshold-ban"

    def __init__(self, threshold: float = 0.3) -> None:
        self.threshold = require_unit_interval(threshold, "threshold")

    def acceptable(self, candidates: Sequence[str], scores: dict[str, float]) -> list[str]:
        return [peer for peer in candidates if scores.get(peer, 0.0) >= self.threshold]

    def select(
        self,
        candidates: Sequence[str],
        scores: dict[str, float],
        rng: random.Random | None = None,
    ) -> str:
        self._check(candidates)
        acceptable = self.acceptable(candidates, scores)
        pool = acceptable if acceptable else list(candidates)
        return max(pool, key=lambda peer: (scores.get(peer, 0.0), peer))

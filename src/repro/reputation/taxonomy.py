"""The Marti & Garcia-Molina taxonomy of reputation systems.

Section 2.2 adopts the three-block decomposition of *Taxonomy of Trust:
Categorizing P2P Reputation Systems* (Computer Networks, 2006): information
gathering, scoring & ranking, response.  This module encodes the design
choices of each implemented mechanism along those blocks, so experiments and
documentation can reason about *why* a mechanism needs more or less
information (its privacy cost) and what it gives back (its power).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class GatheringDesign(enum.Enum):
    """How the mechanism gathers information about peers."""

    LOCAL_ONLY = "local-only"
    IDENTIFIED_GLOBAL = "identified-global"
    ANONYMOUS_GLOBAL = "anonymous-global"
    CERTIFIED_REPORTS = "certified-reports"


class ScoringDesign(enum.Enum):
    """How the mechanism turns gathered information into scores."""

    MEAN = "mean"
    BAYESIAN = "bayesian"
    EIGENVECTOR = "eigenvector"
    POWER_NODE_AGGREGATION = "power-node-aggregation"


class ResponseDesign(enum.Enum):
    """How the mechanism expects peers to act on scores."""

    PARTNER_SELECTION = "partner-selection"
    BANNING = "banning"
    INCENTIVES = "incentives"


@dataclass(frozen=True)
class SystemTaxonomy:
    """Taxonomy record of one reputation mechanism."""

    system: str
    gathering: GatheringDesign
    scoring: ScoringDesign
    response: ResponseDesign
    identity_required: bool
    collusion_resistant: bool
    decentralized: bool
    notes: str = ""


#: Taxonomy of every mechanism shipped with the library.
SYSTEM_TAXONOMY: dict[str, SystemTaxonomy] = {
    "average": SystemTaxonomy(
        system="average",
        gathering=GatheringDesign.ANONYMOUS_GLOBAL,
        scoring=ScoringDesign.MEAN,
        response=ResponseDesign.PARTNER_SELECTION,
        identity_required=False,
        collusion_resistant=False,
        decentralized=True,
        notes="Baseline: unweighted mean of all reports.",
    ),
    "beta": SystemTaxonomy(
        system="beta",
        gathering=GatheringDesign.ANONYMOUS_GLOBAL,
        scoring=ScoringDesign.BAYESIAN,
        response=ResponseDesign.PARTNER_SELECTION,
        identity_required=False,
        collusion_resistant=False,
        decentralized=True,
        notes="Beta posterior with exponential forgetting; tracks traitors.",
    ),
    "eigentrust": SystemTaxonomy(
        system="eigentrust",
        gathering=GatheringDesign.IDENTIFIED_GLOBAL,
        scoring=ScoringDesign.EIGENVECTOR,
        response=ResponseDesign.PARTNER_SELECTION,
        identity_required=True,
        collusion_resistant=True,
        decentralized=True,
        notes="PageRank-like aggregation weighted by rater reputation; "
        "pre-trusted peers dampen collusion.",
    ),
    "powertrust": SystemTaxonomy(
        system="powertrust",
        gathering=GatheringDesign.IDENTIFIED_GLOBAL,
        scoring=ScoringDesign.POWER_NODE_AGGREGATION,
        response=ResponseDesign.PARTNER_SELECTION,
        identity_required=True,
        collusion_resistant=True,
        decentralized=True,
        notes="Trust-overlay aggregation with dynamically selected power nodes.",
    ),
    "trustme": SystemTaxonomy(
        system="trustme",
        gathering=GatheringDesign.CERTIFIED_REPORTS,
        scoring=ScoringDesign.MEAN,
        response=ResponseDesign.BANNING,
        identity_required=True,
        collusion_resistant=False,
        decentralized=True,
        notes="Certificate-gated reports stored at anonymous trust-holding agents.",
    ),
    "anonymous": SystemTaxonomy(
        system="anonymous",
        gathering=GatheringDesign.ANONYMOUS_GLOBAL,
        scoring=ScoringDesign.MEAN,
        response=ResponseDesign.PARTNER_SELECTION,
        identity_required=False,
        collusion_resistant=False,
        decentralized=True,
        notes="Anonymizing wrapper (identity stripping + randomized response) "
        "around any inner mechanism.",
    ),
}


def taxonomy_for(system_name: str) -> SystemTaxonomy:
    """Look up the taxonomy record of a mechanism by its registry name."""
    try:
        return SYSTEM_TAXONOMY[system_name]
    except KeyError:
        raise ValueError(
            f"no taxonomy registered for {system_name!r}; known systems: "
            f"{sorted(SYSTEM_TAXONOMY)}"
        ) from None

"""Measuring "reputation power": how consistent scores are with reality.

The paper defines the reputation axis of Figure 2 as "the satisfaction of the
reputation mechanism in terms of power as reliability, efficiency and most of
all, consistency with the reality".  The simulator knows the ground truth
(each peer's honesty), so consistency is measurable:

* :func:`pairwise_ranking_accuracy` — probability that the mechanism orders a
  random honest/dishonest pair correctly (an AUC-like measure);
* :func:`classification_accuracy` — accuracy of the induced good/bad
  classification at a threshold;
* :func:`mean_absolute_error` — distance between scores and honesty;
* :func:`reputation_power` — the composite in ``[0, 1]`` used as the
  reputation facet input.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro._util import clamp, mean


def _aligned(scores: Mapping[str, float], ground_truth: Mapping[str, float]) -> Dict[str, float]:
    """Restrict scores to peers with known ground truth."""
    return {peer: scores[peer] for peer in scores if peer in ground_truth}


def pairwise_ranking_accuracy(
    scores: Mapping[str, float], ground_truth: Mapping[str, float]
) -> float:
    """Fraction of (honest, dishonest) pairs ranked in the right order.

    Ties in score count half, as in the usual AUC convention.  Returns 0.5
    (chance level) when either class is empty or no scores overlap the ground
    truth.
    """
    aligned = _aligned(scores, ground_truth)
    honest = [peer for peer in aligned if ground_truth[peer] >= 0.5]
    dishonest = [peer for peer in aligned if ground_truth[peer] < 0.5]
    if not honest or not dishonest:
        return 0.5
    correct = 0.0
    for good in honest:
        for bad in dishonest:
            if aligned[good] > aligned[bad]:
                correct += 1.0
            elif aligned[good] == aligned[bad]:
                correct += 0.5
    return correct / (len(honest) * len(dishonest))


def classification_accuracy(
    scores: Mapping[str, float],
    ground_truth: Mapping[str, float],
    *,
    threshold: float = 0.5,
) -> float:
    """Accuracy of classifying peers as honest when their score ≥ threshold."""
    aligned = _aligned(scores, ground_truth)
    if not aligned:
        return 0.0
    correct = sum(
        1
        for peer, score in aligned.items()
        if (score >= threshold) == (ground_truth[peer] >= 0.5)
    )
    return correct / len(aligned)


def mean_absolute_error(
    scores: Mapping[str, float], ground_truth: Mapping[str, float]
) -> float:
    """Mean absolute difference between score and ground-truth honesty."""
    aligned = _aligned(scores, ground_truth)
    if not aligned:
        return 1.0
    return mean(abs(score - ground_truth[peer]) for peer, score in aligned.items())


def reputation_power(
    scores: Mapping[str, float],
    ground_truth: Mapping[str, float],
    *,
    coverage_weight: float = 0.25,
) -> float:
    """Composite reputation-power score in ``[0, 1]``.

    Combines consistency with reality (rescaled ranking accuracy: 0.5 maps to
    0, 1.0 maps to 1) with coverage — the fraction of the population the
    mechanism has evidence about.  A mechanism that is perfectly consistent
    but only knows 10% of the peers is not powerful.
    """
    if not ground_truth:
        return 0.0
    ranking = pairwise_ranking_accuracy(scores, ground_truth)
    consistency = clamp((ranking - 0.5) * 2.0)
    coverage = len(_aligned(scores, ground_truth)) / len(ground_truth)
    weight = clamp(coverage_weight)
    return clamp((1.0 - weight) * consistency + weight * coverage)

"""Measuring "reputation power": how consistent scores are with reality.

The paper defines the reputation axis of Figure 2 as "the satisfaction of the
reputation mechanism in terms of power as reliability, efficiency and most of
all, consistency with the reality".  The simulator knows the ground truth
(each peer's honesty), so consistency is measurable:

* :func:`pairwise_ranking_accuracy` — probability that the mechanism orders a
  random honest/dishonest pair correctly (an AUC-like measure);
* :func:`classification_accuracy` — accuracy of the induced good/bad
  classification at a threshold;
* :func:`mean_absolute_error` — distance between scores and honesty;
* :func:`reputation_power` — the composite in ``[0, 1]`` used as the
  reputation facet input;
* :func:`spearman_rank_correlation` / :func:`score_separation` — the
  robustness-scenario measures: rank agreement with ground truth and the
  good-vs-bad score gap attack campaigns try to collapse.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro._util import clamp, mean


def _aligned(scores: Mapping[str, float], ground_truth: Mapping[str, float]) -> dict[str, float]:
    """Restrict scores to peers with known ground truth."""
    return {peer: scores[peer] for peer in scores if peer in ground_truth}


def pairwise_ranking_accuracy(
    scores: Mapping[str, float], ground_truth: Mapping[str, float]
) -> float:
    """Fraction of (honest, dishonest) pairs ranked in the right order.

    Ties in score count half, as in the usual AUC convention.  Returns 0.5
    (chance level) when either class is empty or no scores overlap the ground
    truth.
    """
    aligned = _aligned(scores, ground_truth)
    honest = [peer for peer in aligned if ground_truth[peer] >= 0.5]
    dishonest = [peer for peer in aligned if ground_truth[peer] < 0.5]
    if not honest or not dishonest:
        return 0.5
    correct = 0.0
    for good in honest:
        for bad in dishonest:
            if aligned[good] > aligned[bad]:
                correct += 1.0
            elif aligned[good] == aligned[bad]:
                correct += 0.5
    return correct / (len(honest) * len(dishonest))


def classification_accuracy(
    scores: Mapping[str, float],
    ground_truth: Mapping[str, float],
    *,
    threshold: float = 0.5,
) -> float:
    """Accuracy of classifying peers as honest when their score ≥ threshold."""
    aligned = _aligned(scores, ground_truth)
    if not aligned:
        return 0.0
    correct = sum(
        1
        for peer, score in aligned.items()
        if (score >= threshold) == (ground_truth[peer] >= 0.5)
    )
    return correct / len(aligned)


def mean_absolute_error(scores: Mapping[str, float], ground_truth: Mapping[str, float]) -> float:
    """Mean absolute difference between score and ground-truth honesty."""
    aligned = _aligned(scores, ground_truth)
    if not aligned:
        return 1.0
    return mean(abs(score - ground_truth[peer]) for peer, score in aligned.items())


def _average_ranks(values: dict[str, float]) -> dict[str, float]:
    """Fractional ranks (ties get the average of their rank span)."""
    ordered = sorted(values, key=lambda peer: (values[peer], peer))
    ranks: dict[str, float] = {}
    index = 0
    while index < len(ordered):
        tail = index
        while tail + 1 < len(ordered) and values[ordered[tail + 1]] == values[ordered[index]]:
            tail += 1
        average = (index + tail) / 2.0 + 1.0
        for position in range(index, tail + 1):
            ranks[ordered[position]] = average
        index = tail + 1
    return ranks


def spearman_rank_correlation(
    scores: Mapping[str, float], ground_truth: Mapping[str, float]
) -> float:
    """Spearman rank correlation between scores and ground truth, in ``[-1, 1]``.

    Ties receive fractional (average) ranks, the standard convention.
    Returns 0.0 when fewer than two peers overlap or either side is
    constant (zero variance makes the coefficient undefined; 0 — "no
    evidence of agreement" — is the useful reading for robustness metrics).
    Pure-Python on purpose: robustness records must be byte-identical across
    compute backends.
    """
    aligned = _aligned(scores, ground_truth)
    if len(aligned) < 2:
        return 0.0
    score_ranks = _average_ranks(aligned)
    truth_ranks = _average_ranks({peer: ground_truth[peer] for peer in aligned})
    n = len(aligned)
    mean_rank = (n + 1) / 2.0
    covariance = 0.0
    score_variance = 0.0
    truth_variance = 0.0
    for peer in aligned:
        ds = score_ranks[peer] - mean_rank
        dt = truth_ranks[peer] - mean_rank
        covariance += ds * dt
        score_variance += ds * ds
        truth_variance += dt * dt
    # repro-lint: ignore[R5] exact sentinel: rank variances are exactly
    # 0.0 only when every rank ties, where the correlation is undefined
    if score_variance == 0.0 or truth_variance == 0.0:
        return 0.0
    return covariance / (score_variance * truth_variance) ** 0.5


def score_separation(scores: Mapping[str, float], ground_truth: Mapping[str, float]) -> float:
    """Mean honest score minus mean dishonest score, in ``[-1, 1]``.

    The single number an attack campaign tries to drive to zero (or below):
    how far apart the mechanism holds the good and the bad population.
    Returns 0.0 when either class has no scored peer.
    """
    aligned = _aligned(scores, ground_truth)
    honest = [aligned[peer] for peer in aligned if ground_truth[peer] >= 0.5]
    dishonest = [aligned[peer] for peer in aligned if ground_truth[peer] < 0.5]
    if not honest or not dishonest:
        return 0.0
    return mean(honest) - mean(dishonest)


def reputation_power(
    scores: Mapping[str, float],
    ground_truth: Mapping[str, float],
    *,
    coverage_weight: float = 0.25,
) -> float:
    """Composite reputation-power score in ``[0, 1]``.

    Combines consistency with reality (rescaled ranking accuracy: 0.5 maps to
    0, 1.0 maps to 1) with coverage — the fraction of the population the
    mechanism has evidence about.  A mechanism that is perfectly consistent
    but only knows 10% of the peers is not powerful.
    """
    if not ground_truth:
        return 0.0
    ranking = pairwise_ranking_accuracy(scores, ground_truth)
    consistency = clamp((ranking - 0.5) * 2.0)
    coverage = len(_aligned(scores, ground_truth)) / len(ground_truth)
    weight = clamp(coverage_weight)
    return clamp((1.0 - weight) * consistency + weight * coverage)

"""EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003).

Each peer *i* derives a normalized local trust vector ``c_i`` from its own
transaction history; the global trust vector ``t`` is the stationary
distribution of the trust Markov chain, damped towards a pre-trusted peer
distribution ``p``:

    t ← (1 − a) · Cᵀ t + a · p

The damping weight ``a`` and the pre-trusted set are the defence against
collusion rings: malicious cliques can inflate each other's local trust, but
the restart mass keeps probability flowing through the pre-trusted peers.

The implementation works directly on the shared
:class:`~repro.reputation.gathering.FeedbackStore` (so it plugs into the same
simulator as every other mechanism) and performs plain power iteration with a
convergence threshold, as in the original centralized formulation.  Scores
are min-max rescaled to ``[0, 1]`` so response policies and the trust facets
can treat every mechanism uniformly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro._util import require_unit_interval
from repro.core import accel
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.errors import ConfigurationError
from repro.reputation.base import ReputationSystem


class EigenTrust(ReputationSystem):
    """Global reputation via power iteration over normalized local trust."""

    name = "eigentrust"
    information_requirement = 0.9

    def __init__(
        self,
        *,
        pretrusted: Sequence[str] | None = None,
        restart_weight: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        default_score: float = 0.5,
        max_evidence_per_subject: int | None = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
            backend=backend,
        )
        self.pretrusted = list(pretrusted or [])
        self.restart_weight = require_unit_interval(restart_weight, "restart_weight")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        self.max_iterations = int(max_iterations)
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.tolerance = float(tolerance)
        self.iterations_used = 0

    # -- helpers -----------------------------------------------------------

    def _pretrusted_distribution(self, peers: Sequence[str]) -> dict[str, float]:
        """Distribution ``p``: uniform over pre-trusted peers present, else uniform."""
        present = [peer for peer in self.pretrusted if peer in peers]
        if present:
            weight = 1.0 / len(present)
            return {peer: (weight if peer in present else 0.0) for peer in peers}
        uniform = 1.0 / len(peers)
        return {peer: uniform for peer in peers}

    def set_pretrusted(self, peers: Iterable[str]) -> None:
        """Replace the pre-trusted set (used when peers are known up front)."""
        self.pretrusted = list(peers)
        self._dirty = True

    # -- scoring -----------------------------------------------------------

    def compute_scores(self) -> dict[str, float]:
        peers = list(self.store.sorted_participants())
        if not peers:
            return {}
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized(peers)
        return self._compute_python(peers)

    def _compute_python(self, peers: list[str]) -> dict[str, float]:
        local = self.local_trust.normalized_local_trust(peers)
        p = self._pretrusted_distribution(peers)
        dangling = [peer for peer in peers if not local.get(peer)]

        trust = dict(p)
        self.iterations_used = 0
        for _ in range(self.max_iterations):
            self.iterations_used += 1
            updated = {peer: 0.0 for peer in peers}
            # Peers with no outgoing trust redistribute their mass over the
            # pre-trusted distribution, as in the original algorithm's
            # handling of inexperienced peers; the mass is accumulated once
            # and spread in a single pass rather than once per dangling peer.
            dangling_mass = sum(trust[peer] for peer in dangling)
            for rater in peers:
                row = local.get(rater)
                if not row:
                    continue
                mass = trust[rater]
                for subject, weight in row.items():
                    updated[subject] += mass * weight
            if dangling_mass:
                for peer in peers:
                    updated[peer] += dangling_mass * p[peer]
            blended = {
                peer: (1.0 - self.restart_weight) * updated[peer]
                + self.restart_weight * p[peer]
                for peer in peers
            }
            delta = sum(abs(blended[peer] - trust[peer]) for peer in peers)
            trust = blended
            if delta < self.tolerance:
                break

        return self._rescale(trust)

    def _compute_vectorized(self, peers: list[str]) -> dict[str, float]:
        index = PeerIndex(peers)
        matrix = self._local_trust_matrix(index)
        restart = index.dict_to_vector(self._pretrusted_distribution(peers))
        trust, self.iterations_used = backend_kernels.power_iteration(
            matrix,
            restart,
            restart_weight=self.restart_weight,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        return index.vector_to_dict(backend_kernels.minmax_rescale(trust))

    def _local_trust_matrix(self, index: PeerIndex) -> backend_kernels.TrustMatrix:
        """The row-normalized local trust ``C`` for the vectorized path.

        With incremental refresh on, small populations clip/normalize the
        builder's incrementally maintained dense raw matrix (O(Δ + n²) per
        refresh instead of O(total reports)); large populations keep the
        cold vectorized column build — at CSR sizes the numpy gather over
        the report log is cheaper than walking the Python pair ledger, so
        "incremental" would be a pessimization there.  All paths produce
        bitwise-identical matrices — the pairwise totals are integers.
        """
        if (
            accel.flags().incremental_refresh
            and len(index) < backend_kernels.DENSE_TRUST_THRESHOLD
        ):
            raw = self.local_trust.dense_raw_totals(index.position_map, len(index))
            return backend_kernels.normalize_dense_raw(raw)
        return backend_kernels.local_trust_matrix_from_columns(self.store.columns(), index)

    @staticmethod
    def _rescale(trust: dict[str, float]) -> dict[str, float]:
        """Min-max rescale the stationary distribution into ``[0, 1]`` scores."""
        return backend_kernels.minmax_rescale_dict(trust)

"""Reputation mechanisms.

Section 2.2 of the paper surveys decentralized reputation systems and adopts
the three-block decomposition of Marti & Garcia-Molina: *information
gathering*, *scoring and ranking*, and *response*.  This subpackage
implements that architecture and the concrete mechanisms the paper cites:

* :class:`~repro.reputation.eigentrust.EigenTrust` — the PageRank-like global
  reputation of Kamvar et al.;
* :class:`~repro.reputation.powertrust.PowerTrust` — Zhou & Hwang's
  power-node based aggregation over a trust overlay;
* :class:`~repro.reputation.trustme.TrustMeReputation` — a TrustMe-like
  protocol where anonymous trust-holding agents store certified reports;
* :class:`~repro.reputation.beta.BetaReputation` and
  :class:`~repro.reputation.average.SimpleAverageReputation` — baselines;
* :class:`~repro.reputation.anonymous.AnonymousFeedbackReputation` — a
  privacy-preserving wrapper implementing blinded, randomized-response
  feedback in the spirit of reputation systems for anonymous networks.

:mod:`repro.reputation.accuracy` provides the evaluation measures used to
quantify "reputation power" (consistency with reality), and
:mod:`repro.reputation.response` the response policies peers use to act on
scores.
"""

from repro.reputation.accuracy import (
    classification_accuracy,
    mean_absolute_error,
    pairwise_ranking_accuracy,
    reputation_power,
)
from repro.reputation.anonymous import AnonymousFeedbackReputation
from repro.reputation.average import SimpleAverageReputation
from repro.reputation.base import ReputationSystem, ScoreView
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.gathering import FeedbackStore, LocalTrustBuilder
from repro.reputation.overlay import TrustOverlayNetwork
from repro.reputation.powertrust import PowerTrust
from repro.reputation.response import (
    ProbabilisticSelection,
    ResponsePolicy,
    SelectBest,
    ThresholdBan,
)
from repro.reputation.taxonomy import (
    SYSTEM_TAXONOMY,
    GatheringDesign,
    ResponseDesign,
    ScoringDesign,
    SystemTaxonomy,
    taxonomy_for,
)
from repro.reputation.trustme import TrustMeReputation

#: Factory registry mapping mechanism names to constructors, used by the
#: experiment harness and the CLI to select a mechanism by name.
REPUTATION_FACTORIES = {
    "average": SimpleAverageReputation,
    "beta": BetaReputation,
    "eigentrust": EigenTrust,
    "powertrust": PowerTrust,
    "trustme": TrustMeReputation,
}


def make_reputation_system(name: str, **kwargs: object) -> ReputationSystem:
    """Instantiate a reputation mechanism by registry name."""
    try:
        factory = REPUTATION_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown reputation system {name!r}; expected one of "
            f"{sorted(REPUTATION_FACTORIES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "AnonymousFeedbackReputation",
    "BetaReputation",
    "EigenTrust",
    "FeedbackStore",
    "GatheringDesign",
    "LocalTrustBuilder",
    "PowerTrust",
    "ProbabilisticSelection",
    "REPUTATION_FACTORIES",
    "ReputationSystem",
    "ResponseDesign",
    "ResponsePolicy",
    "SYSTEM_TAXONOMY",
    "ScoreView",
    "ScoringDesign",
    "SelectBest",
    "SimpleAverageReputation",
    "SystemTaxonomy",
    "ThresholdBan",
    "TrustMeReputation",
    "TrustOverlayNetwork",
    "classification_accuracy",
    "make_reputation_system",
    "mean_absolute_error",
    "pairwise_ranking_accuracy",
    "reputation_power",
    "taxonomy_for",
]

"""PowerTrust (Zhou & Hwang, TPDS 2007), adapted to the shared substrate.

PowerTrust aggregates *local* trust scores through a trust overlay network
and exploits the power-law distribution of feedback: a small set of *power
nodes* (the most reputable, most-assessed peers) is selected dynamically and
given extra weight in the global aggregation, which speeds up convergence and
hardens the system against collusion by low-reputation cliques.

The reproduction follows the published structure:

1. build the trust overlay from the feedback store;
2. compute normalized local trust (as EigenTrust does);
3. run the random-walk aggregation ``t ← (1 − α)·Cᵀ t + α·w`` where ``w`` is
   the *look-ahead* restart distribution concentrated on the current power
   nodes;
4. re-select the ``m`` power nodes from the updated scores and iterate until
   the power-node set stabilizes (or the iteration budget is exhausted).
"""

from __future__ import annotations


from repro._util import require_unit_interval
from repro.core import accel
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.errors import ConfigurationError
from repro.reputation.base import SCORE_DECIMALS, ReputationSystem
from repro.reputation.overlay import TrustOverlayNetwork


def _quantized(trust: dict[str, float]) -> dict[str, float]:
    """Power-node selection input, snapped to the shared score grid.

    Selection sorts by raw trust values; quantizing first keeps the chosen
    power-node set — and hence the whole aggregation — identical across the
    pure-Python and vectorized backends.
    """
    return {peer: round(value, SCORE_DECIMALS) for peer, value in trust.items()}


class PowerTrust(ReputationSystem):
    """Power-node weighted global reputation aggregation."""

    name = "powertrust"
    information_requirement = 0.85

    def __init__(
        self,
        *,
        n_power_nodes: int = 3,
        restart_weight: float = 0.15,
        max_iterations: int = 50,
        power_node_rounds: int = 4,
        tolerance: float = 1e-8,
        default_score: float = 0.5,
        max_evidence_per_subject: int | None = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
            backend=backend,
        )
        if n_power_nodes < 1:
            raise ConfigurationError("n_power_nodes must be at least 1")
        if max_iterations < 1 or power_node_rounds < 1:
            raise ConfigurationError("iteration budgets must be at least 1")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.n_power_nodes = int(n_power_nodes)
        self.restart_weight = require_unit_interval(restart_weight, "restart_weight")
        self.max_iterations = int(max_iterations)
        self.power_node_rounds = int(power_node_rounds)
        self.tolerance = float(tolerance)
        # The overlay shares this mechanism's local-trust builder so its
        # in-degree centrality reads the same incrementally maintained pair
        # ledger instead of rescanning the store per refresh.
        self.overlay = TrustOverlayNetwork(self.store, builder=self.local_trust)
        self.power_nodes: list[str] = []

    # -- aggregation helpers -------------------------------------------------

    def _restart_distribution(self, peers: list[str], power_nodes: list[str]) -> dict[str, float]:
        """Look-ahead restart mass, concentrated on the current power nodes."""
        present = [peer for peer in power_nodes if peer in peers]
        if not present:
            uniform = 1.0 / len(peers)
            return {peer: uniform for peer in peers}
        weight = 1.0 / len(present)
        return {peer: (weight if peer in present else 0.0) for peer in peers}

    def _aggregate(
        self,
        peers: list[str],
        local: dict[str, dict[str, float]],
        restart: dict[str, float],
    ) -> dict[str, float]:
        trust = dict(restart)
        dangling = [peer for peer in peers if not local.get(peer)]
        for _ in range(self.max_iterations):
            updated = {peer: 0.0 for peer in peers}
            # As in EigenTrust, dangling mass is tallied once per iteration
            # and redistributed over the restart distribution in one pass.
            dangling_mass = sum(trust[peer] for peer in dangling)
            for rater in peers:
                row = local.get(rater)
                if not row:
                    continue
                mass = trust[rater]
                for subject, weight in row.items():
                    updated[subject] += mass * weight
            if dangling_mass:
                for peer in peers:
                    updated[peer] += dangling_mass * restart[peer]
            blended = {
                peer: (1.0 - self.restart_weight) * updated[peer]
                + self.restart_weight * restart[peer]
                for peer in peers
            }
            delta = sum(abs(blended[peer] - trust[peer]) for peer in peers)
            trust = blended
            if delta < self.tolerance:
                break
        return trust

    # -- scoring ---------------------------------------------------------------

    def compute_scores(self) -> dict[str, float]:
        peers = list(self.store.sorted_participants())
        if not peers:
            return {}
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized(peers)
        return self._compute_python(peers)

    def _compute_python(self, peers: list[str]) -> dict[str, float]:
        local = self.local_trust.normalized_local_trust(peers)

        # Bootstrap with a uniform restart, then alternate aggregation and
        # power-node re-selection until the power-node set stabilizes.
        power_nodes: list[str] = list(self.power_nodes)
        trust: dict[str, float] = {}
        for _ in range(self.power_node_rounds):
            restart = self._restart_distribution(peers, power_nodes)
            trust = self._aggregate(peers, local, restart)
            new_power_nodes = self.overlay.select_power_nodes(_quantized(trust), self.n_power_nodes)
            if new_power_nodes == power_nodes:
                break
            power_nodes = new_power_nodes
        self.power_nodes = power_nodes

        return self._rescale(trust)

    def _local_trust_matrix(self, index: PeerIndex) -> backend_kernels.TrustMatrix:
        """Row-normalized ``C`` from the incremental dense raw matrix /
        pair ledger (or a cold store rescan when incremental refresh is
        off) — bitwise identical either way, see
        :meth:`EigenTrust._local_trust_matrix`."""
        if (
            accel.flags().incremental_refresh
            and len(index) < backend_kernels.DENSE_TRUST_THRESHOLD
        ):
            raw = self.local_trust.dense_raw_totals(index.position_map, len(index))
            return backend_kernels.normalize_dense_raw(raw)
        return backend_kernels.local_trust_matrix_from_columns(self.store.columns(), index)

    def _compute_vectorized(self, peers: list[str]) -> dict[str, float]:
        index = PeerIndex(peers)
        matrix = self._local_trust_matrix(index)

        power_nodes: list[str] = list(self.power_nodes)
        trust_map: dict[str, float] = {}
        trust = None
        for _ in range(self.power_node_rounds):
            restart = index.dict_to_vector(self._restart_distribution(peers, power_nodes))
            trust, _ = backend_kernels.power_iteration(
                matrix,
                restart,
                restart_weight=self.restart_weight,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
            )
            trust_map = index.vector_to_dict(trust)
            new_power_nodes = self.overlay.select_power_nodes(
                _quantized(trust_map), self.n_power_nodes
            )
            if new_power_nodes == power_nodes:
                break
            power_nodes = new_power_nodes
        self.power_nodes = power_nodes

        return index.vector_to_dict(backend_kernels.minmax_rescale(trust))

    @staticmethod
    def _rescale(trust: dict[str, float]) -> dict[str, float]:
        return backend_kernels.minmax_rescale_dict(trust)

    def reset(self) -> None:
        """Drop evidence, cached scores *and* the sticky power-node set.

        The power nodes are derived from evidence, so letting them survive
        a reset would warm-start the next aggregation from state the store
        no longer supports.
        """
        super().reset()
        self.power_nodes = []

"""A TrustMe-like reputation protocol (Singh & Liu, P2P 2003).

TrustMe's contribution is *anonymous management of trust relationships*:
reports about a peer are not stored at the peer itself but at randomly
assigned, anonymous **trust-holding agents** (THAs); every report is bound to
a transaction certificate so that fabricated reports without a matching
certificate are rejected.

The reproduction models the pieces that matter for the paper's trade-off
analysis:

* transaction certificates are issued before feedback is accepted
  (``issue_certificate`` / internal verification), so unsolicited reports are
  dropped and :attr:`rejected_reports` counts them;
* every subject's reports are replicated over ``replication`` THAs chosen
  deterministically from the peer population, and a query returns the
  majority view of the replicas (tolerating missing replicas);
* the score itself is the certified-report mean — TrustMe does not prescribe
  a sophisticated aggregation, its value lies in tamper-resistant, anonymous
  storage, which is why its information requirement is lower than
  EigenTrust's even though it still identifies raters inside certificates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro._util import mean
from repro.errors import ConfigurationError
from repro.reputation.base import ReputationSystem
from repro.simulation.transaction import Feedback


@dataclass(frozen=True)
class TransactionCertificate:
    """A pairwise certificate authorizing one feedback report."""

    transaction_id: int
    consumer: str
    provider: str
    token: str

    @staticmethod
    def issue(
        transaction_id: int, consumer: str, provider: str, secret: str
    ) -> TransactionCertificate:
        digest = hashlib.sha256(
            f"{secret}|{transaction_id}|{consumer}|{provider}".encode("utf8")
        ).hexdigest()
        return TransactionCertificate(
            transaction_id=transaction_id,
            consumer=consumer,
            provider=provider,
            token=digest,
        )

    def verify(self, secret: str) -> bool:
        expected = hashlib.sha256(
            f"{secret}|{self.transaction_id}|{self.consumer}|{self.provider}".encode("utf8")
        ).hexdigest()
        return expected == self.token


class TrustMeReputation(ReputationSystem):
    """Certificate-gated, THA-replicated reputation storage."""

    name = "trustme"
    information_requirement = 0.6

    def __init__(
        self,
        *,
        replication: int = 3,
        secret: str = "trustme-bootstrap-secret",
        require_certificates: bool = True,
        auto_certify: bool = True,
        default_score: float = 0.5,
        max_evidence_per_subject: int | None = None,
        backend: str = "auto",
    ) -> None:
        # TrustMe's value is tamper-resistant storage, not aggregation; its
        # certified-report mean has no array kernel, so ``backend`` is
        # accepted for factory uniformity but scoring always runs in Python.
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
            backend=backend,
        )
        if replication < 1:
            raise ConfigurationError("replication must be at least 1")
        self.replication = int(replication)
        self.secret = secret
        self.require_certificates = require_certificates
        #: When true, a report whose transaction has no certificate yet gets
        #: one issued on the fly.  This models the pairwise certificate
        #: exchange that, in the real protocol, happens *before* the
        #: transaction; the simulator abstracts that exchange away.  Set it to
        #: ``False`` to study forged-report rejection explicitly.
        self.auto_certify = auto_certify
        self._certificates: dict[int, TransactionCertificate] = {}
        #: reports per trust-holding agent: ``{tha_id: {subject: [ratings]}}``
        self._tha_storage: dict[str, dict[str, list[float]]] = {}
        self.rejected_reports = 0

    # -- certificate handling ------------------------------------------------

    def issue_certificate(
        self, transaction_id: int, consumer: str, provider: str
    ) -> TransactionCertificate:
        """Issue (and remember) the pairwise certificate for a transaction."""
        certificate = TransactionCertificate.issue(transaction_id, consumer, provider, self.secret)
        self._certificates[transaction_id] = certificate
        return certificate

    def _certificate_valid(self, feedback: Feedback) -> bool:
        certificate = self._certificates.get(feedback.transaction_id)
        if certificate is None:
            return False
        if certificate.provider != feedback.subject:
            return False
        if feedback.rater is not None and certificate.consumer != feedback.rater:
            return False
        return certificate.verify(self.secret)

    # -- trust-holding agents --------------------------------------------------

    def trust_holding_agents(self, subject: str) -> list[str]:
        """Deterministic THA identifiers responsible for ``subject``.

        In the real protocol THAs are anonymous peers selected through the
        overlay; a hash-derived assignment preserves the property that the
        subject cannot predict or control who stores its reports.
        """
        agents = []
        for replica in range(self.replication):
            digest = hashlib.sha256(f"{subject}|{replica}".encode("utf8")).hexdigest()
            agents.append(f"tha-{digest[:12]}")
        return agents

    def record_feedback(self, feedback: Feedback) -> None:
        if self.require_certificates:
            if feedback.transaction_id not in self._certificates and self.auto_certify:
                self.issue_certificate(
                    feedback.transaction_id,
                    feedback.rater if feedback.rater is not None else "anonymous",
                    feedback.subject,
                )
            if not self._certificate_valid(feedback):
                # Reports without a matching certificate were either forged or
                # the certificate exchange was skipped; TrustMe drops them.
                self.rejected_reports += 1
                return
        super().record_feedback(feedback)
        for agent in self.trust_holding_agents(feedback.subject):
            storage = self._tha_storage.setdefault(agent, {})
            storage.setdefault(feedback.subject, []).append(feedback.rating)

    # -- scoring ---------------------------------------------------------------

    def _query_replicas(self, subject: str) -> list[float]:
        """Collect the subject's ratings from every live replica (majority view)."""
        replica_views: list[list[float]] = []
        for agent in self.trust_holding_agents(subject):
            ratings = self._tha_storage.get(agent, {}).get(subject)
            if ratings:
                replica_views.append(ratings)
        if not replica_views:
            return []
        # Replicas are kept consistent by construction; take the longest view
        # to tolerate partially-populated replicas.
        return max(replica_views, key=len)

    def compute_scores(self) -> dict[str, float]:
        scores: dict[str, float] = {}
        for subject in self.store.subjects():
            ratings = self._query_replicas(subject)
            if not ratings:
                ratings = [feedback.rating for feedback in self.store.about(subject)]
            scores[subject] = mean(ratings, default=self.default_score)
        return scores

    def reset(self) -> None:
        super().reset()
        self._certificates.clear()
        self._tha_storage.clear()
        self.rejected_reports = 0

"""The abstract :class:`ReputationSystem` and its shared machinery.

A reputation system is decomposed, following Marti & Garcia-Molina, into

* *information gathering* — delegated to
  :class:`~repro.reputation.gathering.FeedbackStore`;
* *scoring and ranking* — the :meth:`ReputationSystem.compute_scores` hook
  each mechanism implements;
* *response* — the policies of :mod:`repro.reputation.response`, which act on
  the scores.

Scores are cached between :meth:`refresh` calls so the simulator can query
``score()`` cheaply inside a round; recomputation happens once per round.
Each mechanism also declares an ``information_requirement`` in ``[0, 1]``:
how much personally-linkable information it needs to operate (rater
identities, full transaction history, ...).  The privacy facet uses this to
translate a mechanism choice into an exposure level — the paper's core
reputation/privacy antagonism.
"""

from __future__ import annotations

import abc

from repro._util import clamp
from repro.core.backend import resolve_backend
from repro.reputation.gathering import FeedbackStore, LocalTrustBuilder
from repro.simulation.transaction import Feedback

#: Published scores are rounded to this many decimals.  Rationale: the
#: pure-Python and vectorized backends accumulate floating point in different
#: orders (sequential dict walks vs BLAS reductions), so raw scores can
#: differ in the last few ulps.  Snapping to a 1e-9 grid absorbs that noise,
#: making every downstream decision (provider selection, rankings, sweep
#: records) identical regardless of the backend that computed the scores.
#: The grid is deliberately coarse relative to the ~1e-16 backend noise: a
#: score only publishes differently if it lands within an ulp of a rounding
#: midpoint, and the wide ratio makes that a ~1e-7 event per score instead
#: of a once-per-large-campaign one.
SCORE_DECIMALS = 9


class ScoreView(dict[str, float]):
    """Published reputation scores, typed for the public boundary.

    A ``dict`` subclass, so the *old* public shape — ``refresh()`` and
    ``scores()`` returning a bare ``peer_id -> score`` mapping — keeps
    working unchanged (iteration, ``json.dumps``, ``==`` against plain
    dicts, everything).  The class exists so facade consumers get typed
    helpers instead of re-deriving rankings and defaults from a raw dict:
    :meth:`ranking`, :meth:`top`, :meth:`score_of` and the
    :attr:`default_score` the mechanism would hand out for unknown peers.
    ``as_dict()`` is the explicit deprecation alias for code that wants the
    legacy plain-dict shape back.
    """

    #: Score served for peers the mechanism has no evidence about.
    default_score: float

    def __init__(
        self, scores: dict[str, float] | None = None, *, default_score: float = 0.5
    ) -> None:
        super().__init__(scores if scores is not None else {})
        self.default_score = default_score

    def score_of(self, peer_id: str) -> float:
        """Score of a peer; unknown peers get :attr:`default_score`."""
        return self.get(peer_id, self.default_score)

    def ranking(self) -> list[str]:
        """Peer identifiers ordered from most to least reputable.

        Ties break lexicographically on the peer id, mirroring
        :meth:`ReputationSystem.ranking`, so rankings are deterministic.
        """
        return sorted(self, key=lambda peer: (-self[peer], peer))

    def top(self, n: int) -> list[tuple[str, float]]:
        """The ``n`` most reputable ``(peer_id, score)`` pairs."""
        return [(peer, self[peer]) for peer in self.ranking()[: max(n, 0)]]

    def as_dict(self) -> dict[str, float]:
        """The legacy bare-dict shape (plain copy, no view semantics)."""
        return dict(self)


class ReputationSystem(abc.ABC):
    """Base class of every reputation mechanism."""

    #: Human-readable mechanism name; subclasses override.
    name: str = "abstract"

    #: How much personally-linkable information the mechanism requires, in
    #: ``[0, 1]``.  0 means only blinded aggregate counts, 1 means full
    #: identified per-transaction histories.
    information_requirement: float = 0.5

    def __init__(
        self,
        *,
        default_score: float = 0.5,
        max_evidence_per_subject: int | None = None,
        backend: str = "auto",
    ) -> None:
        self.default_score = clamp(default_score)
        self.store = FeedbackStore(max_per_subject=max_evidence_per_subject)
        self.local_trust = LocalTrustBuilder(self.store)
        #: Backend *request* ("auto", "python" or "vectorized"); the concrete
        #: choice is :attr:`resolved_backend`, evaluated lazily so that the
        #: same configuration object works on hosts with and without numpy.
        self.backend = backend
        resolve_backend(backend)  # fail fast on unknown/unavailable names
        self._scores: dict[str, float] = {}
        self._dirty = False

    @property
    def resolved_backend(self) -> str:
        """The concrete backend ("python" or "vectorized") scoring runs on."""
        return resolve_backend(self.backend)

    # -- information gathering -------------------------------------------

    def record_feedback(self, feedback: Feedback) -> None:
        """Ingest one disclosed feedback report."""
        self.store.add(self._transform_feedback(feedback))
        self._dirty = True

    def _transform_feedback(self, feedback: Feedback) -> Feedback:
        """Hook for wrappers that blind or perturb incoming feedback."""
        return feedback

    @property
    def evidence_count(self) -> int:
        return len(self.store)

    # -- scoring and ranking -----------------------------------------------

    @abc.abstractmethod
    def compute_scores(self) -> dict[str, float]:
        """Recompute the score of every known peer; values in ``[0, 1]``."""

    def refresh(self) -> ScoreView:
        """Recompute and cache scores if new evidence arrived since last time.

        Scores are clamped into ``[0, 1]`` and quantized to the 1e-9
        :data:`SCORE_DECIMALS` grid — see the note there on cross-backend
        determinism.  Returns a :class:`ScoreView` (a ``dict`` subclass:
        the historical bare-dict return shape is a strict subset of it).
        """
        if self._dirty or not self._scores:
            # Inline clamp: this comprehension publishes every score of
            # every mechanism once per simulation round.
            self._scores = {
                peer: round(0.0 if score < 0.0 else (1.0 if score > 1.0 else score), SCORE_DECIMALS)
                for peer, score in self.compute_scores().items()
            }
            self._dirty = False
        return ScoreView(self._scores, default_score=self.default_score)

    def score(self, peer_id: str) -> float:
        """Cached score of a peer; unknown peers get the default score."""
        if self._dirty:
            self.refresh()
        return self._scores.get(peer_id, self.default_score)

    def scores(self) -> ScoreView:
        """Cached scores of every known peer as a :class:`ScoreView`."""
        if self._dirty or not self._scores:
            self.refresh()
        return ScoreView(self._scores, default_score=self.default_score)

    def ranking(self) -> list[str]:
        """Peer identifiers ordered from most to least reputable."""
        current = self.scores()
        return sorted(current, key=lambda peer: (-current[peer], peer))

    def known_peers(self) -> list[str]:
        return sorted(self.store.participants())

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop all evidence and cached scores."""
        self.store.clear()
        self._scores.clear()
        self._dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} evidence={self.evidence_count}>"

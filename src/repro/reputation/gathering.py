"""The *information gathering* block: storing and organizing feedback.

Every mechanism shares the same evidence store; what differs is how much of
the stored information each mechanism actually uses (rater identities for
EigenTrust's normalized local trust, only aggregate counts for the Beta
baseline, nothing but blinded ratings for the anonymous mode).  That
difference is what the privacy facet measures.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core import accel
from repro.simulation.transaction import Feedback

if TYPE_CHECKING:
    import numpy as np


@dataclass
class FeedbackColumns:
    """The stored feedback in structure-of-arrays form.

    Parallel columns (one entry per report) that vectorized kernels turn
    into NumPy arrays without touching one :class:`Feedback` object per
    report — the pure-Python object walk is exactly the overhead the array
    backend exists to avoid.  Numeric columns live in ``array.array``
    buffers, which NumPy views zero-copy; peer identifiers are *interned*
    into dense integer codes (``id_for_code`` maps a code back to the
    string), so kernels can translate a whole column with one permutation
    gather instead of one dict lookup per report.  Maintained incrementally
    on :meth:`FeedbackStore.add` and rebuilt lazily after evictions.
    """

    subjects: list[str] = field(default_factory=list)
    raters: list[str | None] = field(default_factory=list)
    ratings: array = field(default_factory=lambda: array("d"))
    positives: array = field(default_factory=lambda: array("b"))
    times: array = field(default_factory=lambda: array("d"))
    #: Interned peer codes; ``rater_codes`` holds -1 for anonymous reports.
    subject_codes: array = field(default_factory=lambda: array("q"))
    rater_codes: array = field(default_factory=lambda: array("q"))
    id_for_code: list[str] = field(default_factory=list)
    _code_for_id: dict[str, int] = field(default_factory=dict)

    def _intern(self, peer_id: str) -> int:
        code = self._code_for_id.get(peer_id)
        if code is None:
            code = len(self.id_for_code)
            self._code_for_id[peer_id] = code
            self.id_for_code.append(peer_id)
        return code

    def append(self, feedback: Feedback) -> None:
        self.subjects.append(feedback.subject)
        self.raters.append(feedback.rater)
        self.ratings.append(feedback.rating)
        self.positives.append(1 if feedback.positive else 0)
        self.times.append(feedback.time)
        self.subject_codes.append(self._intern(feedback.subject))
        self.rater_codes.append(-1 if feedback.rater is None else self._intern(feedback.rater))

    def __len__(self) -> int:
        return len(self.subjects)


@dataclass
class FeedbackStore:
    """Append-only store of disclosed feedback, indexed by subject and rater."""

    max_per_subject: int | None = None
    _by_subject: dict[str, list[Feedback]] = field(default_factory=lambda: defaultdict(list))
    _by_rater: dict[str, list[Feedback]] = field(default_factory=lambda: defaultdict(list))
    _count: int = 0
    _columns: FeedbackColumns = field(default_factory=FeedbackColumns)
    _columns_stale: bool = False
    _version: int = 0
    _epoch: int = 0
    #: Incrementally maintained participant set: (epoch it is valid for,
    #: the live set); rebuilt after history rewrites.
    _participants_state: tuple[int, set[str]] | None = None
    _participants_sorted: list[str] | None = None

    @property
    def version(self) -> int:
        """Monotone change counter: bumps on every mutation, including
        :meth:`clear` — unlike ``len()``, safe to key caches on."""
        return self._version

    @property
    def epoch(self) -> int:
        """History-rewrite counter: bumps when stored feedback is *removed*
        (eviction, :meth:`clear`), never on plain appends.

        Incremental consumers hold an ``(epoch, position)`` watermark into
        the column log: unchanged epoch means everything before ``position``
        is still exactly what they folded in, so only the appended tail needs
        processing; a changed epoch means the log was rewritten and the
        consumer must cold-start.
        """
        return self._epoch

    def add(self, feedback: Feedback) -> None:
        bucket = self._by_subject[feedback.subject]
        bucket.append(feedback)
        if self.max_per_subject is not None and len(bucket) > self.max_per_subject:
            removed = bucket.pop(0)
            if removed.rater is not None:
                rater_bucket = self._by_rater.get(removed.rater)
                if rater_bucket and removed in rater_bucket:
                    rater_bucket.remove(removed)
            # The incremental column log cannot cheaply delete; rebuild it on
            # the next columnar access instead (evictions are the rare path).
            self._columns_stale = True
            self._epoch += 1
        if feedback.rater is not None:
            self._by_rater[feedback.rater].append(feedback)
        if not self._columns_stale:
            self._columns.append(feedback)
        state = self._participants_state
        if state is not None and state[0] == self._epoch:
            participants = state[1]
            if feedback.subject not in participants:
                participants.add(feedback.subject)
                self._participants_sorted = None
            if feedback.rater is not None and feedback.rater not in participants:
                participants.add(feedback.rater)
                self._participants_sorted = None
        self._count += 1
        self._version += 1

    def columns(self) -> FeedbackColumns:
        """The stored feedback as parallel columns (see :class:`FeedbackColumns`).

        Treat the result as read-only: it is the store's live cache.
        """
        if self._columns_stale:
            rebuilt = FeedbackColumns()
            for bucket in self._by_subject.values():
                for feedback in bucket:
                    rebuilt.append(feedback)
            self._columns = rebuilt
            self._columns_stale = False
        return self._columns

    def __len__(self) -> int:
        return self._count

    def subjects(self) -> list[str]:
        return [subject for subject, items in self._by_subject.items() if items]

    def raters(self) -> list[str]:
        return [rater for rater, items in self._by_rater.items() if items]

    def about(self, subject: str) -> list[Feedback]:
        return list(self._by_subject.get(subject, []))

    def by(self, rater: str) -> list[Feedback]:
        return list(self._by_rater.get(rater, []))

    def participants(self) -> set[str]:
        """All peer identifiers seen either as subject or as rater."""
        ids: set[str] = set(self.subjects())
        ids.update(self.raters())
        return ids

    def sorted_participants(self) -> list[str]:
        """Participants in sorted order, cached between refreshes.

        The participant set is maintained incrementally: :meth:`add` folds
        each report's subject/rater into the live set (invalidating the
        sorted view only when someone genuinely new appears), and a history
        rewrite (eviction, :meth:`clear`) bumps the epoch, which rebuilds
        the set from the surviving buckets — so a rater whose only report
        was evicted and who later returns is re-admitted correctly.  The
        O(n log n) sort per refresh becomes O(1) on the common no-new-peer
        round.  Treat the result as read-only.
        """
        state = self._participants_state
        if state is None or state[0] != self._epoch:
            self._participants_state = (self._epoch, self.participants())
            self._participants_sorted = None
        if self._participants_sorted is None:
            self._participants_sorted = sorted(self._participants_state[1])
        return self._participants_sorted

    def anonymous_fraction(self) -> float:
        """Fraction of stored feedback submitted without a rater identity."""
        if self._count == 0:
            return 0.0
        anonymous = sum(
            1
            for items in self._by_subject.values()
            for feedback in items
            if feedback.is_anonymous
        )
        return anonymous / self._count

    def clear(self) -> None:
        self._by_subject.clear()
        self._by_rater.clear()
        self._count = 0
        self._columns = FeedbackColumns()
        self._columns_stale = False
        self._version += 1
        self._epoch += 1


class LocalTrustBuilder:
    """Build pairwise *local trust* values from stored feedback.

    EigenTrust defines the local trust of peer *i* in peer *j* as
    ``s_ij = sat(i, j) - unsat(i, j)`` clipped at zero, then normalized over
    *i*'s row.  PowerTrust uses the same raw pairwise evidence.  Anonymous
    feedback carries no rater, so it cannot contribute to pairwise local
    trust — mechanisms that need it simply see less evidence, which is the
    accuracy cost of anonymity the ablation experiment quantifies.

    Pairwise totals are maintained *incrementally*: every report is a ``±1``
    delta on its ``(rater, subject)`` pair, so the builder keeps a running
    ledger and folds only feedback appended since the previous call (an
    ``(epoch, position)`` watermark into the store's column log).  The
    deltas are integers, which float arithmetic represents exactly in any
    accumulation order, so the incremental ledger is *bitwise* identical to
    a full rescan — including row/column insertion order, because appends
    fold in the same global order a rescan walks.  When
    ``accel.flags().incremental_refresh`` is off the ledger is rebuilt from
    scratch on every call (the cold-pipeline reference behaviour), and a
    store-history rewrite (eviction, ``clear``) always forces a rebuild.
    """

    def __init__(self, store: FeedbackStore) -> None:
        self._store = store
        self._totals: dict[str, dict[str, float]] = {}
        self._watermark: tuple[int, int] = (-1, 0)
        #: Dense raw-total matrix cache: (peer-id tuple, epoch, position,
        #: ndarray).  See :meth:`dense_raw_totals`.
        self._dense_state: tuple[tuple[str, ...], int, int, object] | None = None

    def _fold_totals(
        self, totals: dict[str, dict[str, float]], columns: FeedbackColumns, start: int
    ) -> None:
        """Fold column-log entries ``[start:]`` into the pairwise ledger."""
        subjects = columns.subjects
        raters = columns.raters
        positives = columns.positives
        for position in range(start, len(subjects)):
            rater = raters[position]
            if rater is None:
                continue
            row = totals.get(rater)
            if row is None:
                row = totals[rater] = {}
            delta = 1.0 if positives[position] else -1.0
            row[subjects[position]] = row.get(subjects[position], 0.0) + delta

    def pair_totals(self) -> dict[str, dict[str, float]]:
        """Signed pairwise totals ``{rater: {subject: positives - negatives}}``.

        Unclipped (rows may carry zero or negative entries) and live: treat
        the result as read-only.  Pairs stay present once rated, which is
        exactly the edge set of PowerTrust's trust overlay.
        """
        columns = self._store.columns()
        epoch = self._store.epoch
        if not accel.flags().incremental_refresh:
            totals: dict[str, dict[str, float]] = {}
            self._fold_totals(totals, columns, 0)
            # Keep the ledger consistent so flipping the flag mid-life stays
            # correct: the cold result *is* the up-to-date ledger.
            self._totals = totals
            self._watermark = (epoch, len(columns))
            return totals
        if self._watermark[0] != epoch:
            self._totals = {}
            self._watermark = (epoch, 0)
        position = self._watermark[1]
        if position < len(columns):
            self._fold_totals(self._totals, columns, position)
            self._watermark = (epoch, len(columns))
        return self._totals

    def raw_local_trust(self) -> dict[str, dict[str, float]]:
        """``{rater: {subject: max(0, positives - negatives)}}``."""
        return {
            rater: {subject: max(0.0, value) for subject, value in row.items()}
            for rater, row in self.pair_totals().items()
        }

    def dense_raw_totals(self, positions: dict[str, int], n: int) -> np.ndarray:
        """Signed pair totals as a dense ``(n, n)`` float array, maintained
        incrementally for a fixed peer layout.

        ``positions`` maps every current participant to its dense index
        (the :class:`~repro.core.backend.PeerIndex` layout).  While the
        layout is unchanged, each refresh scatters only the newly appended
        reports into the cached matrix; a layout change (a new participant
        appeared, identities rebound) rebuilds from the pair ledger.  The
        entries are integer-valued sums of ``±1``, so the cached matrix is
        bitwise identical to a from-scratch scatter.  Callers must treat
        the returned array as read-only (take a clipped/normalized copy).
        """
        from repro.core.backend import require_numpy

        numpy = require_numpy()
        columns = self._store.columns()
        epoch = self._store.epoch
        total = len(columns)
        # Insertion order of a PeerIndex position map *is* the dense layout.
        key = tuple(positions)
        state = self._dense_state
        if (
            state is not None
            and state[0] == key
            and state[1] == epoch
            and state[2] <= total
        ):
            raw = state[3]
            start = state[2]
            if start < total:
                subjects = columns.subjects
                raters = columns.raters
                positives = columns.positives
                for index in range(start, total):
                    rater = raters[index]
                    if rater is None:
                        continue
                    row = positions[rater]
                    column = positions[subjects[index]]
                    raw[row, column] += 1.0 if positives[index] else -1.0
        else:
            raw = numpy.zeros((n, n), dtype=float)
            for rater, row_totals in self.pair_totals().items():
                row = positions.get(rater)
                if row is None:
                    continue
                raw_row = raw[row]
                for subject, value in row_totals.items():
                    column = positions.get(subject)
                    if column is not None:
                        raw_row[column] = value
        self._dense_state = (key, epoch, total, raw)
        return raw

    def normalized_local_trust(
        self, peers: Iterable[str] | None = None
    ) -> dict[str, dict[str, float]]:
        """Row-normalized local trust ``c_ij`` as used by EigenTrust.

        Rows that are entirely zero stay empty; EigenTrust handles them by
        falling back to the pre-trusted distribution.
        """
        raw = self.raw_local_trust()
        known = set(peers) if peers is not None else self._store.participants()
        normalized: dict[str, dict[str, float]] = {}
        for rater in known:
            row = raw.get(rater, {})
            row = {subject: value for subject, value in row.items() if subject in known}
            total = sum(row.values())
            if total > 0.0:
                normalized[rater] = {s: v / total for s, v in row.items()}
            else:
                normalized[rater] = {}
        return normalized

    def positive_negative_counts(self, subject: str) -> tuple[int, int]:
        """Counts of positive and negative reports about ``subject``."""
        positives = 0
        negatives = 0
        for feedback in self._store.about(subject):
            if feedback.positive:
                positives += 1
            else:
                negatives += 1
        return positives, negatives

"""The *information gathering* block: storing and organizing feedback.

Every mechanism shares the same evidence store; what differs is how much of
the stored information each mechanism actually uses (rater identities for
EigenTrust's normalized local trust, only aggregate counts for the Beta
baseline, nothing but blinded ratings for the anonymous mode).  That
difference is what the privacy facet measures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.simulation.transaction import Feedback


@dataclass
class FeedbackStore:
    """Append-only store of disclosed feedback, indexed by subject and rater."""

    max_per_subject: Optional[int] = None
    _by_subject: Dict[str, List[Feedback]] = field(default_factory=lambda: defaultdict(list))
    _by_rater: Dict[str, List[Feedback]] = field(default_factory=lambda: defaultdict(list))
    _count: int = 0

    def add(self, feedback: Feedback) -> None:
        bucket = self._by_subject[feedback.subject]
        bucket.append(feedback)
        if self.max_per_subject is not None and len(bucket) > self.max_per_subject:
            removed = bucket.pop(0)
            if removed.rater is not None:
                rater_bucket = self._by_rater.get(removed.rater)
                if rater_bucket and removed in rater_bucket:
                    rater_bucket.remove(removed)
        if feedback.rater is not None:
            self._by_rater[feedback.rater].append(feedback)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def subjects(self) -> List[str]:
        return [subject for subject, items in self._by_subject.items() if items]

    def raters(self) -> List[str]:
        return [rater for rater, items in self._by_rater.items() if items]

    def about(self, subject: str) -> List[Feedback]:
        return list(self._by_subject.get(subject, []))

    def by(self, rater: str) -> List[Feedback]:
        return list(self._by_rater.get(rater, []))

    def participants(self) -> Set[str]:
        """All peer identifiers seen either as subject or as rater."""
        ids: Set[str] = set(self.subjects())
        ids.update(self.raters())
        return ids

    def anonymous_fraction(self) -> float:
        """Fraction of stored feedback submitted without a rater identity."""
        if self._count == 0:
            return 0.0
        anonymous = sum(
            1
            for items in self._by_subject.values()
            for feedback in items
            if feedback.is_anonymous
        )
        return anonymous / self._count

    def clear(self) -> None:
        self._by_subject.clear()
        self._by_rater.clear()
        self._count = 0


class LocalTrustBuilder:
    """Build pairwise *local trust* values from stored feedback.

    EigenTrust defines the local trust of peer *i* in peer *j* as
    ``s_ij = sat(i, j) - unsat(i, j)`` clipped at zero, then normalized over
    *i*'s row.  PowerTrust uses the same raw pairwise evidence.  Anonymous
    feedback carries no rater, so it cannot contribute to pairwise local
    trust — mechanisms that need it simply see less evidence, which is the
    accuracy cost of anonymity the ablation experiment quantifies.
    """

    def __init__(self, store: FeedbackStore) -> None:
        self._store = store

    def raw_local_trust(self) -> Dict[str, Dict[str, float]]:
        """``{rater: {subject: max(0, positives - negatives)}}``."""
        totals: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for rater in self._store.raters():
            for feedback in self._store.by(rater):
                delta = 1.0 if feedback.positive else -1.0
                totals[rater][feedback.subject] += delta
        return {
            rater: {subject: max(0.0, value) for subject, value in row.items()}
            for rater, row in totals.items()
        }

    def normalized_local_trust(
        self, peers: Optional[Iterable[str]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Row-normalized local trust ``c_ij`` as used by EigenTrust.

        Rows that are entirely zero stay empty; EigenTrust handles them by
        falling back to the pre-trusted distribution.
        """
        raw = self.raw_local_trust()
        known = set(peers) if peers is not None else self._store.participants()
        normalized: Dict[str, Dict[str, float]] = {}
        for rater in known:
            row = raw.get(rater, {})
            row = {subject: value for subject, value in row.items() if subject in known}
            total = sum(row.values())
            if total > 0.0:
                normalized[rater] = {s: v / total for s, v in row.items()}
            else:
                normalized[rater] = {}
        return normalized

    def positive_negative_counts(self, subject: str) -> tuple[int, int]:
        """Counts of positive and negative reports about ``subject``."""
        positives = 0
        negatives = 0
        for feedback in self._store.about(subject):
            if feedback.positive:
                positives += 1
            else:
                negatives += 1
        return positives, negatives

"""Beta reputation: Bayesian positive/negative evidence counting.

The score of a peer is the expected value of a Beta(α, β) posterior with
``α = forgetting-weighted positives + 1`` and ``β = weighted negatives + 1``.
An optional forgetting factor discounts old evidence, which is what lets the
mechanism track traitors (peers that turn bad after building a reputation).
Like the simple average it ignores rater identity, so its information
requirement is low.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import require_unit_interval
from repro.reputation.base import ReputationSystem


class BetaReputation(ReputationSystem):
    """Beta-posterior expected value with exponential forgetting."""

    name = "beta"
    information_requirement = 0.3

    def __init__(
        self,
        *,
        forgetting: float = 1.0,
        default_score: float = 0.5,
        max_evidence_per_subject: Optional[int] = None,
    ) -> None:
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
        )
        self.forgetting = require_unit_interval(forgetting, "forgetting")

    def compute_scores(self) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        for subject in self.store.subjects():
            reports = self.store.about(subject)
            if not reports:
                continue
            latest = max(feedback.time for feedback in reports)
            alpha = 1.0
            beta = 1.0
            for feedback in reports:
                weight = self.forgetting ** (latest - feedback.time)
                if feedback.positive:
                    alpha += weight
                else:
                    beta += weight
            scores[subject] = alpha / (alpha + beta)
        return scores

"""Beta reputation: Bayesian positive/negative evidence counting.

The score of a peer is the expected value of a Beta(α, β) posterior with
``α = forgetting-weighted positives + 1`` and ``β = weighted negatives + 1``.
An optional forgetting factor discounts old evidence, which is what lets the
mechanism track traitors (peers that turn bad after building a reputation).
Like the simple average it ignores rater identity, so its information
requirement is low.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import require_unit_interval
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.reputation.base import ReputationSystem


class BetaReputation(ReputationSystem):
    """Beta-posterior expected value with exponential forgetting."""

    name = "beta"
    information_requirement = 0.3

    def __init__(
        self,
        *,
        forgetting: float = 1.0,
        default_score: float = 0.5,
        max_evidence_per_subject: Optional[int] = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
            backend=backend,
        )
        self.forgetting = require_unit_interval(forgetting, "forgetting")

    def compute_scores(self) -> Dict[str, float]:
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized()
        scores: Dict[str, float] = {}
        for subject in self.store.subjects():
            reports = self.store.about(subject)
            if not reports:
                continue
            latest = max(feedback.time for feedback in reports)
            alpha = 1.0
            beta = 1.0
            for feedback in reports:
                weight = self.forgetting ** (latest - feedback.time)
                if feedback.positive:
                    alpha += weight
                else:
                    beta += weight
            scores[subject] = alpha / (alpha + beta)
        return scores

    def _compute_vectorized(self) -> Dict[str, float]:
        subjects = self.store.subjects()
        if not subjects:
            return {}
        # Subject order mirrors the pure-Python path so the published score
        # dict iterates identically on both backends.
        index = PeerIndex(subjects)
        columns = self.store.columns()
        positions = backend_kernels.subject_positions_from_columns(columns, index)
        values = backend_kernels.beta_scores(
            positions,
            columns.times,
            columns.positives,
            forgetting=self.forgetting,
            n_subjects=len(index),
        )
        return index.vector_to_dict(values)

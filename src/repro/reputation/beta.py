"""Beta reputation: Bayesian positive/negative evidence counting.

The score of a peer is the expected value of a Beta(α, β) posterior with
``α = forgetting-weighted positives + 1`` and ``β = weighted negatives + 1``.
An optional forgetting factor discounts old evidence, which is what lets the
mechanism track traitors (peers that turn bad after building a reputation).
Like the simple average it ignores rater identity, so its information
requirement is low.
"""

from __future__ import annotations


from repro._util import require_unit_interval
from repro.core import accel
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, PeerIndex
from repro.reputation.base import ReputationSystem


class BetaReputation(ReputationSystem):
    """Beta-posterior expected value with exponential forgetting.

    Refresh is incremental by default: a per-subject running
    ``(α-mass, β-mass, latest time)`` folds in only newly appended reports.
    Without forgetting (``forgetting=1.0``, the default) every report weighs
    exactly 1.0 and the running masses are integer counts, so incremental
    scores are *bitwise* identical to a cold rescan.  With forgetting, a
    report newer than the subject's previous ``latest`` rescales the
    accumulated mass by ``forgetting**(new - old)`` — algebraically equal to
    the cold sum but re-associated, so the two agree only to float
    round-off (~1e-13); the 1e-9 publication grid of
    :meth:`ReputationSystem.refresh` absorbs that, exactly as it absorbs
    cross-backend noise.
    """

    name = "beta"
    information_requirement = 0.3

    def __init__(
        self,
        *,
        forgetting: float = 1.0,
        default_score: float = 0.5,
        max_evidence_per_subject: int | None = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            default_score=default_score,
            max_evidence_per_subject=max_evidence_per_subject,
            backend=backend,
        )
        self.forgetting = require_unit_interval(forgetting, "forgetting")
        #: subject -> [α mass, β mass, latest report time].  When
        #: ``forgetting == 1.0`` the masses *include* the +1 prior so the
        #: fold order matches the cold loop addition for addition; otherwise
        #: the prior is added at score time (it must not be rescaled).
        self._agg: dict[str, list[float]] = {}
        self._agg_watermark: tuple[int, int] = (-1, 0)

    def _fold(self, start: int) -> None:
        columns = self.store.columns()
        agg = self._agg
        subjects = columns.subjects
        positives = columns.positives
        times = columns.times
        forgetting = self.forgetting
        # repro-lint: ignore[R5] config sentinel selecting the bitwise
        # fold fast path; forgetting arrives by assignment, not arithmetic
        exact = forgetting == 1.0
        prior = 1.0 if exact else 0.0
        for index in range(start, len(subjects)):
            subject = subjects[index]
            time = times[index]
            entry = agg.get(subject)
            if entry is None:
                entry = agg[subject] = [prior, prior, time]
            elif time > entry[2]:
                if not exact:
                    scale = forgetting ** (time - entry[2])
                    entry[0] *= scale
                    entry[1] *= scale
                entry[2] = time
            weight = 1.0 if exact else forgetting ** (entry[2] - time)
            if positives[index]:
                entry[0] += weight
            else:
                entry[1] += weight

    def _compute_incremental(self) -> dict[str, float] | None:
        if not accel.flags().incremental_refresh:
            return None
        epoch = self.store.epoch
        if self._agg_watermark[0] != epoch:
            self._agg = {}
            self._agg_watermark = (epoch, 0)
        position = self._agg_watermark[1]
        total = len(self.store.columns())
        if position < total:
            self._fold(position)
            self._agg_watermark = (epoch, total)
        # repro-lint: ignore[R5] config sentinel (see _fold): exact check
        prior = 0.0 if self.forgetting == 1.0 else 1.0
        scores: dict[str, float] = {}
        for subject in self.store.subjects():
            entry = self._agg[subject]
            alpha = prior + entry[0]
            beta = prior + entry[1]
            scores[subject] = alpha / (alpha + beta)
        return scores

    def compute_scores(self) -> dict[str, float]:
        incremental = self._compute_incremental()
        if incremental is not None:
            return incremental
        if self.resolved_backend == VECTORIZED_BACKEND:
            return self._compute_vectorized()
        scores: dict[str, float] = {}
        for subject in self.store.subjects():
            reports = self.store.about(subject)
            if not reports:
                continue
            latest = max(feedback.time for feedback in reports)
            alpha = 1.0
            beta = 1.0
            for feedback in reports:
                weight = self.forgetting ** (latest - feedback.time)
                if feedback.positive:
                    alpha += weight
                else:
                    beta += weight
            scores[subject] = alpha / (alpha + beta)
        return scores

    def _compute_vectorized(self) -> dict[str, float]:
        subjects = self.store.subjects()
        if not subjects:
            return {}
        # Subject order mirrors the pure-Python path so the published score
        # dict iterates identically on both backends.
        index = PeerIndex(subjects)
        columns = self.store.columns()
        positions = backend_kernels.subject_positions_from_columns(columns, index)
        values = backend_kernels.beta_scores(
            positions,
            columns.times,
            columns.positives,
            forgetting=self.forgetting,
            n_subjects=len(index),
        )
        return index.vector_to_dict(values)

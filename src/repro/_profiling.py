"""Opt-in per-phase wall-clock accounting for the experiment pipeline.

The experiments CLI exposes ``--profile``, which wraps each experiment run
in :func:`profiled` and prints the accumulated phase table afterwards.  The
instrumented layers — scenario setup, the simulation engine, metric
evaluation — report into the active :class:`PhaseTimer` through
:func:`add_seconds`/:func:`phase`; when no timer is active (the default)
the instrumentation short-circuits on a single ``None`` check, so the hot
paths pay nothing.

Phases are free-form names; the pipeline uses four: ``setup`` (graph,
campaign and mechanism construction), ``simulate`` (the engine round loop),
``refresh`` (reputation score recomputation, reported separately because it
is the classic hot path and is *included* in ``simulate``'s wall time), and
``metrics`` (trace condensation and summaries).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator

#: Phases whose wall time is contained in another phase; the report renders
#: them indented and excludes them from the total.
_NESTED_PHASES = {"refresh": "simulate"}

_ACTIVE: PhaseTimer | None = None


class PhaseTimer:
    """Accumulates wall-clock seconds and hit counts per named phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, name: str, seconds: float, *, count: int = 1) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def rows(self) -> list[tuple[str, float, int]]:
        """(phase, seconds, count) rows, outer phases first."""
        ordered = sorted(
            self.seconds,
            key=lambda name: (name in _NESTED_PHASES, -self.seconds[name]),
        )
        return [(name, self.seconds[name], self.counts[name]) for name in ordered]

    def report(self) -> str:
        """Render the phase table (nested phases indented under their parent)."""
        if not self.seconds:
            return "no profiled phases recorded"
        total = sum(
            seconds for name, seconds in self.seconds.items() if name not in _NESTED_PHASES
        )
        rows = [
            (
                f"  {name} (within {_NESTED_PHASES[name]})"
                if name in _NESTED_PHASES
                else name,
                seconds,
                count,
            )
            for name, seconds, count in self.rows()
        ]
        width = max(len("phase"), len("total"), *(len(label) for label, _, _ in rows))
        lines = [f"{'phase':<{width}s} {'seconds':>9s} {'share':>7s} {'calls':>7s}"]
        for label, seconds, count in rows:
            share = seconds / total if total > 0 else 0.0
            lines.append(f"{label:<{width}s} {seconds:9.3f} {share:6.1%} {count:7d}")
        lines.append(f"{'total':<{width}s} {total:9.3f}")
        return "\n".join(lines)


def active() -> PhaseTimer | None:
    """The timer experiments are currently reporting into, if any."""
    return _ACTIVE


def clock() -> float:
    """Monotonic wall-clock reading for measurement metadata.

    The single sanctioned clock access point: instrumented modules call this
    instead of :func:`time.perf_counter` so the determinism lint (R1) can
    guarantee no wall-clock value reaches a published record — timings flow
    only into profiling tables and benchmark summaries.
    """
    return time.perf_counter()


def add_seconds(name: str, seconds: float, *, count: int = 1) -> None:
    """Report into the active timer; no-op when profiling is off."""
    if _ACTIVE is not None:
        _ACTIVE.add(name, seconds, count=count)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a block into the active timer; near-free when profiling is off."""
    if _ACTIVE is None:
        yield
        return
    with _ACTIVE.phase(name):
        yield


@contextmanager
def profiled() -> Iterator[PhaseTimer]:
    """Activate a fresh :class:`PhaseTimer` for the enclosed block."""
    global _ACTIVE
    previous = _ACTIVE
    timer = PhaseTimer()
    _ACTIVE = timer
    try:
        yield timer
    finally:
        _ACTIVE = previous


__all__ = ["PhaseTimer", "active", "add_seconds", "clock", "phase", "profiled"]

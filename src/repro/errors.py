"""Exception hierarchy shared by every subpackage.

Keeping the exceptions in a single module lets callers catch
:class:`ReproError` to handle any library-raised failure, while still being
able to discriminate precise error classes (configuration problems, privacy
denials, unknown identifiers, ...).
"""


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class UnknownPeerError(ReproError, KeyError):
    """An operation referenced a peer identifier that does not exist."""


class UnknownDataError(ReproError, KeyError):
    """An operation referenced a data item that was never published."""


class PrivacyViolationError(ReproError):
    """An access was attempted that the owner's privacy policy forbids."""


class AccessDeniedError(PrivacyViolationError):
    """The privacy service denied a request (normal, policy-driven denial)."""


class NegotiationFailedError(ReproError):
    """Requester and owner could not agree on access terms."""


class AllocationError(ReproError):
    """The query mediator could not allocate a query to any provider."""


class TemplateError(ConfigurationError):
    """A declarative scenario template is malformed.

    ``path`` locates the offending field inside the document with a
    dotted/indexed path (e.g. ``tiers.large.rounds`` or ``campaign.events[2].round``).
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, corrupt, or incompatible.

    Raised for missing files, foreign formats, unsupported versions,
    truncated payloads, SHA-256 mismatches and state/hook shape mismatches
    on restore.  Deliberately *not* a :class:`ConfigurationError`: a bad
    checkpoint is damaged state, not a bad parameter.
    """


class IntegrityError(ReproError):
    """A record artifact failed its integrity verification.

    Covers truncated or bit-flipped record files and journals detected by
    the SHA-256 sidecar/per-line checksums (``verify-records``).
    """


class InjectedFault(ReproError):
    """An exception raised on purpose by the fault-injection layer.

    Only ever raised by :func:`repro.faults.fire` when an active
    :class:`~repro.faults.FaultPlan` says so; seeing one outside a chaos
    test means a plan leaked into the environment (``REPRO_FAULTS``).
    """


class ReputationError(ReproError):
    """A reputation mechanism was fed inconsistent evidence."""

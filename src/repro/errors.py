"""Exception hierarchy shared by every subpackage.

Keeping the exceptions in a single module lets callers catch
:class:`ReproError` to handle any library-raised failure, while still being
able to discriminate precise error classes (configuration problems, privacy
denials, unknown identifiers, ...).
"""


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class UnknownPeerError(ReproError, KeyError):
    """An operation referenced a peer identifier that does not exist."""


class UnknownDataError(ReproError, KeyError):
    """An operation referenced a data item that was never published."""


class PrivacyViolationError(ReproError):
    """An access was attempted that the owner's privacy policy forbids."""


class AccessDeniedError(PrivacyViolationError):
    """The privacy service denied a request (normal, policy-driven denial)."""


class NegotiationFailedError(ReproError):
    """Requester and owner could not agree on access terms."""


class AllocationError(ReproError):
    """The query mediator could not allocate a query to any provider."""


class TemplateError(ConfigurationError):
    """A declarative scenario template is malformed.

    ``path`` locates the offending field inside the document with a
    dotted/indexed path (e.g. ``tiers.large.rounds`` or ``campaign.events[2].round``).
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, corrupt, or incompatible.

    Raised for missing files, foreign formats, unsupported versions,
    truncated payloads, SHA-256 mismatches and state/hook shape mismatches
    on restore.  Deliberately *not* a :class:`ConfigurationError`: a bad
    checkpoint is damaged state, not a bad parameter.
    """


class IntegrityError(ReproError):
    """A record artifact failed its integrity verification.

    Covers truncated or bit-flipped record files and journals detected by
    the SHA-256 sidecar/per-line checksums (``verify-records``).
    """


class InjectedFault(ReproError):
    """An exception raised on purpose by the fault-injection layer.

    Only ever raised by :func:`repro.faults.fire` when an active
    :class:`~repro.faults.FaultPlan` says so; seeing one outside a chaos
    test means a plan leaked into the environment (``REPRO_FAULTS``).
    """


class ReputationError(ReproError):
    """A reputation mechanism was fed inconsistent evidence."""


class OverloadError(ReproError):
    """The serving layer shed a request because it is saturated.

    Maps to HTTP ``429`` with a ``Retry-After`` hint.  Raised by the
    bounded admission gate and the per-client token-bucket rate limiter;
    the request was *not* processed and can safely be retried later.

    ``retry_after`` is the suggested wait in seconds before retrying.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ReadOnlyError(ReproError):
    """The service refused a write because it is in read-only mode.

    Maps to HTTP ``503``.  Entered when the write-ahead log can no longer
    guarantee durability (append failure) or when an operator flips the
    service read-only; reads keep answering from the stale watermark.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class CircuitOpenError(ReproError):
    """The resilient client's circuit breaker is open.

    The client refused to issue a request because recent consecutive
    failures tripped the breaker; it will half-open after the configured
    reset interval and probe with a single request.
    """


class RequestFailedError(ReproError):
    """The resilient client exhausted its retry budget.

    Carries the final HTTP status (``status``, or ``None`` when the
    failure was transport-level) and the number of attempts made.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        attempts: int = 0,
    ) -> None:
        self.status = status
        self.attempts = attempts
        super().__init__(message)

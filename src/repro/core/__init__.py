"""The paper's contribution: the 3-facet characterization of trust.

* :mod:`repro.core.config` — :class:`SystemSettings`, the settable aspects of
  the system (information-sharing level, reputation mechanism, anonymity,
  facet weights and Area-A thresholds);
* :mod:`repro.core.facets` — :class:`FacetScores` and the evaluators that
  turn raw measurements into the privacy, reputation and satisfaction facet
  scores of Figure 2;
* :mod:`repro.core.metric` — :class:`CompositeTrustMetric`, the "generic
  metric that takes into account all these dimensions" (Section 4), with a
  family of aggregators;
* :mod:`repro.core.trust_model` — :class:`TrustModel` and
  :class:`TrustReport`, per-user and global trust towards the system;
* :mod:`repro.core.coupling` — the Section-3 interaction dynamics between
  trust, satisfaction, reputation efficiency, disclosure and privacy;
* :mod:`repro.core.tradeoff` — the settings explorer that sweeps the
  information-sharing knob, locates the Area-A tradeoff region and the
  maximal-trust setting (Figure 2);
* :mod:`repro.core.optimizer` — :class:`TrustOptimizer`, the automated
  "method to obtain the right settings" of Section 4, with per-facet
  application constraints.
"""

from repro.core.backend import (
    HAS_NUMPY,
    PeerIndex,
    available_backends,
    resolve_backend,
)
from repro.core.config import SystemSettings
from repro.core.coupling import CouplingDynamics, CouplingState, coupling_matrix
from repro.core.facets import (
    FacetScores,
    privacy_facet,
    reputation_facet,
    satisfaction_facet,
)
from repro.core.metric import Aggregator, CompositeTrustMetric
from repro.core.optimizer import (
    FacetConstraints,
    OptimizationResult,
    TrustOptimizer,
)
from repro.core.tradeoff import (
    AnalyticFacetModel,
    SettingsExplorer,
    TradeoffPoint,
)
from repro.core.trust_model import TrustModel, TrustReport

__all__ = [
    "Aggregator",
    "AnalyticFacetModel",
    "CompositeTrustMetric",
    "CouplingDynamics",
    "CouplingState",
    "FacetConstraints",
    "FacetScores",
    "HAS_NUMPY",
    "OptimizationResult",
    "PeerIndex",
    "SettingsExplorer",
    "SystemSettings",
    "TradeoffPoint",
    "TrustModel",
    "TrustOptimizer",
    "TrustReport",
    "available_backends",
    "coupling_matrix",
    "resolve_backend",
    "privacy_facet",
    "reputation_facet",
    "satisfaction_facet",
]

"""System settings: the "settable aspects" of Figure 2.

The paper's stated objective is "to find a method to obtain the right
settings in order to maximize the user's trust towards the system".
:class:`SystemSettings` gathers those settings:

* ``sharing_level`` — the quantity of shared information (the knob that
  simultaneously raises reputation power and lowers privacy guarantees);
* ``reputation_mechanism`` — which mechanism is deployed (each has its own
  information requirement and power);
* ``anonymous_feedback`` — whether reports go through the anonymizing channel;
* ``policy_strictness`` — the default restrictiveness of users' privacy
  policies;
* facet weights — how the composite metric weighs privacy, reputation and
  satisfaction;
* Area-A thresholds — the minimum facet levels that count as "a good
  tradeoff" (the intersection area of Figure 2, left).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import normalize_weights, require_unit_interval
from repro.errors import ConfigurationError

#: Mechanisms the settings accept; mirrors repro.reputation.REPUTATION_FACTORIES
#: without importing it (keeps core free of a dependency on the substrate).
KNOWN_MECHANISMS = ("average", "beta", "eigentrust", "powertrust", "trustme", "none")


@dataclass(frozen=True)
class SystemSettings:
    """A complete assignment of the system's settable aspects."""

    sharing_level: float = 0.8
    reputation_mechanism: str = "eigentrust"
    anonymous_feedback: bool = False
    policy_strictness: float = 0.5
    privacy_weight: float = 1.0
    reputation_weight: float = 1.0
    satisfaction_weight: float = 1.0
    area_a_threshold: float = 0.5

    def __post_init__(self) -> None:
        require_unit_interval(self.sharing_level, "sharing_level")
        require_unit_interval(self.policy_strictness, "policy_strictness")
        require_unit_interval(self.area_a_threshold, "area_a_threshold")
        if self.reputation_mechanism not in KNOWN_MECHANISMS:
            raise ConfigurationError(
                f"unknown reputation mechanism {self.reputation_mechanism!r}; "
                f"expected one of {KNOWN_MECHANISMS}"
            )
        for name, weight in self.weights().items():
            if weight < 0:
                raise ConfigurationError(f"{name} weight must be non-negative")
        if (
            self.privacy_weight == 0
            and self.reputation_weight == 0
            and self.satisfaction_weight == 0
        ):
            raise ConfigurationError("at least one facet weight must be positive")

    def weights(self) -> dict[str, float]:
        """Raw facet weights keyed by facet name."""
        return {
            "privacy": self.privacy_weight,
            "reputation": self.reputation_weight,
            "satisfaction": self.satisfaction_weight,
        }

    def normalized_weights(self) -> dict[str, float]:
        """Facet weights normalized to sum to one (privacy, reputation, satisfaction)."""
        names = ["privacy", "reputation", "satisfaction"]
        raw = [self.weights()[name] for name in names]
        normalized = normalize_weights(raw)
        return dict(zip(names, normalized, strict=True))

    def with_sharing_level(self, sharing_level: float) -> SystemSettings:
        """A copy of the settings with a different information-sharing level."""
        return replace(self, sharing_level=sharing_level)

    def with_mechanism(self, mechanism: str) -> SystemSettings:
        return replace(self, reputation_mechanism=mechanism)

    def describe(self) -> dict[str, object]:
        """A plain dictionary view used by reports and benchmarks."""
        return {
            "sharing_level": self.sharing_level,
            "reputation_mechanism": self.reputation_mechanism,
            "anonymous_feedback": self.anonymous_feedback,
            "policy_strictness": self.policy_strictness,
            "weights": self.normalized_weights(),
            "area_a_threshold": self.area_a_threshold,
        }

"""The array-backed compute core: dense indices and vectorized kernels.

Every hot numeric path of the library — the EigenTrust/PowerTrust power
iteration, the Beta/average score refresh, the Section-3 coupling dynamics
and the per-round draws of the interaction simulator — exists in two
implementations:

* a **pure-Python** one (dicts of dicts, explicit loops), the original
  reference code, always available; and
* a **vectorized** one built on NumPy arrays, which maps peer identifiers to
  dense integer indices through :class:`PeerIndex` and expresses the same
  arithmetic as matrix-vector products and batched elementwise updates.

This module owns backend *selection* (``resolve_backend``) and the shared
vectorized kernels.  NumPy is an accelerator, not a hard requirement: when it
is missing, ``resolve_backend("auto")`` falls back to the pure-Python
implementation and everything keeps working, only slower.

Numerical contract
------------------
The two backends compute the same quantities with the same operation
*structure* but not always the same floating-point *order* (BLAS matrix
products re-associate sums), so raw results agree only to ~1e-12.  Consumers
that must be bit-identical across backends (the sweep determinism contract)
rely on :meth:`repro.reputation.base.ReputationSystem.refresh` publishing
scores quantized to a coarse 1e-9 grid, which absorbs that noise.  The
coupling kernels mirror the pure-Python expressions term by term and *are*
bitwise identical to the fallback.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

try:
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]

try:
    import scipy.sparse as sparse
except ImportError:  # pragma: no cover - scipy is an optional accelerator
    sparse = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from types import ModuleType

    from repro.reputation.gathering import FeedbackColumns

    #: Anything the kernels coerce through ``numpy.asarray``: an existing
    #: array or a (possibly nested) sequence of numbers.
    ArrayLike = np.ndarray | Sequence[float] | Sequence[Sequence[float]]
    #: A local-trust matrix: dense array, or CSR-sparse when scipy is present.
    TrustMatrix = np.ndarray | sparse.csr_matrix

#: Whether the vectorized backend can be used at all in this interpreter.
HAS_NUMPY = np is not None

#: Whether sparse kernels are available.  The local-trust matrix is a
#: percent-dense object at realistic peer counts, so CSR storage turns the
#: power iteration from O(n^2) memory traffic into O(nnz); without scipy the
#: vectorized backend silently uses dense arrays (same results, slower).
HAS_SCIPY = sparse is not None

PYTHON_BACKEND = "python"
VECTORIZED_BACKEND = "vectorized"
AUTO_BACKEND = "auto"

#: Every name ``resolve_backend`` accepts.
BACKEND_CHOICES = (AUTO_BACKEND, PYTHON_BACKEND, VECTORIZED_BACKEND)

#: Spread below which a min-max rescale treats all values as equal.  Kept
#: well above float noise (1e-16-ish) so that near-degenerate spreads do not
#: amplify backend-dependent rounding into visible score differences.
FLAT_SPREAD = 1e-12

#: Below this peer count the local-trust matrix is built dense even when
#: scipy is available.  A CSR matvec costs ~15µs of per-call dispatch
#: overhead regardless of size, which dominates the power iteration at the
#: population sizes the scenario experiments run (tens of peers, ~100
#: iterations per refresh); a dense matvec at n=128 is ~2µs.  The crossover
#: where sparsity wins back the memory traffic sits well above this.
DENSE_TRUST_THRESHOLD = 128


def available_backends() -> tuple[str, ...]:
    """The concrete backends that can run in this interpreter."""
    if HAS_NUMPY:
        return (PYTHON_BACKEND, VECTORIZED_BACKEND)
    return (PYTHON_BACKEND,)


def resolve_backend(name: str) -> str:
    """Map a backend request to a concrete backend name.

    ``auto`` picks the vectorized backend when NumPy is importable and the
    pure-Python one otherwise; asking for ``vectorized`` explicitly without
    NumPy is a configuration error rather than a silent fallback.
    """
    if name not in BACKEND_CHOICES:
        raise ConfigurationError(f"unknown backend {name!r}; expected one of {BACKEND_CHOICES}")
    if name == AUTO_BACKEND:
        return VECTORIZED_BACKEND if HAS_NUMPY else PYTHON_BACKEND
    if name == VECTORIZED_BACKEND and not HAS_NUMPY:
        raise ConfigurationError(
            "the vectorized backend requires numpy, which is not installed; "
            "install numpy or select backend='python'"
        )
    return name


def require_numpy() -> ModuleType:
    """Return the numpy module or raise a helpful error."""
    if np is None:  # pragma: no cover - exercised only without numpy
        raise ConfigurationError("this code path requires numpy, which is not installed")
    return np


class PeerIndex:
    """A bijection between peer identifiers and dense array positions.

    The id order given at construction *is* the array order, so callers
    control (and can keep deterministic) the layout of every derived vector
    and matrix.
    """

    __slots__ = ("ids", "_positions")

    def __init__(self, ids: Sequence[str]) -> None:
        self.ids: list[str] = list(ids)
        self._positions: dict[str, int] = {peer: position for position, peer in enumerate(self.ids)}
        if len(self._positions) != len(self.ids):
            raise ConfigurationError("peer ids must be unique")

    @classmethod
    def from_ids(cls, ids: Iterable[str], *, sort: bool = True) -> PeerIndex:
        return cls(sorted(ids) if sort else list(ids))

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._positions

    def position(self, peer_id: str) -> int:
        try:
            return self._positions[peer_id]
        except KeyError:
            raise ConfigurationError(f"unknown peer id {peer_id!r}") from None

    @property
    def position_map(self) -> dict[str, int]:
        """The live id→position mapping (insertion order = array order);
        treat as read-only."""
        return self._positions

    def positions(self, peer_ids: Iterable[str]) -> list[int]:
        lookup = self._positions
        return [lookup[peer_id] for peer_id in peer_ids]

    def permutation(self, ids: Sequence[str]) -> np.ndarray:
        """Dense positions of ``ids`` as an array; unknown ids map to -1.

        Pairs with interned code columns: translating a million-report code
        column costs one permutation build over the (small) id universe plus
        one vectorized gather, instead of a dict lookup per report.
        """
        numpy = require_numpy()
        lookup = self._positions
        return numpy.fromiter(
            (lookup.get(peer_id, -1) for peer_id in ids),
            dtype=numpy.intp,
            count=len(ids),
        )

    def vector_to_dict(self, values: Iterable[float]) -> dict[str, float]:
        """Zip a dense vector back into an id-keyed mapping (array order)."""
        return {peer: float(value) for peer, value in zip(self.ids, values, strict=True)}

    def dict_to_vector(self, mapping: Mapping[str, float], *, default: float = 0.0) -> np.ndarray:
        numpy = require_numpy()
        return numpy.array([mapping.get(peer, default) for peer in self.ids], dtype=float)


# -- reputation kernels -----------------------------------------------------


def local_trust_matrix(
    n: int,
    rater_positions: ArrayLike,
    subject_positions: ArrayLike,
    deltas: ArrayLike,
) -> TrustMatrix:
    """Row-normalized local trust ``C`` from pairwise feedback deltas.

    Mirrors :meth:`LocalTrustBuilder.normalized_local_trust`: raw pairwise
    totals are clipped at zero, then each row is normalized to sum to one;
    rows without positive evidence stay all-zero (dangling) and are handled
    by :func:`power_iteration`'s restart redistribution.

    Returns a CSR matrix when scipy is available and the population is
    large (the trust graph is a few percent dense at realistic peer counts,
    so sparse storage keeps both the build and every matrix-vector product
    O(nnz)); below :data:`DENSE_TRUST_THRESHOLD` peers — or without scipy —
    a dense array via :func:`dense_local_trust_matrix`, where the fixed CSR
    dispatch overhead would dominate.  Same values either way.
    """
    numpy = require_numpy()
    if sparse is None or n < DENSE_TRUST_THRESHOLD:
        return dense_local_trust_matrix(n, rater_positions, subject_positions, deltas)
    rater_positions = numpy.asarray(rater_positions, dtype=numpy.intp)
    subject_positions = numpy.asarray(subject_positions, dtype=numpy.intp)
    deltas = numpy.asarray(deltas, dtype=float)
    raw = sparse.coo_matrix(
        (deltas, (rater_positions, subject_positions)), shape=(n, n)
    ).tocsr()  # tocsr() sums duplicate (rater, subject) entries
    numpy.maximum(raw.data, 0.0, out=raw.data)
    raw.eliminate_zeros()
    row_sums = numpy.asarray(raw.sum(axis=1)).ravel()
    scale = numpy.where(row_sums > 0.0, row_sums, 1.0)
    raw.data /= numpy.repeat(scale, numpy.diff(raw.indptr))
    return raw


def dense_local_trust_matrix(
    n: int,
    rater_positions: ArrayLike,
    subject_positions: ArrayLike,
    deltas: ArrayLike,
) -> np.ndarray:
    """The dense fallback of :func:`local_trust_matrix` (no scipy needed).

    The scatter-add goes through ``bincount`` on flattened ``(rater,
    subject)`` positions, which is far faster than ``np.add.at``.
    """
    numpy = require_numpy()
    rater_positions = numpy.asarray(rater_positions, dtype=numpy.intp)
    if rater_positions.size:
        subject_positions = numpy.asarray(subject_positions, dtype=numpy.intp)
        flat = rater_positions * n + subject_positions
        raw = numpy.bincount(
            flat, weights=numpy.asarray(deltas, dtype=float), minlength=n * n
        ).reshape(n, n)
    else:
        raw = numpy.zeros((n, n), dtype=float)
    return normalize_dense_raw(raw, copy=False)


def normalize_dense_raw(raw: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Clip-at-zero and row-normalize a dense signed pairwise-total matrix.

    The shared tail of every dense local-trust build — per-report scatter,
    pair-ledger scatter, or the incrementally maintained raw matrix — so
    all of them produce bitwise-identical ``C``.  ``copy=True`` leaves the
    input untouched (required for cached raw matrices).
    """
    numpy = require_numpy()
    if copy:
        clipped = numpy.maximum(raw, 0.0)
    else:
        clipped = raw
        numpy.maximum(clipped, 0.0, out=clipped)
    row_sums = clipped.sum(axis=1)
    nonzero = row_sums > 0.0
    clipped[nonzero] /= row_sums[nonzero, None]
    return clipped


def local_trust_matrix_from_columns(columns: FeedbackColumns, index: PeerIndex) -> TrustMatrix:
    """Dense local trust straight from interned feedback columns.

    ``columns`` is a :class:`repro.reputation.gathering.FeedbackColumns`;
    anonymous reports (rater code -1) and peers outside ``index`` are
    dropped, exactly as the dict-based builder ignores them.
    """
    numpy = require_numpy()
    perm = index.permutation(columns.id_for_code)
    rater_codes = numpy.asarray(columns.rater_codes, dtype=numpy.intp)
    identified = rater_codes >= 0
    rater_positions = perm[rater_codes[identified]]
    subject_positions = perm[numpy.asarray(columns.subject_codes, dtype=numpy.intp)[identified]]
    known = (rater_positions >= 0) & (subject_positions >= 0)
    deltas = numpy.where(numpy.asarray(columns.positives, dtype=bool)[identified][known], 1.0, -1.0)
    return local_trust_matrix(len(index), rater_positions[known], subject_positions[known], deltas)


def power_iteration(
    matrix: TrustMatrix,
    restart: ArrayLike,
    *,
    restart_weight: float,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, int]:
    """Damped power iteration ``t ← (1 − a)·(Cᵀ t + dangling·p) + a·p``.

    ``matrix`` is the row-stochastic local trust ``C`` (all-zero rows are
    dangling peers), dense or CSR-sparse; ``restart`` is the restart
    distribution ``p``.  Returns ``(stationary vector, iterations used)``.

    On the sparse path dangling mass is accumulated once per iteration and
    redistributed over ``p`` — the same algebra the pure-Python loop
    performs peer by peer.  On the dense (small-``n``) path the dangling
    redistribution *and* the damping factor are folded into one iteration
    matrix ``M = (1 − a)·(Cᵀ + p·dᵀ)`` up front, so each of the ~100
    iterations per refresh is a single matmul plus one add instead of eight
    dispatched array ops; the re-association shifts results by float
    round-off only, which the publication grid absorbs like any other
    backend noise.
    """
    numpy = require_numpy()
    restart = numpy.asarray(restart, dtype=float)
    trust = restart.copy()
    iterations = 0
    if sparse is not None and sparse.issparse(matrix):
        dangling = numpy.asarray(matrix.sum(axis=1)).ravel() <= 0.0
        transposed = matrix.T.tocsr()
        any_dangling = bool(dangling.any())
        for _ in range(max_iterations):
            iterations += 1
            updated = transposed @ trust
            if any_dangling:
                dangling_mass = float(trust[dangling].sum())
                updated += dangling_mass * restart
            blended = (1.0 - restart_weight) * updated + restart_weight * restart
            delta = float(numpy.abs(blended - trust).sum())
            trust = blended
            if delta < tolerance:
                break
        return trust, iterations
    matrix = numpy.asarray(matrix, dtype=float)
    dangling = matrix.sum(axis=1) <= 0.0
    iteration_matrix = numpy.ascontiguousarray(
        (1.0 - restart_weight)
        * (matrix.T + numpy.outer(restart, dangling.astype(float)))
    )
    restart_mass = restart_weight * restart
    absolute = numpy.abs
    for _ in range(max_iterations):
        iterations += 1
        blended = iteration_matrix @ trust
        blended += restart_mass
        delta = float(absolute(blended - trust).sum())
        trust = blended
        if delta < tolerance:
            break
    return trust, iterations


def minmax_rescale(values: ArrayLike) -> np.ndarray:
    """Min-max rescale a vector into ``[0, 1]``; flat vectors map to 0.5."""
    numpy = require_numpy()
    values = numpy.asarray(values, dtype=float)
    low = float(values.min())
    high = float(values.max())
    if high - low < FLAT_SPREAD:
        return numpy.full_like(values, 0.5)
    return numpy.clip((values - low) / (high - low), 0.0, 1.0)


def subject_positions_from_columns(columns: FeedbackColumns, index: PeerIndex) -> np.ndarray:
    """Dense index positions of every report's subject, via interned codes.

    The shared preamble of the subject-keyed score kernels (Beta, simple
    average): one permutation over the columns' id universe plus one gather
    over the code column.
    """
    numpy = require_numpy()
    return index.permutation(columns.id_for_code)[
        numpy.asarray(columns.subject_codes, dtype=numpy.intp)
    ]


def minmax_rescale_dict(trust: dict[str, float]) -> dict[str, float]:
    """Pure-Python twin of :func:`minmax_rescale` over an id-keyed mapping.

    The single source of the flat-maps-to-0.5 / clamp((v-low)/spread) rule
    both power-iteration mechanisms publish through; works without numpy.
    """
    if not trust:
        return {}
    low = min(trust.values())
    high = max(trust.values())
    if high - low < FLAT_SPREAD:
        return {peer: 0.5 for peer in trust}
    spread = high - low
    return {peer: min(1.0, max(0.0, (value - low) / spread)) for peer, value in trust.items()}


def mean_scores(subject_positions: ArrayLike, ratings: ArrayLike, n_subjects: int) -> np.ndarray:
    """Per-subject mean rating (the simple-average mechanism's kernel)."""
    numpy = require_numpy()
    positions = numpy.asarray(subject_positions, dtype=numpy.intp)
    ratings = numpy.asarray(ratings, dtype=float)
    sums = numpy.bincount(positions, weights=ratings, minlength=n_subjects)
    counts = numpy.bincount(positions, minlength=n_subjects)
    return sums / numpy.maximum(counts, 1)


def beta_scores(
    subject_positions: ArrayLike,
    times: ArrayLike,
    positives: ArrayLike,
    *,
    forgetting: float,
    n_subjects: int,
) -> np.ndarray:
    """Beta-posterior expected values with exponential forgetting.

    ``α = 1 + Σ forgetting^(latest_subject − t)`` over positive reports,
    ``β`` likewise over negative ones — the vector twin of
    :meth:`BetaReputation.compute_scores`.
    """
    numpy = require_numpy()
    positions = numpy.asarray(subject_positions, dtype=numpy.intp)
    times = numpy.asarray(times, dtype=float)
    positives = numpy.asarray(positives, dtype=bool)
    latest = numpy.full(n_subjects, -numpy.inf)
    numpy.maximum.at(latest, positions, times)
    weights = numpy.power(float(forgetting), latest[positions] - times)
    alpha = numpy.ones(n_subjects, dtype=float)
    beta = numpy.ones(n_subjects, dtype=float)
    numpy.add.at(alpha, positions[positives], weights[positives])
    numpy.add.at(beta, positions[~positives], weights[~positives])
    return alpha / (alpha + beta)


# -- coupling kernels -------------------------------------------------------

#: Column layout of coupling state arrays; must match
#: :data:`repro.core.coupling.STATE_VARIABLES`.
COUPLING_LAYOUT = (
    "trust",
    "satisfaction",
    "reputation_efficiency",
    "disclosure",
    "honest_contribution",
    "privacy_satisfaction",
)


def coupling_step(
    state: ArrayLike,
    *,
    sharing_level: float,
    mechanism_power: float,
    policy_respect: float,
    trustworthy_fraction: float,
    damping: float,
    privacy_weight: float,
    reputation_weight: float,
    satisfaction_weight: float,
) -> np.ndarray:
    """One damped update of the Section-3 couplings on a ``(..., 6)`` array.

    The expressions mirror :class:`CouplingDynamics`' pure-Python targets
    term by term (same operand order), so a single-state step is bitwise
    identical to the fallback; the payoff is that the leading axes batch
    arbitrarily many states through one pass.
    """
    numpy = require_numpy()
    state = numpy.asarray(state, dtype=float)
    trust = state[..., 0]
    satisfaction = state[..., 1]
    reputation_efficiency = state[..., 2]
    disclosure = state[..., 3]
    honest_contribution = state[..., 4]
    privacy_satisfaction = state[..., 5]

    privacy_target = numpy.clip(policy_respect * (1.0 - 0.6 * disclosure), 0.0, 1.0)
    reputation_target = numpy.clip(
        mechanism_power * (disclosure * (0.4 + 0.6 * honest_contribution)),
        0.0,
        1.0,
    )
    satisfaction_target = numpy.clip(
        0.35 * trust + 0.35 * reputation_efficiency + 0.30 * privacy_satisfaction,
        0.0,
        1.0,
    )
    effective_reputation = reputation_efficiency * trustworthy_fraction
    total = privacy_weight + reputation_weight + satisfaction_weight
    trust_target = numpy.clip(
        (
            privacy_weight * privacy_satisfaction
            + reputation_weight * effective_reputation
            + satisfaction_weight * satisfaction
        )
        / total,
        0.0,
        1.0,
    )
    disclosure_target = numpy.clip(sharing_level * (0.2 + 0.8 * trust), 0.0, 1.0)
    honest_target = numpy.clip(0.3 + 0.7 * trust, 0.0, 1.0)

    targets = numpy.stack(
        [
            trust_target,
            satisfaction_target,
            reputation_target,
            disclosure_target,
            honest_target,
            privacy_target,
        ],
        axis=-1,
    )
    return numpy.clip((1.0 - damping) * state + damping * targets, 0.0, 1.0)


def coupling_run(
    initial: ArrayLike,
    *,
    steps: int,
    tolerance: float,
    **params: float,
) -> np.ndarray:
    """Iterate one coupling state to convergence; returns the ``(T, 6)`` path."""
    numpy = require_numpy()
    state = numpy.asarray(initial, dtype=float)
    trajectory = [state]
    for _ in range(steps):
        next_state = coupling_step(state, **params)
        trajectory.append(next_state)
        if float(numpy.max(numpy.abs(next_state - state))) < tolerance:
            break
        state = next_state
    return numpy.stack(trajectory, axis=0)


def coupling_equilibria(
    initials: ArrayLike,
    *,
    steps: int,
    tolerance: float,
    **params: float,
) -> np.ndarray:
    """Evolve a batch of states to their per-trajectory fixed points.

    Equivalent to calling :func:`coupling_run` on each row and keeping the
    final state, but all still-active trajectories advance through one
    batched :func:`coupling_step` per iteration.  Converged rows freeze and
    drop out of the batch (``params`` must therefore be scalars, which is
    what :class:`CouplingDynamics` provides), so each row's result matches
    its standalone trajectory exactly and a lone straggler does not keep
    paying for the whole batch.
    """
    numpy = require_numpy()
    state = numpy.array(initials, dtype=float, copy=True)
    if state.ndim != 2 or state.shape[1] != len(COUPLING_LAYOUT):
        raise ConfigurationError(f"initials must have shape (m, {len(COUPLING_LAYOUT)})")
    active = numpy.arange(state.shape[0])
    for _ in range(steps):
        if not active.size:
            break
        subset = state[active]
        stepped = coupling_step(subset, **params)
        state[active] = stepped
        moved = numpy.max(numpy.abs(stepped - subset), axis=-1)
        active = active[moved >= tolerance]
    return state


# -- simulation kernels -----------------------------------------------------


def interaction_counts(
    activities: ArrayLike, interactions_per_peer: float, draws: ArrayLike
) -> np.ndarray:
    """Per-peer interaction counts from one uniform draw per peer.

    Mirrors the scalar rule ``int(e) + (draw < e - int(e))`` with
    ``e = activity · interactions_per_peer``; the comparison and floor are
    bitwise identical to the per-peer Python arithmetic.
    """
    numpy = require_numpy()
    expected = numpy.asarray(activities, dtype=float) * interactions_per_peer
    base = numpy.floor(expected)
    bonus = numpy.asarray(draws, dtype=float) < (expected - base)
    return (base + bonus).astype(numpy.intp)


def lexicographic_argmax(primary: ArrayLike, tiebreak: ArrayLike) -> int:
    """Index of the maximum by ``(primary, tiebreak)`` — vectorized twin of
    sorting score/jitter pairs descending and taking the head."""
    numpy = require_numpy()
    order = numpy.lexsort(
        (numpy.asarray(tiebreak, dtype=float), numpy.asarray(primary, dtype=float))
    )
    return int(order[-1])


__all__ = [
    "AUTO_BACKEND",
    "BACKEND_CHOICES",
    "COUPLING_LAYOUT",
    "DENSE_TRUST_THRESHOLD",
    "FLAT_SPREAD",
    "HAS_NUMPY",
    "PYTHON_BACKEND",
    "PeerIndex",
    "VECTORIZED_BACKEND",
    "available_backends",
    "beta_scores",
    "HAS_SCIPY",
    "coupling_equilibria",
    "coupling_run",
    "coupling_step",
    "dense_local_trust_matrix",
    "interaction_counts",
    "lexicographic_argmax",
    "local_trust_matrix",
    "local_trust_matrix_from_columns",
    "mean_scores",
    "minmax_rescale",
    "normalize_dense_raw",
    "minmax_rescale_dict",
    "power_iteration",
    "require_numpy",
    "resolve_backend",
    "subject_positions_from_columns",
]

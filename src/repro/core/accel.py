"""Acceleration switches for the end-to-end pipeline.

The execution layers added for pipeline acceleration — incremental
reputation refresh, shared scenario setup, per-worker scenario-run
memoization — are all *pure* with respect to published results: enabling or
disabling any of them must never change a record byte.  That contract is
what makes a single global switchboard safe, and the switchboard is what
makes the contract testable: benchmarks and property tests flip the flags
and assert byte-identical output, and ``benchmarks/bench_end_to_end.py``
measures the cold (all off) versus accelerated (defaults) pipeline with the
same binary.

Flags
-----
``incremental_refresh``
    Mechanisms fold only newly appended feedback into their score state
    instead of rescanning the whole :class:`FeedbackStore` per refresh.
    Default on.
``setup_cache``
    Social-network generation, scenario graph setup and directory plans are
    cached by specification and reused across (scenario × mechanism) cells
    and sweep tasks.  Default on.
``run_cache``
    Whole scenario *simulations* are memoized per process so sweep points
    that differ only in post-simulation metric knobs (detection thresholds)
    re-evaluate the cached trace instead of re-simulating.  Default off —
    sweep workers opt in, interactive sessions keep fresh runs.

The environment variable ``REPRO_ACCEL`` seeds the initial state (it is read
once at import, so forked sweep workers inherit whatever the parent set):
a comma-separated list of ``off`` (master kill switch), ``on``,
``no-incremental``, ``no-setup-cache``, ``run-cache`` or ``no-run-cache``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from collections.abc import Iterator

from repro.errors import ConfigurationError

#: Recognized ``REPRO_ACCEL`` tokens mapped to flag updates.
_ENV_TOKENS = {
    "on": {},
    "off": {"disable_all": True},
    "incremental": {"incremental_refresh": True},
    "no-incremental": {"incremental_refresh": False},
    "setup-cache": {"setup_cache": True},
    "no-setup-cache": {"setup_cache": False},
    "run-cache": {"run_cache": True},
    "no-run-cache": {"run_cache": False},
}


@dataclass(frozen=True)
class AccelFlags:
    """The switchboard state; treat instances as immutable snapshots."""

    incremental_refresh: bool = True
    setup_cache: bool = True
    run_cache: bool = False
    #: Master kill switch: when set, every accessor reports everything off
    #: regardless of the individual flags (the cold-pipeline benchmark mode).
    disable_all: bool = False

    def effective(self) -> AccelFlags:
        """The flags as consumers should read them (kill switch applied)."""
        if not self.disable_all:
            return self
        return AccelFlags(
            incremental_refresh=False,
            setup_cache=False,
            run_cache=False,
            disable_all=True,
        )


def _from_env(value: str) -> tuple[AccelFlags, frozenset]:
    """Parse ``REPRO_ACCEL``: the flags plus which fields were set explicitly."""
    flags = AccelFlags()
    explicit = set()
    for raw_token in value.split(","):
        token = raw_token.strip().lower()
        if not token:
            continue
        try:
            updates = _ENV_TOKENS[token]
        except KeyError:
            raise ConfigurationError(
                f"unknown REPRO_ACCEL token {token!r}; expected one of {sorted(_ENV_TOKENS)}"
            ) from None
        flags = replace(flags, **updates)
        explicit.update(updates)
    return flags, frozenset(explicit)


_STATE: AccelFlags = _from_env(os.environ.get("REPRO_ACCEL", ""))[0]


def env_disabled(name: str) -> bool:
    """Whether the environment *explicitly* switched a flag off.

    Code that turns a flag on programmatically by default (sweep workers
    enable the run cache) consults this so an operator's explicit
    ``REPRO_ACCEL=no-run-cache`` opt-out is honoured rather than silently
    overridden.
    """
    env_flags, explicit = _from_env(os.environ.get("REPRO_ACCEL", ""))
    if env_flags.disable_all:
        return True
    return name in explicit and not getattr(env_flags, name)


def flags() -> AccelFlags:
    """The current effective acceleration flags."""
    return _STATE.effective()


def set_flags(**updates: bool) -> AccelFlags:
    """Permanently update flags (sweep worker initializers use this)."""
    global _STATE
    _STATE = replace(_STATE, **updates)
    return flags()


@contextmanager
def override(**updates: bool) -> Iterator[AccelFlags]:
    """Temporarily override flags; restores the previous state on exit."""
    global _STATE
    previous = _STATE
    _STATE = replace(_STATE, **updates)
    try:
        yield flags()
    finally:
        _STATE = previous


__all__ = ["AccelFlags", "env_disabled", "flags", "override", "set_flags"]

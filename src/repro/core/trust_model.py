"""The trust model: per-user and global trust towards the system.

Section 3: "each user of the system can have her own perception of the level
of trust she can have in the system.  But also, the system can be considered
globally as trusted or not."  The model therefore produces

* a **global** trust value — the composite metric applied to the global facet
  scores, and
* a **per-user** trust value — the same metric applied to that user's own
  facet perception (her privacy satisfaction, her view of the reputation
  mechanism, her local satisfaction).

It also implements the dissociation of the fourth Section-3 bullet: when the
reputation mechanism itself concludes that the majority of participants are
untrustworthy, users do not trust the system even though the mechanism is
accurate — the reputation facet is capped by the trustworthy fraction of the
population before aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro._util import clamp, mean
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator, CompositeTrustMetric


@dataclass(frozen=True)
class TrustReport:
    """The outcome of evaluating the trust model on a system state."""

    settings: SystemSettings
    facets: FacetScores
    global_trust: float
    per_user_trust: dict[str, float] = field(default_factory=dict)
    contributions: dict[str, float] = field(default_factory=dict)
    in_area_a: bool = False

    @property
    def mean_user_trust(self) -> float:
        if not self.per_user_trust:
            return self.global_trust
        return mean(self.per_user_trust.values())

    def limiting_facet(self) -> str:
        """The facet currently limiting trust the most."""
        if self.contributions:
            return max(self.contributions, key=lambda name: self.contributions[name])
        return self.facets.weakest_facet()


class TrustModel:
    """Combine facet scores into trust towards the system."""

    def __init__(
        self,
        settings: SystemSettings | None = None,
        *,
        aggregator: Aggregator = Aggregator.GEOMETRIC,
    ) -> None:
        self.settings = settings or SystemSettings()
        self.metric = CompositeTrustMetric(aggregator=aggregator, weights=self.settings.weights())

    # -- adjustments required by Section 3 -----------------------------------

    def effective_facets(
        self, facets: FacetScores, *, trustworthy_fraction: float | None = None
    ) -> FacetScores:
        """Apply the untrustworthy-majority dissociation (Section 3, bullet 4).

        An accurate reputation mechanism that mostly reports "untrustworthy"
        peers cannot, by itself, make users trust the system; the effective
        reputation facet is therefore capped by the trustworthy fraction of
        the population when that fraction is known.
        """
        if trustworthy_fraction is None:
            return facets
        capped_reputation = min(facets.reputation, clamp(trustworthy_fraction))
        return FacetScores(
            privacy=facets.privacy,
            reputation=capped_reputation,
            satisfaction=facets.satisfaction,
        )

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        facets: FacetScores,
        *,
        per_user_facets: Mapping[str, FacetScores] | None = None,
        trustworthy_fraction: float | None = None,
    ) -> TrustReport:
        """Evaluate global (and optionally per-user) trust."""
        effective = self.effective_facets(facets, trustworthy_fraction=trustworthy_fraction)
        global_trust = self.metric.trust(effective)
        per_user_trust = {}
        if per_user_facets:
            for user, user_facets in per_user_facets.items():
                user_effective = self.effective_facets(
                    user_facets, trustworthy_fraction=trustworthy_fraction
                )
                per_user_trust[user] = self.metric.trust(user_effective)
        return TrustReport(
            settings=self.settings,
            facets=effective,
            global_trust=global_trust,
            per_user_trust=per_user_trust,
            contributions=self.metric.contributions(effective),
            in_area_a=effective.meets(self.settings.area_a_threshold),
        )

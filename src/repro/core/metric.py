"""The generic composite trust metric.

Section 4: "our main objective is to define a generic metric that takes into
account all these dimensions and helps the designer to maximize the users'
trust towards the system while respecting the system/application constraints".

The paper does not fix the functional form, so the metric is a *family* of
aggregators over the three facet scores:

* ``WEIGHTED`` — weighted arithmetic mean: compensatory, a strong facet can
  make up for a weak one;
* ``GEOMETRIC`` — weighted geometric mean: partially compensatory, collapses
  to zero when any facet collapses;
* ``MINIMUM`` — worst facet: fully non-compensatory, trust is only as strong
  as the weakest dimension;
* ``OWA`` — ordered weighted averaging, putting configurable emphasis on the
  weaker facets without ignoring the stronger ones.

The ablation experiment E-A1 compares them; the default is the geometric
mean, which preserves the paper's intuition that all three facets are needed
(Area A) while still rewarding improvements in any of them.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro._util import clamp, normalize_weights
from repro.errors import ConfigurationError
from repro.core.facets import FacetScores


class Aggregator(enum.Enum):
    """Available aggregation semantics for the composite metric."""

    WEIGHTED = "weighted"
    GEOMETRIC = "geometric"
    MINIMUM = "minimum"
    OWA = "owa"


class CompositeTrustMetric:
    """Aggregate a :class:`FacetScores` into a trust value in ``[0, 1]``."""

    def __init__(
        self,
        *,
        aggregator: Aggregator = Aggregator.GEOMETRIC,
        weights: dict[str, float] | None = None,
        owa_weights: Sequence[float] | None = None,
    ) -> None:
        self.aggregator = aggregator
        raw_weights = weights or {"privacy": 1.0, "reputation": 1.0, "satisfaction": 1.0}
        missing = {"privacy", "reputation", "satisfaction"} - set(raw_weights)
        if missing:
            raise ConfigurationError(f"missing facet weights: {sorted(missing)}")
        names = ["privacy", "reputation", "satisfaction"]
        normalized = normalize_weights([raw_weights[name] for name in names])
        self.weights = dict(zip(names, normalized, strict=True))
        # OWA weights apply to facet values sorted ascending (weakest first);
        # the default emphasises the weakest facet without ignoring the rest.
        self.owa_weights = normalize_weights(list(owa_weights or (0.5, 0.3, 0.2)))
        if len(self.owa_weights) != 3:
            raise ConfigurationError("owa_weights must have exactly three entries")

    # -- aggregation -------------------------------------------------------

    def trust(self, facets: FacetScores) -> float:
        """The trust-towards-the-system value for one point of facet space."""
        values = facets.as_dict()
        if self.aggregator is Aggregator.WEIGHTED:
            result = sum(self.weights[name] * values[name] for name in values)
        elif self.aggregator is Aggregator.GEOMETRIC:
            result = 1.0
            for name, value in values.items():
                result *= max(value, 1e-9) ** self.weights[name]
        elif self.aggregator is Aggregator.MINIMUM:
            result = min(values.values())
        elif self.aggregator is Aggregator.OWA:
            ordered = sorted(values.values())
            result = sum(w * v for w, v in zip(self.owa_weights, ordered, strict=True))
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown aggregator {self.aggregator!r}")
        return clamp(result)

    def contributions(self, facets: FacetScores) -> dict[str, float]:
        """Marginal contribution of each facet: trust drop if that facet were zero.

        This is the designer-facing diagnostic the paper asks for ("helps the
        designer to maximize the users' trust"): it shows which dimension
        currently limits trust the most.
        """
        baseline = self.trust(facets)
        contributions = {}
        for name in ("privacy", "reputation", "satisfaction"):
            values = facets.as_dict()
            values[name] = 0.0
            degraded = FacetScores(**values)
            contributions[name] = clamp(baseline - self.trust(degraded))
        return contributions

    def describe(self) -> dict[str, object]:
        return {
            "aggregator": self.aggregator.value,
            "weights": dict(self.weights),
            "owa_weights": list(self.owa_weights),
        }

"""Facet scores: privacy, reputation and satisfaction in ``[0, 1]``.

Figure 2 (right) defines the three axes:

* **Privacy** — "the satisfaction in terms of privacy guarantees which can be
  the amount of information that it is not necessary to share within the
  system or the respect of privacy policies";
* **Reputation** — "the satisfaction of the reputation mechanism in terms of
  power as reliability, efficiency and most of all, consistency with the
  reality";
* **Satisfaction** — "the global users' satisfaction according to the first
  two axes".

:class:`FacetScores` is the value object the trust metric consumes; the three
``*_facet`` helpers compute each score from the measurements the substrates
produce (settings + disclosure ledger, reputation scores + ground truth,
satisfaction tracker).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro._util import clamp, require_unit_interval
from repro.privacy.disclosure import DisclosureLedger
from repro.privacy.metrics import (
    policy_respect_rate,
    population_privacy_satisfaction,
    privacy_guarantee_level,
)
from repro.reputation.accuracy import reputation_power
from repro.satisfaction.aggregate import global_satisfaction


@dataclass(frozen=True)
class FacetScores:
    """One point of the 3-facet space."""

    privacy: float
    reputation: float
    satisfaction: float

    def __post_init__(self) -> None:
        require_unit_interval(self.privacy, "privacy")
        require_unit_interval(self.reputation, "reputation")
        require_unit_interval(self.satisfaction, "satisfaction")

    def as_dict(self) -> dict[str, float]:
        return {
            "privacy": self.privacy,
            "reputation": self.reputation,
            "satisfaction": self.satisfaction,
        }

    def meets(self, threshold: float) -> bool:
        """Whether every facet reaches the threshold (the Area-A condition)."""
        require_unit_interval(threshold, "threshold")
        return (
            self.privacy >= threshold
            and self.reputation >= threshold
            and self.satisfaction >= threshold
        )

    def weakest_facet(self) -> str:
        scores = self.as_dict()
        return min(scores, key=lambda name: scores[name])


def privacy_facet(
    *,
    sharing_level: float,
    information_requirement: float,
    anonymous_feedback: bool = False,
    ledger: DisclosureLedger | None = None,
    privacy_concerns: Mapping[str, float] | None = None,
    guarantee_weight: float = 0.5,
) -> float:
    """Privacy facet: ex ante guarantees blended with measured outcomes.

    The guarantee part depends only on the settings (how little the system
    *requires* users to share); the measured part uses the disclosure ledger
    (what actually circulated and whether policies were respected).  When no
    ledger is available the guarantee part stands alone.
    """
    require_unit_interval(guarantee_weight, "guarantee_weight")
    guarantee = privacy_guarantee_level(
        sharing_level, information_requirement, anonymous_feedback=anonymous_feedback
    )
    if ledger is None or privacy_concerns is None:
        return guarantee
    measured = population_privacy_satisfaction(ledger, privacy_concerns)
    respect = policy_respect_rate(ledger)
    outcome = clamp(0.7 * measured + 0.3 * respect)
    return clamp(guarantee_weight * guarantee + (1.0 - guarantee_weight) * outcome)


def reputation_facet(
    scores: Mapping[str, float],
    ground_truth: Mapping[str, float],
    *,
    coverage_weight: float = 0.25,
) -> float:
    """Reputation facet: the mechanism's power (consistency with reality)."""
    return reputation_power(scores, ground_truth, coverage_weight=coverage_weight)


def satisfaction_facet(
    satisfactions: Mapping[str, float],
    *,
    weights: Mapping[str, float] | None = None,
    fairness_weight: float = 0.25,
) -> float:
    """Satisfaction facet: the global users' satisfaction."""
    return global_satisfaction(satisfactions, weights=weights, fairness_weight=fairness_weight)

"""The settings-tradeoff explorer: Figure 2 made executable.

Figure 2 (right) claims that privacy satisfaction and reputation power react
in opposite directions to the amount of shared information, that global
satisfaction is therefore maximized at an interior setting, and that "the
same global satisfaction can be reached by using different settings".
Figure 2 (left) calls the region where all three facets are simultaneously
acceptable "Area A", "a good tradeoff to attend a high level of trust towards
the system".

:class:`SettingsExplorer` sweeps :class:`~repro.core.config.SystemSettings`
(primarily the information-sharing level, optionally the mechanism and the
anonymity switch), evaluates the facet scores for each setting through a
pluggable evaluation function, and reports

* the full tradeoff curve (the Figure 2 right series),
* the Area-A subset (Figure 2 left),
* the trust-maximizing setting (the paper's stated objective), and
* iso-satisfaction setting pairs (the "different settings, same global
  satisfaction" observation).

Two facet evaluators are provided: :class:`AnalyticFacetModel`, a fast
closed-form response model whose shapes are calibrated to the simulation
substrates, and (in :mod:`repro.experiments.figure2_right`) a full
simulation-backed evaluator.  Benchmarks use the analytic model; experiments
report both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro._util import clamp, require_unit_interval
from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator
from repro.core.trust_model import TrustModel, TrustReport

#: Maps a settings assignment to the facet scores it induces.
FacetEvaluator = Callable[[SystemSettings], FacetScores]

#: Intrinsic power and information requirement of each mechanism, used by the
#: analytic model.  The values mirror the measured behaviour of the
#: implementations (EigenTrust/PowerTrust are the most accurate and the most
#: information hungry; the plain average is neither).
MECHANISM_PROFILES: dict[str, tuple[float, float]] = {
    "none": (0.0, 0.0),
    "average": (0.6, 0.2),
    "beta": (0.75, 0.3),
    "trustme": (0.7, 0.6),
    "eigentrust": (0.95, 0.9),
    "powertrust": (0.9, 0.85),
}


@dataclass(frozen=True)
class TradeoffPoint:
    """One evaluated setting: facets, trust and Area-A membership."""

    settings: SystemSettings
    facets: FacetScores
    trust: float
    in_area_a: bool

    @property
    def sharing_level(self) -> float:
        return self.settings.sharing_level


class AnalyticFacetModel:
    """Closed-form facet response to the system settings.

    * privacy decreases with the shared-information demand (sharing level ×
      mechanism information requirement, halved under anonymous feedback) and
      increases with policy strictness;
    * reputation power saturates with the evidence the mechanism receives
      (diminishing returns in the sharing level), is scaled by the
      mechanism's intrinsic power, and is dented by anonymity (identity-based
      weighting is lost) and by strict policies (less evidence available);
    * satisfaction follows the paper's reading of Figure 2: it is high when
      partner selection works (reputation power) *and* privacy expectations
      are met, so it peaks at an interior sharing level.
    """

    def __init__(
        self,
        *,
        privacy_concern: float = 0.6,
        evidence_rate: float = 4.0,
        mechanism_profiles: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        require_unit_interval(privacy_concern, "privacy_concern")
        if evidence_rate <= 0:
            raise ConfigurationError("evidence_rate must be positive")
        self.privacy_concern = privacy_concern
        self.evidence_rate = evidence_rate
        self.profiles = dict(mechanism_profiles or MECHANISM_PROFILES)

    def mechanism_profile(self, mechanism: str) -> tuple[float, float]:
        try:
            return self.profiles[mechanism]
        except KeyError:
            raise ConfigurationError(
                f"no profile for mechanism {mechanism!r}; known: {sorted(self.profiles)}"
            ) from None

    def __call__(self, settings: SystemSettings) -> FacetScores:
        power, info_requirement = self.mechanism_profile(settings.reputation_mechanism)
        sigma = settings.sharing_level

        demanded = sigma * info_requirement
        if settings.anonymous_feedback:
            demanded *= 0.5
        privacy = clamp(
            (1.0 - self.privacy_concern * demanded)
            * (0.7 + 0.3 * settings.policy_strictness)
        )

        evidence = sigma * (1.0 - 0.3 * settings.policy_strictness)
        reputation = power * (1.0 - math.exp(-self.evidence_rate * evidence))
        if settings.anonymous_feedback:
            reputation *= 0.85
        reputation = clamp(reputation)

        satisfaction = clamp(0.25 + 0.45 * reputation + 0.30 * privacy)
        return FacetScores(privacy=privacy, reputation=reputation, satisfaction=satisfaction)


class SettingsExplorer:
    """Sweep settings, evaluate facets and locate the good-tradeoff region."""

    def __init__(
        self,
        *,
        evaluator: FacetEvaluator | None = None,
        base_settings: SystemSettings | None = None,
        aggregator: Aggregator = Aggregator.GEOMETRIC,
    ) -> None:
        self.evaluator = evaluator or AnalyticFacetModel()
        self.base_settings = base_settings or SystemSettings()
        self.aggregator = aggregator

    # -- evaluation --------------------------------------------------------

    def evaluate(self, settings: SystemSettings) -> TradeoffPoint:
        facets = self.evaluator(settings)
        model = TrustModel(settings, aggregator=self.aggregator)
        report: TrustReport = model.evaluate(facets)
        return TradeoffPoint(
            settings=settings,
            facets=report.facets,
            trust=report.global_trust,
            in_area_a=report.in_area_a,
        )

    def sweep_sharing_levels(
        self, levels: Sequence[float] | None = None, *, resolution: int = 21
    ) -> list[TradeoffPoint]:
        """Evaluate the base settings across a grid of sharing levels."""
        if levels is None:
            if resolution < 2:
                raise ConfigurationError("resolution must be at least 2")
            levels = [index / (resolution - 1) for index in range(resolution)]
        return [self.evaluate(self.base_settings.with_sharing_level(level)) for level in levels]

    def sweep_settings(self, settings_list: Sequence[SystemSettings]) -> list[TradeoffPoint]:
        return [self.evaluate(settings) for settings in settings_list]

    # -- analyses of a sweep -----------------------------------------------

    @staticmethod
    def area_a(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
        """The subset of evaluated settings inside Area A."""
        return [point for point in points if point.in_area_a]

    @staticmethod
    def best(points: Sequence[TradeoffPoint]) -> TradeoffPoint:
        """The trust-maximizing point of a sweep."""
        if not points:
            raise ConfigurationError("cannot pick the best of an empty sweep")
        return max(points, key=lambda point: point.trust)

    @staticmethod
    def iso_satisfaction_pairs(
        points: Sequence[TradeoffPoint], *, tolerance: float = 0.02
    ) -> list[tuple[TradeoffPoint, TradeoffPoint]]:
        """Pairs of distinct settings reaching (almost) the same satisfaction.

        Reproduces the Figure-2 observation that "the same global satisfaction
        can be reached by using different settings".  Pairs must differ in
        their sharing level by more than the tolerance to be interesting.
        """
        pairs = []
        for i, first in enumerate(points):
            for second in points[i + 1:]:
                same_satisfaction = (
                    abs(first.facets.satisfaction - second.facets.satisfaction)
                    <= tolerance
                )
                different_setting = (
                    abs(first.sharing_level - second.sharing_level) > 5 * tolerance
                )
                if same_satisfaction and different_setting:
                    pairs.append((first, second))
        return pairs

    @staticmethod
    def pareto_front(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
        """Settings not dominated on (privacy, reputation, satisfaction)."""
        front = []
        for candidate in points:
            dominated = False
            for other in points:
                if other is candidate:
                    continue
                at_least_as_good = (
                    other.facets.privacy >= candidate.facets.privacy
                    and other.facets.reputation >= candidate.facets.reputation
                    and other.facets.satisfaction >= candidate.facets.satisfaction
                )
                strictly_better = (
                    other.facets.privacy > candidate.facets.privacy
                    or other.facets.reputation > candidate.facets.reputation
                    or other.facets.satisfaction > candidate.facets.satisfaction
                )
                if at_least_as_good and strictly_better:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return front

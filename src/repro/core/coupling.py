"""The Section-3 concept interactions as an explicit dynamical system.

The paper's Figure 1 draws arrows between satisfaction, reputation, privacy
and trust towards the system, and Section 3 spells out five couplings.  They
are implemented as a damped discrete dynamical system over the state

* ``trust`` — the users' trust towards the system;
* ``satisfaction`` — global users' satisfaction;
* ``reputation_efficiency`` — how well the reputation mechanism works;
* ``disclosure`` — how much information users disclose;
* ``honest_contribution`` — how honestly users feed the reputation mechanism;
* ``privacy_satisfaction`` — derived from disclosure and policy respect.

Update rules (each bullet of Section 3 maps to one term):

1. trust ↔ satisfaction reinforce each other;
2. reputation efficiency raises trust, and trust raises honest contribution;
3. reputation efficiency raises satisfaction, and satisfaction (through
   participation) raises reputation efficiency;
4. when the trustworthy fraction of the population is below one half, trust
   is capped regardless of how accurate the mechanism is (users keep
   contributing — honest contribution is not capped);
5. disclosure raises reputation efficiency, trust raises disclosure, and
   disclosure lowers privacy satisfaction while policy respect raises it.

:func:`coupling_matrix` turns the dynamics into the quantitative counterpart
of Figure 1: the signed sensitivity of every variable to a perturbation of
every other variable at equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro._util import clamp, require_unit_interval
from repro.core import backend as backend_kernels
from repro.core.backend import VECTORIZED_BACKEND, resolve_backend
from repro.errors import ConfigurationError

#: Variables a perturbation experiment can target.  The order doubles as the
#: column layout of the array kernels (:data:`repro.core.backend.COUPLING_LAYOUT`).
STATE_VARIABLES = (
    "trust",
    "satisfaction",
    "reputation_efficiency",
    "disclosure",
    "honest_contribution",
    "privacy_satisfaction",
)


def _state_to_vector(state: CouplingState) -> backend_kernels.np.ndarray:
    numpy = backend_kernels.require_numpy()
    return numpy.array([getattr(state, name) for name in STATE_VARIABLES], dtype=float)


def _state_from_vector(values: Sequence[float]) -> CouplingState:
    return CouplingState(**{name: float(value) for name, value in zip(STATE_VARIABLES, values, strict=True)})


@dataclass(frozen=True)
class CouplingState:
    """One point of the coupled system's state space (all values in [0, 1])."""

    trust: float = 0.5
    satisfaction: float = 0.5
    reputation_efficiency: float = 0.5
    disclosure: float = 0.5
    honest_contribution: float = 0.5
    privacy_satisfaction: float = 0.5

    def __post_init__(self) -> None:
        for name in STATE_VARIABLES:
            require_unit_interval(getattr(self, name), name)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in STATE_VARIABLES}

    def distance(self, other: CouplingState) -> float:
        return max(abs(getattr(self, name) - getattr(other, name)) for name in STATE_VARIABLES)


@dataclass
class CouplingDynamics:
    """Damped fixed-point iteration over the Section-3 couplings.

    Parameters
    ----------
    sharing_level:
        The system's information-sharing setting σ; scales how much users can
        disclose at most.
    mechanism_power:
        Intrinsic quality of the deployed reputation mechanism (its accuracy
        when fed full, honest evidence).
    policy_respect:
        Fraction of disclosures that honour privacy policies (1.0 = no
        breaches).
    trustworthy_fraction:
        Fraction of the population that is actually trustworthy; below 0.5
        the bullet-4 dissociation caps trust.
    damping:
        Step size of the fixed-point iteration (lower = smoother).
    """

    sharing_level: float = 0.8
    mechanism_power: float = 0.9
    policy_respect: float = 1.0
    trustworthy_fraction: float = 0.8
    damping: float = 0.3
    privacy_weight: float = 1.0
    reputation_weight: float = 1.0
    satisfaction_weight: float = 1.0
    #: Compute backend: "python" (reference loops), "vectorized" (NumPy
    #: kernels, bitwise identical on single trajectories, batched stepping
    #: for :meth:`equilibria`) or "auto" (vectorized when NumPy is there).
    backend: str = "auto"

    def __post_init__(self) -> None:
        require_unit_interval(self.sharing_level, "sharing_level")
        require_unit_interval(self.mechanism_power, "mechanism_power")
        require_unit_interval(self.policy_respect, "policy_respect")
        require_unit_interval(self.trustworthy_fraction, "trustworthy_fraction")
        require_unit_interval(self.damping, "damping")
        # repro-lint: ignore[R5] config sentinel: damping arrives by
        # assignment, not arithmetic, so the zero check is exact
        if self.damping == 0.0:
            raise ConfigurationError("damping must be positive for the state to move")
        resolve_backend(self.backend)  # fail fast on unknown backends

    @property
    def resolved_backend(self) -> str:
        return resolve_backend(self.backend)

    def _kernel_params(self) -> dict[str, float]:
        """The dynamics parameters in the form the array kernels take."""
        return {
            "sharing_level": self.sharing_level,
            "mechanism_power": self.mechanism_power,
            "policy_respect": self.policy_respect,
            "trustworthy_fraction": self.trustworthy_fraction,
            "damping": self.damping,
            "privacy_weight": self.privacy_weight,
            "reputation_weight": self.reputation_weight,
            "satisfaction_weight": self.satisfaction_weight,
        }

    # -- targets (the couplings themselves) ---------------------------------

    def _privacy_satisfaction_target(self, state: CouplingState) -> float:
        # Bullet 5: more disclosure erodes privacy satisfaction; respect of
        # policies sustains it.
        return clamp(self.policy_respect * (1.0 - 0.6 * state.disclosure))

    def _reputation_efficiency_target(self, state: CouplingState) -> float:
        # Bullets 3 and 5: the mechanism is efficient when it receives much
        # (disclosure) honest (honest_contribution) evidence.
        evidence = state.disclosure * (0.4 + 0.6 * state.honest_contribution)
        return clamp(self.mechanism_power * evidence)

    def _satisfaction_target(self, state: CouplingState) -> float:
        # Bullets 1, 3 and 5: satisfaction grows with trust, with reputation
        # efficiency (better partner choices) and with privacy satisfaction.
        return clamp(
            0.35 * state.trust
            + 0.35 * state.reputation_efficiency
            + 0.30 * state.privacy_satisfaction
        )

    def _trust_target(self, state: CouplingState) -> float:
        # The composite trust of the three facets (weighted mean keeps the
        # dynamics smooth); bullet 4 discounts the reputation contribution by
        # the trustworthy fraction of the population: an accurate mechanism
        # reporting that most peers are untrustworthy does not make the
        # system trustworthy.
        effective_reputation = state.reputation_efficiency * self.trustworthy_fraction
        total = self.privacy_weight + self.reputation_weight + self.satisfaction_weight
        return clamp(
            (
                self.privacy_weight * state.privacy_satisfaction
                + self.reputation_weight * effective_reputation
                + self.satisfaction_weight * state.satisfaction
            )
            / total
        )

    def _disclosure_target(self, state: CouplingState) -> float:
        # Bullet 5: the less a user trusts the system, the less she discloses.
        return clamp(self.sharing_level * (0.2 + 0.8 * state.trust))

    def _honest_contribution_target(self, state: CouplingState) -> float:
        # Bullet 2: the more a user trusts the system, the more honestly she
        # contributes; even distrusting users keep contributing somewhat
        # (bullet 4 observes contribution continues).
        return clamp(0.3 + 0.7 * state.trust)

    # -- iteration -------------------------------------------------------------

    def step(self, state: CouplingState) -> CouplingState:
        """One damped update of every state variable."""
        targets = {
            "privacy_satisfaction": self._privacy_satisfaction_target(state),
            "reputation_efficiency": self._reputation_efficiency_target(state),
            "satisfaction": self._satisfaction_target(state),
            "trust": self._trust_target(state),
            "disclosure": self._disclosure_target(state),
            "honest_contribution": self._honest_contribution_target(state),
        }
        updated = {
            name: clamp(
                (1.0 - self.damping) * getattr(state, name) + self.damping * target
            )
            for name, target in targets.items()
        }
        return CouplingState(**updated)

    def run(
        self,
        initial: CouplingState | None = None,
        *,
        steps: int = 200,
        tolerance: float = 1e-6,
    ) -> list[CouplingState]:
        """Iterate until convergence (or the step budget) and return the trajectory.

        The vectorized backend runs the same damped update as an array
        kernel (:func:`repro.core.backend.coupling_run`); its expressions
        mirror :meth:`step` operand by operand, so both backends produce
        bitwise-identical trajectories.
        """
        if steps < 1:
            raise ConfigurationError("steps must be at least 1")
        state = initial or CouplingState()
        if self.resolved_backend == VECTORIZED_BACKEND:
            path = backend_kernels.coupling_run(
                _state_to_vector(state),
                steps=steps,
                tolerance=tolerance,
                **self._kernel_params(),
            )
            return [_state_from_vector(row) for row in path]
        trajectory = [state]
        for _ in range(steps):
            next_state = self.step(state)
            trajectory.append(next_state)
            if next_state.distance(state) < tolerance:
                break
            state = next_state
        return trajectory

    def equilibrium(
        self, initial: CouplingState | None = None, *, steps: int = 500
    ) -> CouplingState:
        """The state the dynamics converge to from ``initial``."""
        return self.run(initial, steps=steps)[-1]

    def equilibria(
        self,
        initials: Sequence[CouplingState],
        *,
        steps: int = 500,
        tolerance: float = 1e-6,
    ) -> list[CouplingState]:
        """Fixed points reached from many initial states.

        Equivalent to ``[self.equilibrium(s) for s in initials]`` but the
        vectorized backend advances every still-unconverged trajectory
        through one batched kernel step per iteration — the batch form the
        perturbation experiments and settings sweeps are built on.
        """
        if steps < 1:
            raise ConfigurationError("steps must be at least 1")
        if not initials:
            return []
        if self.resolved_backend == VECTORIZED_BACKEND:
            numpy = backend_kernels.require_numpy()
            batch = numpy.stack([_state_to_vector(state) for state in initials])
            final = backend_kernels.coupling_equilibria(
                batch, steps=steps, tolerance=tolerance, **self._kernel_params()
            )
            return [_state_from_vector(row) for row in final]
        return [self.run(state, steps=steps, tolerance=tolerance)[-1] for state in initials]


def coupling_matrix(
    dynamics: CouplingDynamics,
    *,
    perturbation: float = 0.2,
    response_steps: int = 5,
) -> dict[str, dict[str, float]]:
    """Signed sensitivities reproducing the arrows of Figure 1.

    For every source variable, the equilibrium is perturbed upwards by
    ``perturbation`` (clamped), the dynamics run for ``response_steps`` and
    the change of every other variable is recorded.  A positive entry
    ``matrix[source][target]`` means "more *source* leads to more *target*"
    — e.g. ``matrix['satisfaction']['trust'] > 0`` is the first bullet.
    """
    require_unit_interval(perturbation, "perturbation")
    equilibrium = dynamics.equilibrium()

    deltas: dict[str, float] = {}
    perturbed_states: list[CouplingState] = []
    for source in STATE_VARIABLES:
        perturbed_value = clamp(getattr(equilibrium, source) + perturbation)
        deltas[source] = perturbed_value - getattr(equilibrium, source)
        perturbed_states.append(replace(equilibrium, **{source: perturbed_value}))

    if dynamics.resolved_backend == VECTORIZED_BACKEND:
        # One batched kernel step advances all six perturbation responses at
        # once; element-wise it is the same arithmetic as the scalar loop.
        numpy = backend_kernels.require_numpy()
        batch = numpy.stack([_state_to_vector(state) for state in perturbed_states])
        for _ in range(response_steps):
            batch = backend_kernels.coupling_step(batch, **dynamics._kernel_params())
        responses_states = [_state_from_vector(row) for row in batch]
    else:
        responses_states = []
        for state in perturbed_states:
            for _ in range(response_steps):
                state = dynamics.step(state)
            responses_states.append(state)

    matrix: dict[str, dict[str, float]] = {}
    for source, state in zip(STATE_VARIABLES, responses_states, strict=True):
        actual_delta = deltas[source]
        responses = {}
        for target in STATE_VARIABLES:
            if target == source:
                continue
            if abs(actual_delta) < 1e-12:
                responses[target] = 0.0
            else:
                responses[target] = (
                    getattr(state, target) - getattr(equilibrium, target)
                ) / actual_delta
        matrix[source] = responses
    return matrix

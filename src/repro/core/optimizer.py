"""The settings optimizer: the paper's Section-4 objective, automated.

"The main aim of our study is to find a method to obtain the right settings
in order to maximize the user's trust towards the system" — under the
system/application constraints.  :class:`TrustOptimizer` implements that
method over the discrete+continuous settings space the library exposes:

* the information-sharing level (continuous, searched on a refining grid),
* the deployed reputation mechanism (categorical),
* anonymous versus identified feedback (boolean),
* the default policy strictness (continuous, refining grid).

Constraints are expressed as minimum facet levels (e.g. "privacy must stay
above 0.6 whatever happens"), which generalizes the Area-A threshold to
per-facet application requirements.  The optimizer is evaluator-agnostic: by
default it uses the fast :class:`~repro.core.tradeoff.AnalyticFacetModel`,
but any ``SystemSettings -> FacetScores`` callable (including the full
simulation-backed evaluator) can be plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro._util import require_unit_interval
from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator
from repro.core.tradeoff import AnalyticFacetModel, FacetEvaluator, TradeoffPoint
from repro.core.trust_model import TrustModel

#: Mechanisms explored by default (everything but "none", which can never
#: satisfy a reputation constraint).
DEFAULT_MECHANISM_CHOICES = ("average", "beta", "trustme", "eigentrust", "powertrust")


@dataclass(frozen=True)
class FacetConstraints:
    """Minimum acceptable level per facet (application requirements)."""

    min_privacy: float = 0.0
    min_reputation: float = 0.0
    min_satisfaction: float = 0.0

    def __post_init__(self) -> None:
        require_unit_interval(self.min_privacy, "min_privacy")
        require_unit_interval(self.min_reputation, "min_reputation")
        require_unit_interval(self.min_satisfaction, "min_satisfaction")

    def satisfied_by(self, facets: FacetScores) -> bool:
        return (
            facets.privacy >= self.min_privacy
            and facets.reputation >= self.min_reputation
            and facets.satisfaction >= self.min_satisfaction
        )

    def violations(self, facets: FacetScores) -> list[str]:
        """Names of the facets whose constraint is violated."""
        violated = []
        if facets.privacy < self.min_privacy:
            violated.append("privacy")
        if facets.reputation < self.min_reputation:
            violated.append("reputation")
        if facets.satisfaction < self.min_satisfaction:
            violated.append("satisfaction")
        return violated


@dataclass
class OptimizationResult:
    """Outcome of a settings search."""

    best: TradeoffPoint | None
    feasible: list[TradeoffPoint]
    evaluated: int
    constraints: FacetConstraints
    trace: list[TradeoffPoint] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best is not None

    def best_settings(self) -> SystemSettings:
        if self.best is None:
            raise ConfigurationError("no feasible setting was found")
        return self.best.settings

    def summary(self) -> dict[str, object]:
        """A plain-dictionary summary for reports."""
        if self.best is None:
            return {"found": False, "evaluated": self.evaluated}
        return {
            "found": True,
            "evaluated": self.evaluated,
            "trust": self.best.trust,
            "sharing_level": self.best.settings.sharing_level,
            "reputation_mechanism": self.best.settings.reputation_mechanism,
            "anonymous_feedback": self.best.settings.anonymous_feedback,
            "policy_strictness": self.best.settings.policy_strictness,
            "facets": self.best.facets.as_dict(),
        }


class TrustOptimizer:
    """Grid-and-refine search for the trust-maximizing system settings."""

    def __init__(
        self,
        *,
        evaluator: FacetEvaluator | None = None,
        base_settings: SystemSettings | None = None,
        aggregator: Aggregator = Aggregator.GEOMETRIC,
        mechanisms: Sequence[str] = DEFAULT_MECHANISM_CHOICES,
        allow_anonymous: bool = True,
        coarse_resolution: int = 6,
        refine_rounds: int = 2,
        refine_resolution: int = 5,
    ) -> None:
        if coarse_resolution < 2 or refine_resolution < 2:
            raise ConfigurationError("grid resolutions must be at least 2")
        if refine_rounds < 0:
            raise ConfigurationError("refine_rounds must be non-negative")
        if not mechanisms:
            raise ConfigurationError("at least one mechanism must be allowed")
        self.evaluator = evaluator or AnalyticFacetModel()
        self.base_settings = base_settings or SystemSettings()
        self.aggregator = aggregator
        self.mechanisms = tuple(mechanisms)
        self.allow_anonymous = allow_anonymous
        self.coarse_resolution = coarse_resolution
        self.refine_rounds = refine_rounds
        self.refine_resolution = refine_resolution

    # -- evaluation ----------------------------------------------------------

    def _evaluate(self, settings: SystemSettings) -> TradeoffPoint:
        facets = self.evaluator(settings)
        model = TrustModel(settings, aggregator=self.aggregator)
        report = model.evaluate(facets)
        return TradeoffPoint(
            settings=settings,
            facets=report.facets,
            trust=report.global_trust,
            in_area_a=report.in_area_a,
        )

    @staticmethod
    def _grid(low: float, high: float, resolution: int) -> list[float]:
        if resolution == 1:
            return [low]
        step = (high - low) / (resolution - 1)
        return [low + index * step for index in range(resolution)]

    def _candidate_settings(
        self, sharing_levels: Sequence[float], strictness_levels: Sequence[float]
    ) -> list[SystemSettings]:
        anonymity_choices = (False, True) if self.allow_anonymous else (False,)
        candidates = []
        for mechanism in self.mechanisms:
            for anonymous in anonymity_choices:
                for sharing in sharing_levels:
                    for strictness in strictness_levels:
                        candidates.append(
                            replace(
                                self.base_settings,
                                reputation_mechanism=mechanism,
                                anonymous_feedback=anonymous,
                                sharing_level=round(sharing, 6),
                                policy_strictness=round(strictness, 6),
                            )
                        )
        return candidates

    # -- search ----------------------------------------------------------------

    def optimize(
        self, constraints: FacetConstraints | None = None
    ) -> OptimizationResult:
        """Search the settings space and return the best feasible point."""
        constraints = constraints or FacetConstraints()
        trace: list[TradeoffPoint] = []
        feasible: list[TradeoffPoint] = []

        sharing_window: tuple[float, float] = (0.0, 1.0)
        strictness_window: tuple[float, float] = (0.0, 1.0)
        best: TradeoffPoint | None = None

        for round_index in range(self.refine_rounds + 1):
            resolution = self.coarse_resolution if round_index == 0 else self.refine_resolution
            sharing_levels = self._grid(*sharing_window, resolution)
            strictness_levels = self._grid(*strictness_window, resolution)
            for settings in self._candidate_settings(sharing_levels, strictness_levels):
                point = self._evaluate(settings)
                trace.append(point)
                if not constraints.satisfied_by(point.facets):
                    continue
                feasible.append(point)
                if best is None or point.trust > best.trust:
                    best = point
            if best is None:
                break
            # Refine around the incumbent's continuous coordinates.
            sharing_window = self._shrink_window(
                best.settings.sharing_level, sharing_window
            )
            strictness_window = self._shrink_window(
                best.settings.policy_strictness, strictness_window
            )

        return OptimizationResult(
            best=best,
            feasible=feasible,
            evaluated=len(trace),
            constraints=constraints,
            trace=trace,
        )

    @staticmethod
    def _shrink_window(center: float, window: tuple[float, float]) -> tuple[float, float]:
        """Halve the search window around the incumbent, clipped to [0, 1]."""
        low, high = window
        half_width = max((high - low) / 4.0, 0.01)
        return (max(0.0, center - half_width), min(1.0, center + half_width))

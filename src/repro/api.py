"""The blessed public surface of :mod:`repro`.

Everything a *client* of this library needs — examples, benchmarks,
notebooks, downstream services — is re-exported here, and repro-lint rule
R9 holds the in-repo client trees (``examples/``, ``benchmarks/``) to
exactly this module.  Internals stay importable (white-box tests use them
deliberately), but only names listed in :data:`__all__` carry a
compatibility promise.  docs/API.md documents the surface name by name and
assigns each group a stability tier (stable / provisional / internal).

The facade is grouped by role:

Serving (the live layer)
    :class:`ReputationService` and its HTTP adapters, plus the load-harness
    helpers benchmarks replay traffic with.
Batch pipeline
    ``run_scenario`` / ``run_sweep`` / the experiment registry — everything
    that regenerates the paper's figures and records.
Model substrate
    Social networks, the interaction simulator, reputation mechanisms,
    privacy machinery and the composite trust metric.
Controls
    The :mod:`~repro.core.accel` switchboard, deterministic fault injection
    (:mod:`repro.faults`) and the profiling timer, re-exported as namespaced
    modules / callables.
"""

from __future__ import annotations

import repro.core.accel as accel
import repro.faults as faults
from repro._profiling import profiled
from repro.core import (
    CompositeTrustMetric,
    FacetConstraints,
    FacetScores,
    SettingsExplorer,
    SystemSettings,
    TrustModel,
    TrustOptimizer,
    TrustReport,
)
from repro.core.backend import HAS_NUMPY, available_backends
from repro.core.coupling import CouplingDynamics, CouplingState, coupling_matrix
from repro.core.metric import Aggregator
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    IntegrityError,
    OverloadError,
    ReadOnlyError,
    ReproError,
    RequestFailedError,
)
from repro.experiments import (
    ablations,
    claims,
    figure1,
    figure2_left,
    figure2_right,
    privacy_eval,
    reputation_eval,
    robustness,
    satisfaction_eval,
)
from repro.experiments.reporting import format_sweep_summary, format_table
from repro.experiments.results import records_to_csv, records_to_json
from repro.experiments.runner import (
    EXPERIMENTS,
    RunResult,
    get_experiment,
    run_experiment,
    run_experiment_structured,
)
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.experiments.sweep import (
    ParamRange,
    SweepExecutor,
    SweepResult,
    SweepSpec,
    expand_tasks,
    run_sweep,
)
from repro.privacy import (
    Audience,
    NegotiationEngine,
    Obligation,
    OecdPrinciple,
    Operation,
    PolicyRule,
    PriServService,
    PrivacyPolicy,
    Proposal,
    Purpose,
    check_compliance,
    restrictive_policy,
)
from repro.reputation import (
    BetaReputation,
    EigenTrust,
    PowerTrust,
    ReputationSystem,
    ScoreView,
    SimpleAverageReputation,
    make_reputation_system,
    pairwise_ranking_accuracy,
)
from repro.scenarios import CATALOG, ScenarioRunConfig, ScenarioRunResult, run_scenario
from repro.scenarios.runner import clear_run_cache
from repro.scenarios.schema.library import ScenarioTemplate, load_template
from repro.scenarios.setup import clear_setup_cache
from repro.serving import (
    CircuitBreaker,
    ClientRetryPolicy,
    IngestReceipt,
    PeerSummary,
    ReputationService,
    ResilientClient,
    ServiceConfig,
    TornTailWarning,
    WriteAheadLog,
    create_asgi_app,
    create_http_server,
    feedback_from_payload,
    verify_wal,
)
from repro.serving.loadgen import (
    ReplayStats,
    build_trace,
    ingest_events,
    replay,
    request_json,
    scores_body,
)
from repro.simulation import ChurnModel, InteractionSimulator, SimulationConfig
from repro.simulation.engine import SimulationResult
from repro.simulation.transaction import Feedback
from repro.socialnet import SocialNetworkSpec, generate_social_network
from repro.socialnet.generators import clear_network_cache
from repro.socialnet.presets import preset_spec
from repro.version import __version__

__all__ = [
    # -- serving (the live layer) ------------------------------------------
    "IngestReceipt",
    "PeerSummary",
    "ReputationService",
    "ServiceConfig",
    "create_asgi_app",
    "create_http_server",
    "feedback_from_payload",
    # durability + resilience
    "CircuitBreaker",
    "ClientRetryPolicy",
    "ResilientClient",
    "TornTailWarning",
    "WriteAheadLog",
    "verify_wal",
    # load harness
    "ReplayStats",
    "build_trace",
    "ingest_events",
    "replay",
    "request_json",
    "scores_body",
    # -- batch pipeline ----------------------------------------------------
    "CATALOG",
    "ScenarioRunConfig",
    "ScenarioRunResult",
    "run_scenario",
    "ScenarioTemplate",
    "load_template",
    "clear_run_cache",
    "clear_setup_cache",
    "EXPERIMENTS",
    "RunResult",
    "get_experiment",
    "run_experiment",
    "run_experiment_structured",
    "Scenario",
    "ScenarioConfig",
    "ParamRange",
    "SweepExecutor",
    "SweepResult",
    "SweepSpec",
    "expand_tasks",
    "run_sweep",
    "format_sweep_summary",
    "format_table",
    "records_to_csv",
    "records_to_json",
    # experiment definitions (provisional tier)
    "ablations",
    "claims",
    "figure1",
    "figure2_left",
    "figure2_right",
    "privacy_eval",
    "reputation_eval",
    "robustness",
    "satisfaction_eval",
    # -- model substrate ---------------------------------------------------
    "SocialNetworkSpec",
    "generate_social_network",
    "clear_network_cache",
    "preset_spec",
    "ChurnModel",
    "InteractionSimulator",
    "SimulationConfig",
    "SimulationResult",
    "Feedback",
    "BetaReputation",
    "EigenTrust",
    "PowerTrust",
    "ReputationSystem",
    "ScoreView",
    "SimpleAverageReputation",
    "make_reputation_system",
    "pairwise_ranking_accuracy",
    "Audience",
    "NegotiationEngine",
    "Obligation",
    "OecdPrinciple",
    "Operation",
    "PolicyRule",
    "PriServService",
    "PrivacyPolicy",
    "Proposal",
    "Purpose",
    "check_compliance",
    "restrictive_policy",
    "Aggregator",
    "CompositeTrustMetric",
    "CouplingDynamics",
    "CouplingState",
    "coupling_matrix",
    "FacetConstraints",
    "FacetScores",
    "SettingsExplorer",
    "SystemSettings",
    "TrustModel",
    "TrustOptimizer",
    "TrustReport",
    "HAS_NUMPY",
    "available_backends",
    # -- controls ----------------------------------------------------------
    "accel",
    "faults",
    "profiled",
    "CircuitOpenError",
    "ConfigurationError",
    "IntegrityError",
    "OverloadError",
    "ReadOnlyError",
    "ReproError",
    "RequestFailedError",
    "__version__",
]

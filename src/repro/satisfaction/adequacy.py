"""Adequacy: how well one system decision matches a participant's intention.

Adequacy is the per-decision quantity; satisfaction (see
:mod:`repro.satisfaction.tracker`) is its long-run aggregation.  Three
adequacy measures are provided:

* :func:`consumer_adequacy` — the consumer's preference for the provider the
  system allocated to it;
* :func:`provider_adequacy` — the provider's intention to treat the query it
  was handed;
* :func:`interaction_adequacy` — adequacy of a raw social/P2P interaction
  outcome, blending the partner preference with the delivered quality (used
  when the substrate is the interaction simulator rather than the query
  mediator).
"""

from __future__ import annotations


from repro._util import clamp, require_unit_interval
from repro.satisfaction.intentions import ConsumerIntention, ProviderIntention


def consumer_adequacy(intention: ConsumerIntention, allocated_provider: str) -> float:
    """Adequacy of allocating ``allocated_provider`` to this consumer."""
    return intention.preference(allocated_provider)


def provider_adequacy(
    intention: ProviderIntention, topic: str, consumer: str | None = None
) -> float:
    """Adequacy, for the provider, of being handed a query on ``topic``."""
    return intention.intention_for(topic, consumer)


def interaction_adequacy(
    partner_preference: float,
    delivered_quality: float,
    *,
    quality_weight: float = 0.6,
) -> float:
    """Adequacy of one interaction: preference for the partner and its quality.

    The paper notes that "quality of results is a private notion that is
    assumed to be used by a data consumer to decide which providers she
    prefers"; the blend keeps both the *who* (preference) and the *how well*
    (quality) visible, with quality dominating by default.
    """
    require_unit_interval(partner_preference, "partner_preference")
    require_unit_interval(delivered_quality, "delivered_quality")
    require_unit_interval(quality_weight, "quality_weight")
    return clamp(quality_weight * delivered_quality + (1.0 - quality_weight) * partner_preference)

"""Long-run satisfaction tracking.

"Intuitively, a participant is satisfied by the system process if the latter
meets its intentions in the long term" (Section 2.1).  The tracker therefore
keeps, per participant,

* **satisfaction** — the long-run average of adequacy over every decision the
  participant was involved in, whether it asked for it or not;
* **allocation satisfaction** — the same restricted to decisions the system
  *imposed* (allocations the participant did not explicitly prefer), which is
  the quantity the [17] model distinguishes: "a data provider can be
  satisfied even if sometimes the system imposes queries he does not intend
  to treat".

Both are tracked either as exponentially-weighted moving averages (the
default, emphasising the recent past as a long-run *regime*) or as plain
means over a sliding window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro._util import clamp, mean, require_unit_interval
from repro.errors import ConfigurationError


@dataclass
class _ParticipantState:
    satisfaction: float | None = None
    allocation_satisfaction: float | None = None
    observations: int = 0
    imposed_observations: int = 0
    window: deque[float] = field(default_factory=deque)
    imposed_window: deque[float] = field(default_factory=deque)


class SatisfactionTracker:
    """Track per-participant satisfaction from adequacy observations."""

    def __init__(self, *, alpha: float = 0.1, window: int = 50, initial: float = 0.5) -> None:
        self.alpha = require_unit_interval(alpha, "alpha")
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        self.window = int(window)
        self.initial = require_unit_interval(initial, "initial")
        self._states: dict[str, _ParticipantState] = {}

    def _state(self, participant: str) -> _ParticipantState:
        if participant not in self._states:
            self._states[participant] = _ParticipantState()
        return self._states[participant]

    # -- observation ingestion ----------------------------------------------

    def observe(self, participant: str, adequacy: float, *, imposed: bool = False) -> None:
        """Record one adequacy observation for a participant.

        ``imposed`` marks decisions the system made without (or against) the
        participant's explicit intention; they additionally feed the
        allocation-satisfaction series.
        """
        require_unit_interval(adequacy, "adequacy")
        state = self._state(participant)
        state.observations += 1
        previous = state.satisfaction if state.satisfaction is not None else adequacy
        state.satisfaction = clamp((1.0 - self.alpha) * previous + self.alpha * adequacy)
        state.window.append(adequacy)
        while len(state.window) > self.window:
            state.window.popleft()
        if imposed:
            state.imposed_observations += 1
            previous_imposed = (
                state.allocation_satisfaction
                if state.allocation_satisfaction is not None
                else adequacy
            )
            state.allocation_satisfaction = clamp(
                (1.0 - self.alpha) * previous_imposed + self.alpha * adequacy
            )
            state.imposed_window.append(adequacy)
            while len(state.imposed_window) > self.window:
                state.imposed_window.popleft()

    # -- queries -----------------------------------------------------------

    def participants(self) -> list:
        return sorted(self._states)

    def observation_count(self, participant: str) -> int:
        return self._states.get(participant, _ParticipantState()).observations

    def satisfaction(self, participant: str) -> float:
        """Long-run satisfaction; participants never observed get the prior."""
        state = self._states.get(participant)
        if state is None or state.satisfaction is None:
            return self.initial
        return state.satisfaction

    def allocation_satisfaction(self, participant: str) -> float:
        """Long-run satisfaction restricted to imposed decisions."""
        state = self._states.get(participant)
        if state is None or state.allocation_satisfaction is None:
            return self.satisfaction(participant)
        return state.allocation_satisfaction

    def windowed_satisfaction(self, participant: str) -> float:
        """Mean adequacy over the sliding window (recent regime)."""
        state = self._states.get(participant)
        if state is None or not state.window:
            return self.initial
        return mean(state.window)

    def all_satisfactions(self) -> dict[str, float]:
        return {participant: self.satisfaction(participant) for participant in self._states}

    def dissatisfied(self, threshold: float = 0.4) -> list:
        """Participants whose satisfaction is below the threshold.

        "The satisfaction of participants may have a deep impact on the
        system, because they may decide whether to stay or to leave the
        system based on it" — this is the leave-candidate set.
        """
        require_unit_interval(threshold, "threshold")
        return [
            participant
            for participant in sorted(self._states)
            if self.satisfaction(participant) < threshold
        ]

    def reset(self) -> None:
        self._states.clear()

"""Participant intentions: what each participant wants from the system.

"In order to define her intentions and strategy, a participant needs
information about the system itself and its participants" (Section 2.1).  Two
kinds of intentions are modelled, matching the query-allocation setting the
paper builds on:

* a **consumer intention** ranks providers: who the consumer would prefer to
  be served by (derived from observed quality, social closeness, or set
  explicitly);
* a **provider intention** expresses how much the provider wants to treat
  queries of a given type or from a given consumer (capacity and interest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro._util import clamp, normalize_distribution, require_unit_interval
from repro.errors import ConfigurationError


@dataclass
class ConsumerIntention:
    """A consumer's preference over providers, each in ``[0, 1]``."""

    consumer: str
    preferences: dict[str, float] = field(default_factory=dict)
    #: Preference assumed for providers the consumer knows nothing about.
    default_preference: float = 0.5

    def __post_init__(self) -> None:
        require_unit_interval(self.default_preference, "default_preference")
        for provider, value in self.preferences.items():
            require_unit_interval(value, f"preference for {provider}")

    def preference(self, provider: str) -> float:
        return self.preferences.get(provider, self.default_preference)

    def set_preference(self, provider: str, value: float) -> None:
        self.preferences[provider] = require_unit_interval(value, "preference")

    def update_from_experience(self, provider: str, quality: float, *, alpha: float = 0.3) -> None:
        """Move the preference towards the observed quality (EWMA)."""
        require_unit_interval(quality, "quality")
        require_unit_interval(alpha, "alpha")
        current = self.preference(provider)
        self.preferences[provider] = clamp((1.0 - alpha) * current + alpha * quality)

    def ranked_providers(self) -> list:
        """Providers with explicit preferences, best first."""
        return sorted(self.preferences, key=lambda p: (-self.preferences[p], p))

    def as_distribution(self) -> dict[str, float]:
        """Preferences normalized into a probability distribution."""
        return normalize_distribution(dict(self.preferences))


@dataclass
class ProviderIntention:
    """A provider's willingness to treat work, per query type and consumer."""

    provider: str
    #: Interest in each query type (topic), in ``[0, 1]``.
    topic_interest: dict[str, float] = field(default_factory=dict)
    #: Willingness to serve specific consumers, in ``[0, 1]``.
    consumer_affinity: dict[str, float] = field(default_factory=dict)
    #: Baseline willingness for unknown topics/consumers.
    default_interest: float = 0.5
    #: Maximum number of queries the provider intends to treat per round.
    capacity: int = 5

    def __post_init__(self) -> None:
        require_unit_interval(self.default_interest, "default_interest")
        if self.capacity < 0:
            raise ConfigurationError("capacity must be non-negative")
        for topic, value in self.topic_interest.items():
            require_unit_interval(value, f"interest in {topic}")
        for consumer, value in self.consumer_affinity.items():
            require_unit_interval(value, f"affinity for {consumer}")

    def intention_for(self, topic: str, consumer: str | None = None) -> float:
        """How much the provider wants to treat this query, in ``[0, 1]``."""
        interest = self.topic_interest.get(topic, self.default_interest)
        if consumer is None:
            return interest
        affinity = self.consumer_affinity.get(consumer, self.default_interest)
        return clamp(0.6 * interest + 0.4 * affinity)

    def set_topic_interest(self, topic: str, value: float) -> None:
        self.topic_interest[topic] = require_unit_interval(value, "interest")

    def set_consumer_affinity(self, consumer: str, value: float) -> None:
        self.consumer_affinity[consumer] = require_unit_interval(value, "affinity")


def uniform_consumer_intention(
    consumer: str, providers: Iterable[str], preference: float = 0.5
) -> ConsumerIntention:
    """A consumer intention giving every provider the same preference."""
    return ConsumerIntention(
        consumer=consumer,
        preferences={provider: preference for provider in providers},
        default_preference=preference,
    )


def uniform_provider_intention(
    provider: str, topics: Iterable[str], interest: float = 0.5, capacity: int = 5
) -> ProviderIntention:
    """A provider intention with identical interest in every topic."""
    return ProviderIntention(
        provider=provider,
        topic_interest={topic: interest for topic in topics},
        default_interest=interest,
        capacity=capacity,
    )

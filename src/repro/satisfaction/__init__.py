"""The participant satisfaction model.

Section 2.1 builds on the query-allocation satisfaction model of Quiané-Ruiz,
Lamarre and Valduriez (VLDB Journal 2009): participants have *intentions*
about what the system should do with/for them; the *adequacy* of one system
decision measures how well it matches those intentions; *satisfaction* is the
long-run aggregation of adequacy, and *allocation satisfaction* restricts the
aggregation to the decisions the system actually imposed on the participant.

* :mod:`repro.satisfaction.intentions` — participant intentions (preferences
  over partners and over the work they are asked to do);
* :mod:`repro.satisfaction.adequacy` — per-decision adequacy measures;
* :mod:`repro.satisfaction.tracker` — long-run satisfaction tracking;
* :mod:`repro.satisfaction.aggregate` — global/local satisfaction
  aggregation (the "global vision" versus "local vision" of Section 3).
"""

from repro.satisfaction.adequacy import (
    consumer_adequacy,
    interaction_adequacy,
    provider_adequacy,
)
from repro.satisfaction.aggregate import (
    SatisfactionSummary,
    global_satisfaction,
    local_satisfaction,
    summarize,
)
from repro.satisfaction.intentions import (
    ConsumerIntention,
    ProviderIntention,
    uniform_consumer_intention,
    uniform_provider_intention,
)
from repro.satisfaction.tracker import SatisfactionTracker

__all__ = [
    "ConsumerIntention",
    "ProviderIntention",
    "SatisfactionSummary",
    "SatisfactionTracker",
    "consumer_adequacy",
    "global_satisfaction",
    "interaction_adequacy",
    "local_satisfaction",
    "provider_adequacy",
    "summarize",
    "uniform_consumer_intention",
    "uniform_provider_intention",
]

"""Aggregating individual satisfaction into local and global views.

Section 3: "a user can have a satisfaction perception that can be influenced
only by its local vision of the system, or by a global one".  The local
vision of a user is the satisfaction of its community (social neighbourhood);
the global vision is the whole population.  Both are needed by the trust
model: the paper's Figure 2 satisfaction axis is the *global* users'
satisfaction, while per-user trust uses the local one.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro._util import mean, require_unit_interval


@dataclass(frozen=True)
class SatisfactionSummary:
    """Distribution summary of a satisfaction mapping."""

    mean: float
    minimum: float
    maximum: float
    below_threshold_fraction: float
    count: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def summarize(satisfactions: Mapping[str, float], *, threshold: float = 0.4) -> SatisfactionSummary:
    """Summarize a satisfaction mapping (mean, extremes, dissatisfied share)."""
    require_unit_interval(threshold, "threshold")
    values = list(satisfactions.values())
    if not values:
        return SatisfactionSummary(
            mean=0.0, minimum=0.0, maximum=0.0, below_threshold_fraction=0.0, count=0
        )
    below = sum(1 for value in values if value < threshold)
    return SatisfactionSummary(
        mean=mean(values),
        minimum=min(values),
        maximum=max(values),
        below_threshold_fraction=below / len(values),
        count=len(values),
    )


def global_satisfaction(
    satisfactions: Mapping[str, float],
    *,
    weights: Mapping[str, float] | None = None,
    fairness_weight: float = 0.25,
) -> float:
    """Global users' satisfaction in ``[0, 1]``.

    The mean satisfaction, optionally participation-weighted, blended with
    the minimum: a system that satisfies most users but starves a few is less
    globally satisfying than its mean suggests (the fairness concern behind
    "users may decide to leave the system").
    """
    require_unit_interval(fairness_weight, "fairness_weight")
    values = dict(satisfactions)
    if not values:
        return 0.0
    if weights:
        total_weight = sum(max(0.0, weights.get(user, 0.0)) for user in values)
        if total_weight > 0:
            weighted = sum(
                value * max(0.0, weights.get(user, 0.0)) for user, value in values.items()
            ) / total_weight
        else:
            weighted = mean(values.values())
    else:
        weighted = mean(values.values())
    worst = min(values.values())
    return (1.0 - fairness_weight) * weighted + fairness_weight * worst


def local_satisfaction(
    user: str,
    satisfactions: Mapping[str, float],
    neighbourhood: Iterable[str],
) -> float:
    """The user's local vision: mean satisfaction over itself and its neighbours."""
    relevant = [user, *(other for other in neighbourhood if other != user)]
    values = [satisfactions[other] for other in relevant if other in satisfactions]
    if not values:
        return satisfactions.get(user, 0.5)
    return mean(values)


def per_community_satisfaction(
    satisfactions: Mapping[str, float], partition: Mapping[str, int]
) -> dict[int, float]:
    """Mean satisfaction per community label."""
    buckets: dict[int, list] = {}
    for user, value in satisfactions.items():
        label = partition.get(user)
        if label is None:
            continue
        buckets.setdefault(label, []).append(value)
    return {label: mean(values) for label, values in buckets.items()}

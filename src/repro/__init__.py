"""Reproduction of *Trust your Social Network According to Satisfaction,
Reputation and Privacy* (Busnel, Serrano-Alvarado, Lamarre, 2010).

The library is organized around the paper's three facets and the substrates
they require:

``repro.socialnet``
    Synthetic social networks: users, profiles, sensitive attributes and the
    graph generators used to build laptop-scale social topologies.
``repro.simulation``
    A discrete-event peer-to-peer interaction simulator with adversary models
    (malicious peers, traitors, whitewashers, colluders) and churn.
``repro.reputation``
    Reputation mechanisms surveyed by the paper: EigenTrust, PowerTrust, a
    TrustMe-like anonymous certificate protocol, Beta reputation, a simple
    average baseline, and an anonymous-feedback mode.
``repro.privacy``
    P3P-inspired privacy policies, a PriServ-like privacy service, OECD
    guideline compliance checking, disclosure accounting and privacy metrics.
``repro.satisfaction``
    The participant intention / adequacy / satisfaction model the paper builds
    on, together with global satisfaction aggregation.
``repro.allocation``
    A query-allocation substrate (consumers, providers, mediator, strategies)
    providing the concrete "system process" participants are satisfied with.
``repro.core``
    The paper's contribution: facet scores, the generic composite trust
    metric, the Section-3 coupling dynamics and the settings-tradeoff
    explorer (Figure 2, "Area A").
``repro.experiments``
    End-to-end scenarios and the experiment drivers that regenerate every
    figure and qualitative claim of the paper.
``repro.serving``
    The live layer: a :class:`~repro.serving.service.ReputationService`
    session behind HTTP adapters (``repro-serve``), fed by streaming
    feedback and durable through checkpoint snapshots.
``repro.api``
    The blessed public facade.  Client code (examples, benchmarks,
    downstream users) should import from :mod:`repro.api` — or from
    :mod:`repro` directly, which lazily forwards the same headline names.

Quickstart
----------
>>> from repro import quick_scenario
>>> result = quick_scenario(n_users=40, seed=7)
>>> 0.0 <= result.trust.global_trust <= 1.0
True
"""

from typing import TYPE_CHECKING

from repro.core import (
    CompositeTrustMetric,
    FacetScores,
    SystemSettings,
    TrustModel,
    TrustReport,
)
from repro.version import __version__

if TYPE_CHECKING:
    from repro.experiments.scenario import ScenarioResult


def quick_scenario(n_users: int = 50, seed: int = 0, rounds: int = 30) -> "ScenarioResult":
    """Run a small end-to-end scenario and return its :class:`ScenarioResult`.

    This is a convenience wrapper around
    :class:`repro.experiments.scenario.Scenario` intended for interactive use
    and doctests.  It builds a synthetic social network, runs the interaction
    simulation with the default reputation system and privacy policies, and
    evaluates the three-facet trust model on the outcome.
    """
    from repro.experiments.scenario import Scenario, ScenarioConfig

    config = ScenarioConfig(n_users=n_users, rounds=rounds, seed=seed)
    return Scenario(config).run()


#: Headline facade names importable directly from ``repro`` — resolved
#: lazily through :mod:`repro.api` so ``import repro`` stays light (the
#: serving and experiment stacks load only on first use).
_FACADE_EXPORTS = (
    "ReputationService",
    "ServiceConfig",
    "create_http_server",
    "create_asgi_app",
    "ReputationSystem",
    "ScoreView",
    "make_reputation_system",
    "run_scenario",
    "ScenarioRunConfig",
    "run_sweep",
    "SweepSpec",
    "load_template",
    "run_experiment",
    "run_experiment_structured",
    "RunResult",
    "accel",
    "faults",
)


def __getattr__(name: str) -> object:
    """Lazily forward the headline facade names to :mod:`repro.api`."""
    if name == "faults":
        # A real submodule: resolve it directly.  Internal modules import
        # it (``from repro import faults``) while the package tree is still
        # initializing, when pulling the whole facade in would be circular.
        import repro.faults

        return repro.faults
    if name == "accel":
        import repro.core.accel

        return repro.core.accel
    if name in _FACADE_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_FACADE_EXPORTS))


__all__ = [
    "CompositeTrustMetric",
    "FacetScores",
    "SystemSettings",
    "TrustModel",
    "TrustReport",
    "quick_scenario",
    "__version__",
    *_FACADE_EXPORTS,
]

"""Experiment E-X1: attack-resistance of every mechanism vs every scenario.

Section 2.2 enumerates the adversarial context a reputation mechanism must
survive — selfish peers, malicious peers, traitors, whitewashers — and the
reputation literature adds collusion, slander and sybil attacks.  This
experiment runs every reputation mechanism (plus the no-reputation baseline)
against every entry of the attack-scenario catalog
(:mod:`repro.scenarios.catalog`) and reports, per (scenario, mechanism)
cell:

* good-vs-bad score **separation** before, during and after the attack
  window — the gap the attack tries to collapse;
* the **rank correlation** of final scores against ground-truth service
  quality;
* **time-to-detect** (rounds from attack start until separation reaches the
  detection threshold) and **time-to-recover** (rounds from attack end until
  separation is back at the pre-attack baseline); −1 means never within the
  run;
* the **malicious-transaction rates** users actually experienced during and
  after the attack.

Expected shape: EigenTrust's pre-trusted restart damps collusion rings but
loses to whitewashing waves (identity reset erases exactly the evidence it
needs); count-based mechanisms degrade under slander/ballot-stuffing; every
mechanism beats the no-reputation baseline on malicious traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro._util import mean
from repro.errors import ConfigurationError
from repro.experiments.reporting import format_table
from repro.scenarios.catalog import scenario_names
from repro.scenarios.metrics import RobustnessMetrics
from repro.scenarios.runner import ScenarioRunConfig, run_scenario

#: Mechanisms evaluated by default ("none" is the no-reputation baseline).
DEFAULT_MECHANISMS = ("none", "average", "beta", "eigentrust", "powertrust")


@dataclass
class ScenarioOutcome:
    """One (scenario, mechanism) cell of the robustness matrix."""

    scenario: str
    mechanism: str
    window: tuple[int, int]
    robustness: RobustnessMetrics


@dataclass
class RobustnessResult:
    outcomes: list[ScenarioOutcome]

    def for_scenario(self, scenario: str) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.scenario == scenario]

    def for_mechanism(self, mechanism: str) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.mechanism == mechanism]

    def resistance_by_mechanism(self) -> dict[str, float]:
        """Mean attack-window separation per mechanism over attack scenarios.

        The single "how well does this mechanism hold the line under fire"
        number.  The no-attack control row is excluded, and so is the
        ``"none"`` mechanism: with no published scores its separation is
        identically 0.0, which would rank the do-nothing baseline above any
        mechanism an attack manages to push negative.
        """
        resistance: dict[str, list[float]] = {}
        for outcome in self.outcomes:
            if outcome.scenario == "baseline" or outcome.mechanism == "none":
                continue
            resistance.setdefault(outcome.mechanism, []).append(
                outcome.robustness.attack_separation
            )
        return {mechanism: mean(values) for mechanism, values in resistance.items() if values}


def run(
    *,
    scenarios: Sequence[str] | None = None,
    scenario: str | None = None,
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    mechanism: str | None = None,
    n_users: int = 40,
    rounds: int = 30,
    seed: int = 0,
    backend: str = "auto",
    malicious_fraction: float = 0.25,
    preset: str | None = None,
    detect_threshold: float = 0.1,
    recovery_fraction: float = 0.8,
    template: str | None = None,
    tier: str | None = None,
) -> RobustnessResult:
    """Run the scenario × mechanism robustness matrix.

    ``scenarios`` defaults to the whole catalog.  The singular ``scenario``/
    ``mechanism`` parameters restrict the matrix to one row/column — they
    exist so sweep grids (which carry JSON scalars only) can sweep the
    catalog by name.  ``template``/``tier`` run one declarative scenario
    template instead and take precedence over ``scenario(s)`` and the sizing
    parameters (the template document supplies those; ``backend``,
    ``detect_threshold`` and ``recovery_fraction`` still apply), so sweeps
    can cover the template library the same way they cover the catalog.
    """
    if mechanism is not None:
        mechanisms = (mechanism,)
    if template is not None:
        # Local import: the schema package layers on top of this module.
        from repro.scenarios.schema import compile_template, find_template

        document = find_template(template)
        outcomes: list[ScenarioOutcome] = []
        for mechanism_name in mechanisms:
            compiled = compile_template(
                document, tier, mechanism=mechanism_name, backend=backend
            )
            config = compiled.config
            config.detect_threshold = detect_threshold
            config.recovery_fraction = recovery_fraction
            result = run_scenario(config)
            outcomes.append(
                ScenarioOutcome(
                    scenario=config.scenario,
                    mechanism=mechanism_name,
                    window=result.campaign.window,
                    robustness=result.robustness,
                )
            )
        return RobustnessResult(outcomes=outcomes)
    if tier is not None:
        raise ConfigurationError("tier only applies to template runs")
    if scenario is not None:
        scenarios = (scenario,)
    elif scenarios is None:
        scenarios = tuple(scenario_names())
    outcomes = []
    for scenario_name in scenarios:
        for mechanism_name in mechanisms:
            result = run_scenario(
                ScenarioRunConfig(
                    scenario=scenario_name,
                    mechanism=mechanism_name,
                    n_users=n_users,
                    rounds=rounds,
                    seed=seed,
                    backend=backend,
                    malicious_fraction=malicious_fraction,
                    preset=preset,
                    detect_threshold=detect_threshold,
                    recovery_fraction=recovery_fraction,
                )
            )
            outcomes.append(
                ScenarioOutcome(
                    scenario=scenario_name,
                    mechanism=mechanism_name,
                    window=result.campaign.window,
                    robustness=result.robustness,
                )
            )
    return RobustnessResult(outcomes=outcomes)


def summarize(result: RobustnessResult) -> dict[str, object]:
    """Flatten the robustness matrix to record metrics (JSON scalars)."""
    metrics: dict[str, object] = {"n_outcomes": len(result.outcomes)}
    for outcome in result.outcomes:
        prefix = f"{outcome.scenario}.{outcome.mechanism}"
        robustness = outcome.robustness
        metrics[f"{prefix}.separation_baseline"] = robustness.baseline_separation
        metrics[f"{prefix}.separation_attack"] = robustness.attack_separation
        metrics[f"{prefix}.separation_post"] = robustness.post_separation
        metrics[f"{prefix}.rank_correlation"] = robustness.final_rank_correlation
        metrics[f"{prefix}.time_to_detect"] = robustness.time_to_detect
        metrics[f"{prefix}.time_to_recover"] = robustness.time_to_recover
        metrics[f"{prefix}.malicious_rate_attack"] = robustness.attack_malicious_rate
        metrics[f"{prefix}.malicious_rate_post"] = robustness.post_malicious_rate
    for mechanism, resistance in sorted(result.resistance_by_mechanism().items()):
        metrics[f"resistance.{mechanism}"] = resistance
    return metrics


def report(result: RobustnessResult) -> str:
    rows = [
        (
            outcome.scenario,
            outcome.mechanism,
            outcome.robustness.baseline_separation,
            outcome.robustness.attack_separation,
            outcome.robustness.post_separation,
            outcome.robustness.time_to_detect,
            outcome.robustness.time_to_recover,
            outcome.robustness.final_rank_correlation,
            outcome.robustness.attack_malicious_rate,
        )
        for outcome in result.outcomes
    ]
    matrix = format_table(
        [
            "scenario",
            "mechanism",
            "sep before",
            "sep attack",
            "sep after",
            "detect",
            "recover",
            "rank corr",
            "malicious tx",
        ],
        rows,
        title="E-X1: attack scenarios vs reputation mechanisms (-1 = never)",
    )
    resistance = result.resistance_by_mechanism()
    resistance_table = format_table(
        ["mechanism", "mean separation held during attacks"],
        sorted(resistance.items(), key=lambda item: -item[1]),
        title="E-X1: overall attack resistance",
    )
    return matrix + "\n\n" + resistance_table

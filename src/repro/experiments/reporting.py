"""Plain-text reporting helpers shared by experiments and benchmarks.

Every experiment prints its tables through these helpers so the output format
stays uniform (and greppable in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  *, precision: int = 3) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = list(zip(xs, ys))
    return format_table(["x", name], rows, precision=precision)


def print_report(text: str) -> None:
    """Print a report block with a trailing blank line (single choke point)."""
    print(text)
    print()

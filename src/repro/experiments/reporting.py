"""Plain-text reporting helpers shared by experiments and benchmarks.

Every experiment prints its tables through these helpers so the output format
stays uniform (and greppable in ``bench_output.txt``), and sweep campaigns
render their record collections through :func:`format_sweep_summary`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.results import ExperimentRecord


def format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: list[list[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, precision: int = 3
) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = list(zip(xs, ys, strict=True))
    return format_table(["x", name], rows, precision=precision)


def format_sweep_summary(
    records: Sequence[ExperimentRecord],
    *,
    max_metric_columns: int = 6,
    precision: int = 3,
) -> str:
    """Render a sweep campaign's records as one table plus a header line.

    Within a campaign every record shares a metric vocabulary, so the table
    shows the swept params and the first ``max_metric_columns`` metric names
    (sorted); failed tasks show their error instead of metrics.
    """
    if not records:
        return "sweep produced no records"
    ordered = sorted(records, key=lambda record: record.task_index)
    experiment = ordered[0].experiment
    n_ok = sum(1 for record in ordered if record.ok)
    n_err = len(ordered) - n_ok
    param_keys = sorted({key for record in ordered for key in record.params})
    metric_keys = sorted({key for record in ordered for key in record.metrics})
    shown_metrics = metric_keys[:max_metric_columns]
    hidden = len(metric_keys) - len(shown_metrics)

    headers = ["task", *param_keys, *shown_metrics, "status"]
    rows = []
    for record in ordered:
        row: list[object] = [record.task_index]
        row += [record.params.get(key, "") for key in param_keys]
        row += [record.metrics.get(key, "") for key in shown_metrics]
        row.append(record.status if record.ok else f"error: {record.error}")
        rows.append(row)

    header_line = f"sweep of {experiment!r}: {len(ordered)} tasks, {n_ok} ok, {n_err} failed"
    if hidden > 0:
        header_line += f" ({hidden} more metric(s) in the structured output)"
    table = format_table(headers, rows, precision=precision)
    return header_line + "\n" + table


def print_report(text: str) -> None:
    """Print a report block with a trailing blank line (single choke point)."""
    print(text)
    print()

"""Experiment E-F2R: Figure 2 (right), the mutual impact of the settings.

The paper's claim: "the less the amount of shared information is, the most
the privacy satisfaction is.  However, that implies a low reputation
satisfaction range. [...] the same global satisfaction can be reached by
using different settings."

The experiment sweeps the information-sharing level σ and reports, for each
level, the privacy facet, the reputation facet, the global satisfaction and
the resulting trust — once with the fast analytic facet model and once with
full simulation-backed scenarios.  The reproduced *shape* is: privacy
monotonically non-increasing in σ, reputation monotonically non-decreasing,
satisfaction and trust single-peaked at an interior σ, and at least one
iso-satisfaction pair of distinct settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import SystemSettings
from repro.core.tradeoff import SettingsExplorer, TradeoffPoint
from repro.experiments.reporting import format_table
from repro.experiments.scenario import Scenario, ScenarioConfig


@dataclass
class Figure2RightResult:
    """Analytic and simulated tradeoff curves plus derived observations."""

    analytic_points: list[TradeoffPoint]
    simulated_points: list[TradeoffPoint]
    iso_satisfaction_pairs: list[tuple]
    best_analytic: TradeoffPoint
    best_simulated: TradeoffPoint | None

    def analytic_series(self) -> list[tuple]:
        return [
            (
                point.sharing_level,
                point.facets.privacy,
                point.facets.reputation,
                point.facets.satisfaction,
                point.trust,
            )
            for point in self.analytic_points
        ]


def _simulate_point(
    settings: SystemSettings, *, n_users: int, rounds: int, seed: int, backend: str = "auto"
) -> TradeoffPoint:
    result = Scenario(
        ScenarioConfig(
            n_users=n_users,
            rounds=rounds,
            seed=seed,
            settings=settings,
            backend=backend,
        )
    ).run()
    return TradeoffPoint(
        settings=settings,
        facets=result.facets,
        trust=result.trust.global_trust,
        in_area_a=result.trust.in_area_a,
    )


def run(
    *,
    levels: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    simulate: bool = True,
    n_users: int = 40,
    rounds: int = 20,
    seed: int = 0,
    backend: str = "auto",
) -> Figure2RightResult:
    """Run E-F2R; set ``simulate=False`` for the analytic-only fast path."""
    explorer = SettingsExplorer()
    analytic_points = explorer.sweep_sharing_levels(list(levels))

    simulated_points: list[TradeoffPoint] = []
    if simulate:
        for level in levels:
            settings = SystemSettings(sharing_level=level)
            simulated_points.append(
                _simulate_point(
                    settings,
                    n_users=n_users,
                    rounds=rounds,
                    seed=seed,
                    backend=backend,
                )
            )

    dense_points = explorer.sweep_sharing_levels(resolution=41)
    pairs = explorer.iso_satisfaction_pairs(dense_points)
    return Figure2RightResult(
        analytic_points=analytic_points,
        simulated_points=simulated_points,
        iso_satisfaction_pairs=pairs,
        best_analytic=explorer.best(analytic_points),
        best_simulated=explorer.best(simulated_points) if simulated_points else None,
    )


def summarize(result: Figure2RightResult) -> dict:
    """Flatten E-F2R to record metrics (curve shape and optima)."""
    metrics: dict = {
        "n_analytic_points": len(result.analytic_points),
        "n_simulated_points": len(result.simulated_points),
        "n_iso_satisfaction_pairs": len(result.iso_satisfaction_pairs),
        "best_analytic_sharing_level": result.best_analytic.sharing_level,
        "best_analytic_trust": result.best_analytic.trust,
    }
    if result.best_simulated is not None:
        metrics["best_simulated_sharing_level"] = result.best_simulated.sharing_level
        metrics["best_simulated_trust"] = result.best_simulated.trust
    # repr keeps the key exact: rounded keys would collide for close levels.
    for point in result.analytic_points:
        prefix = f"analytic[{point.sharing_level!r}]"
        metrics[f"{prefix}.privacy"] = point.facets.privacy
        metrics[f"{prefix}.reputation"] = point.facets.reputation
        metrics[f"{prefix}.satisfaction"] = point.facets.satisfaction
        metrics[f"{prefix}.trust"] = point.trust
    return metrics


def report(result: Figure2RightResult) -> str:
    headers = ["sharing level", "privacy", "reputation", "satisfaction", "trust", "in Area A"]
    analytic_rows = [
        (
            point.sharing_level,
            point.facets.privacy,
            point.facets.reputation,
            point.facets.satisfaction,
            point.trust,
            point.in_area_a,
        )
        for point in result.analytic_points
    ]
    blocks = [
        format_table(
            headers,
            analytic_rows,
            title="E-F2R: facet response to the information-sharing level (analytic model)",
        )
    ]
    if result.simulated_points:
        simulated_rows = [
            (
                point.sharing_level,
                point.facets.privacy,
                point.facets.reputation,
                point.facets.satisfaction,
                point.trust,
                point.in_area_a,
            )
            for point in result.simulated_points
        ]
        blocks.append(
            format_table(
                headers,
                simulated_rows,
                title="E-F2R: facet response (full simulation)",
            )
        )
    blocks.append(
        f"Trust-maximizing sharing level (analytic): "
        f"{result.best_analytic.sharing_level:.2f} "
        f"(trust={result.best_analytic.trust:.3f})"
    )
    if result.best_simulated is not None:
        blocks.append(
            f"Trust-maximizing sharing level (simulated): "
            f"{result.best_simulated.sharing_level:.2f} "
            f"(trust={result.best_simulated.trust:.3f})"
        )
    blocks.append(
        f"Iso-satisfaction setting pairs found (same satisfaction, different "
        f"settings): {len(result.iso_satisfaction_pairs)}"
    )
    if result.iso_satisfaction_pairs:
        first, second = result.iso_satisfaction_pairs[0]
        blocks.append(
            "Example: sharing levels "
            f"{first.sharing_level:.2f} and {second.sharing_level:.2f} both reach "
            f"satisfaction ~{first.facets.satisfaction:.3f}"
        )
    return "\n\n".join(blocks)

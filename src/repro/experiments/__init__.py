"""Experiment drivers regenerating every figure and claim of the paper.

Each module implements one experiment of the DESIGN.md index:

* :mod:`repro.experiments.scenario` — the end-to-end scenario harness wiring
  social network, simulation, reputation, privacy and satisfaction together;
* :mod:`repro.experiments.figure1` — E-F1, the concept-interaction couplings;
* :mod:`repro.experiments.figure2_left` — E-F2L, the Area-A tradeoff region;
* :mod:`repro.experiments.figure2_right` — E-F2R, the privacy/reputation/
  satisfaction response to the information-sharing level;
* :mod:`repro.experiments.claims` — E-C1..E-C5, the Section-3 bullets;
* :mod:`repro.experiments.reputation_eval` — E-R1, reputation mechanisms vs
  adversary mixes;
* :mod:`repro.experiments.privacy_eval` — E-P1, PriServ enforcement and OECD
  compliance;
* :mod:`repro.experiments.satisfaction_eval` — E-S1, allocation strategies vs
  long-run satisfaction;
* :mod:`repro.experiments.ablations` — E-A1/E-A2, aggregator and anonymity
  ablations;
* :mod:`repro.experiments.robustness` — E-X1, the attack-scenario catalog
  (collusion, whitewashing, traitors, slander, sybil bursts) against every
  reputation mechanism, with attack-resistance metrics;
* :mod:`repro.experiments.results` — structured :class:`ExperimentRecord`
  results with deterministic JSON/CSV serialization;
* :mod:`repro.experiments.sweep` — parallel sweep campaigns (grid, random
  and Latin-hypercube parameter coverage) over any registered experiment;
* :mod:`repro.experiments.runner` / ``__main__`` — registry and CLI.
"""

from repro.experiments.results import (
    ExperimentRecord,
    read_records_json,
    records_from_json,
    records_to_csv,
    records_to_json,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_structured,
)
from repro.experiments.scenario import Scenario, ScenarioConfig, ScenarioResult
from repro.experiments.sweep import (
    ParamRange,
    SweepResult,
    SweepSpec,
    SweepTask,
    expand_tasks,
    run_sweep,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentRecord",
    "ParamRange",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "SweepResult",
    "SweepSpec",
    "SweepTask",
    "expand_tasks",
    "read_records_json",
    "records_from_json",
    "records_to_csv",
    "records_to_json",
    "run_experiment",
    "run_experiment_structured",
    "run_sweep",
]

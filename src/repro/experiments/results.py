"""Structured experiment results: the machine-readable sibling of reporting.

Every registered experiment historically produced only a rendered text
report.  Sweep campaigns (and CI, and any downstream analysis) need the
numbers themselves, so this module defines :class:`ExperimentRecord` — one
executed parameter point flattened to JSON scalars — plus deterministic
JSON/CSV serialization for collections of records.

Determinism is a contract, not an accident: the acceptance check for the
sweep engine is that the same campaign seed and grid produce *byte-identical*
output files whether the campaign ran on one worker or many.  Records
therefore carry no wall-clock timestamps or host information, dictionaries
are serialized with sorted keys, and floats round-trip through ``repr`` (the
default for :mod:`json`), which is exact for IEEE doubles.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import math
import os
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import IntegrityError

#: Bumped whenever the serialized record layout changes shape.
RECORD_SCHEMA_VERSION = 1

#: JSON scalar types a record may carry as a param or metric value.
SCALAR_TYPES = (bool, int, float, str, type(None))


class RecordValueError(TypeError):
    """A param or metric value is not a JSON scalar."""


def _require_scalars(mapping: dict[str, object], kind: str) -> dict[str, object]:
    for key, value in mapping.items():
        if not isinstance(value, SCALAR_TYPES):
            raise RecordValueError(
                f"{kind} {key!r} has non-scalar value {value!r} "
                f"({type(value).__name__}); records carry JSON scalars only"
            )
        if isinstance(value, float) and not math.isfinite(value):
            # NaN/Infinity have no strict-JSON representation; rejecting them
            # here keeps every serialized record RFC-8259 parseable.
            raise RecordValueError(
                f"{kind} {key!r} has non-finite value {value!r}; "
                "records carry strict-JSON scalars only"
            )
    return dict(mapping)


@dataclass(frozen=True)
class ExperimentRecord:
    """One executed parameter point of one experiment, flattened to scalars.

    ``params`` holds the swept keyword arguments exactly as passed to the
    experiment's ``run()``; ``metrics`` holds the experiment's
    ``summarize()`` output (flat name → scalar).  ``seed`` is the derived
    per-task seed (``None`` for experiments whose ``run()`` takes no seed).
    """

    experiment: str
    task_index: int
    params: dict[str, object]
    seed: int | None
    status: str  # "ok" or "error"
    metrics: dict[str, object] = field(default_factory=dict)
    error: str | None = None
    #: Structured failure detail for error records: exception class, message,
    #: formatted traceback and how many retries preceded the final failure.
    #: ``None`` for ok records (and for pre-failure-audit error records).
    failure: dict[str, object] | None = None

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise ValueError(f"status must be 'ok' or 'error', got {self.status!r}")
        if self.failure is not None and self.status != "error":
            raise ValueError("failure detail is only valid on error records")
        # Store validated copies so later mutation of the caller's dicts
        # cannot reach into the frozen record.
        object.__setattr__(self, "params", _require_scalars(self.params, "param"))
        object.__setattr__(self, "metrics", _require_scalars(self.metrics, "metric"))
        if self.failure is not None:
            object.__setattr__(self, "failure", _require_scalars(self.failure, "failure"))

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, object]:
        """A plain-dict view in canonical field order.

        ``failure`` appears only when present, so ok records (and files
        written before the failure audit existed) keep their exact bytes.
        """
        payload: dict[str, object] = {
            "experiment": self.experiment,
            "task_index": self.task_index,
            "params": dict(self.params),
            "seed": self.seed,
            "status": self.status,
            "metrics": dict(self.metrics),
            "error": self.error,
        }
        if self.failure is not None:
            payload["failure"] = dict(self.failure)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> ExperimentRecord:
        failure = payload.get("failure")
        return cls(
            experiment=payload["experiment"],
            task_index=payload["task_index"],
            params=dict(payload.get("params", {})),
            seed=payload.get("seed"),
            status=payload.get("status", "ok"),
            metrics=dict(payload.get("metrics", {})),
            error=payload.get("error"),
            failure=None if failure is None else dict(failure),
        )


def records_to_json(
    records: Sequence[ExperimentRecord],
    *,
    campaign: dict[str, object] | None = None,
) -> str:
    """Serialize records (plus optional campaign metadata) deterministically.

    ``campaign`` must itself be deterministic under re-execution — the sweep
    engine keeps worker counts and timings out of it on purpose.
    """
    payload = {
        "schema_version": RECORD_SCHEMA_VERSION,
        "campaign": dict(campaign or {}),
        "records": [record.to_dict() for record in sorted(records, key=lambda r: r.task_index)],
    }
    return json.dumps(payload, sort_keys=True, indent=2, allow_nan=False) + "\n"


def records_from_json(text: str) -> list[ExperimentRecord]:
    """Parse records back out of :func:`records_to_json` output."""
    payload = json.loads(text)
    return [ExperimentRecord.from_dict(entry) for entry in payload.get("records", [])]


def campaign_from_json(text: str) -> dict[str, object]:
    """The campaign metadata block of a serialized result file."""
    return json.loads(text).get("campaign", {})


def file_sha256(path: str) -> str:
    """SHA-256 hex digest of a file's bytes (streamed, any size)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def checksum_sidecar_path(path: str) -> str:
    """Where a record artifact's integrity sidecar lives."""
    return f"{path}.sha256"


def write_checksum_sidecar(path: str) -> str:
    """Record a file's SHA-256 next to it, in ``sha256sum``-compatible form.

    Returns the sidecar path.  The sidecar is what :func:`verify_file_checksum`
    (and the ``verify-records`` CLI) checks artifacts against, and standard
    tooling can too: ``cd <dir> && sha256sum -c <name>.sha256``.
    """
    sidecar = checksum_sidecar_path(path)
    line = f"{file_sha256(path)}  {os.path.basename(path)}\n"
    with open(sidecar, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(line)
    return sidecar


def verify_file_checksum(path: str) -> str:
    """Check a file against its sidecar; returns the verified digest.

    Raises :class:`~repro.errors.IntegrityError` when the sidecar is missing
    or malformed, or when the file's bytes no longer hash to the recorded
    digest (truncation, bit rot, partial write).
    """
    sidecar = checksum_sidecar_path(path)
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            content = handle.read()
    except OSError as error:
        raise IntegrityError(f"{path}: missing checksum sidecar {sidecar}") from error
    recorded = content.split(None, 1)[0] if content.strip() else ""
    if len(recorded) != 64 or any(c not in "0123456789abcdef" for c in recorded):
        raise IntegrityError(f"{sidecar}: malformed checksum sidecar")
    actual = file_sha256(path)
    if actual != recorded:
        raise IntegrityError(
            f"{path}: SHA-256 mismatch (file {actual}, sidecar records {recorded})"
        )
    return actual


def write_records_json(
    path: str,
    records: Sequence[ExperimentRecord],
    *,
    campaign: dict[str, object] | None = None,
    checksum: bool = False,
) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(records_to_json(records, campaign=campaign))
    if checksum:
        write_checksum_sidecar(path)


def read_records_json(path: str) -> list[ExperimentRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        return records_from_json(handle.read())


def records_to_csv(records: Sequence[ExperimentRecord]) -> str:
    """Render records as CSV with ``param_*`` and ``metric_*`` columns.

    The column set is the union over all records (sorted for determinism),
    so heterogeneous sweeps stay loadable in one frame.
    """
    ordered = sorted(records, key=lambda record: record.task_index)
    param_keys = sorted({key for record in ordered for key in record.params})
    metric_keys = sorted({key for record in ordered for key in record.metrics})
    fieldnames = [
        "experiment",
        "task_index",
        "seed",
        "status",
        "error",
        *(f"param_{key}" for key in param_keys),
        *(f"metric_{key}" for key in metric_keys),
    ]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for record in ordered:
        row: dict[str, object] = {
            "experiment": record.experiment,
            "task_index": record.task_index,
            "seed": "" if record.seed is None else record.seed,
            "status": record.status,
            "error": record.error or "",
        }
        for key in param_keys:
            row[f"param_{key}"] = record.params.get(key, "")
        for key in metric_keys:
            row[f"metric_{key}"] = record.metrics.get(key, "")
        writer.writerow(row)
    return buffer.getvalue()


def write_records_csv(
    path: str, records: Sequence[ExperimentRecord], *, checksum: bool = False
) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(records_to_csv(records))
    if checksum:
        write_checksum_sidecar(path)

"""Experiment E-R1: do the reputation mechanisms distinguish good from bad?

Section 2.2 motivates reputation mechanisms as a way "to help peers to
distinguish good from bad partners which eventually enhances the users'
satisfaction".  The experiment runs every implemented mechanism (plus the
no-reputation baseline) against increasing malicious fractions and reports

* the pairwise ranking accuracy of the final scores against ground truth,
* the composite reputation power (the reputation facet), and
* the steady-state malicious-interaction rate — the fraction of transactions
  still served by dishonest peers, i.e. how much the mechanism actually
  protects users.

Expected shape: every mechanism beats the no-reputation baseline on the
malicious-interaction rate, and the identity-weighted mechanisms
(EigenTrust/PowerTrust) degrade more gracefully as the malicious fraction
grows than the naive average.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import SystemSettings
from repro.experiments.reporting import format_table
from repro.experiments.scenario import Scenario, ScenarioConfig

#: Mechanisms evaluated by default ("none" is the baseline).
DEFAULT_MECHANISMS = ("none", "average", "beta", "trustme", "eigentrust", "powertrust")


@dataclass
class MechanismOutcome:
    """One (mechanism, malicious fraction) cell of the E-R1 table."""

    mechanism: str
    malicious_fraction: float
    ranking_accuracy: float
    reputation_power: float
    malicious_interaction_rate: float
    success_rate: float


@dataclass
class ReputationEvalResult:
    outcomes: list[MechanismOutcome]

    def for_mechanism(self, mechanism: str) -> list[MechanismOutcome]:
        return [o for o in self.outcomes if o.mechanism == mechanism]

    def baseline_rate(self, malicious_fraction: float) -> float | None:
        for outcome in self.outcomes:
            if (
                outcome.mechanism == "none"
                and abs(outcome.malicious_fraction - malicious_fraction) < 1e-9
            ):
                return outcome.malicious_interaction_rate
        return None

    def improvement_over_baseline(self) -> dict[str, float]:
        """Mean reduction of the malicious-interaction rate vs the baseline."""
        improvements: dict[str, list[float]] = {}
        for outcome in self.outcomes:
            if outcome.mechanism == "none":
                continue
            baseline = self.baseline_rate(outcome.malicious_fraction)
            if baseline is None:
                continue
            improvements.setdefault(outcome.mechanism, []).append(
                baseline - outcome.malicious_interaction_rate
            )
        return {
            mechanism: sum(values) / len(values)
            for mechanism, values in improvements.items()
            if values
        }


def run(
    *,
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    malicious_fractions: Sequence[float] = (0.1, 0.3, 0.5),
    n_users: int = 50,
    rounds: int = 25,
    seed: int = 0,
    backend: str = "auto",
) -> ReputationEvalResult:
    """Run E-R1 over the mechanism × malicious-fraction grid."""
    outcomes: list[MechanismOutcome] = []
    for malicious_fraction in malicious_fractions:
        for mechanism in mechanisms:
            settings = SystemSettings(reputation_mechanism=mechanism)
            result = Scenario(
                ScenarioConfig(
                    n_users=n_users,
                    rounds=rounds,
                    seed=seed,
                    malicious_fraction=malicious_fraction,
                    settings=settings,
                    backend=backend,
                )
            ).run()
            outcomes.append(
                MechanismOutcome(
                    mechanism=mechanism,
                    malicious_fraction=malicious_fraction,
                    ranking_accuracy=result.reputation_accuracy,
                    reputation_power=result.facets.reputation,
                    malicious_interaction_rate=result.malicious_interaction_rate,
                    success_rate=result.simulation.metrics.tail_success_rate(),
                )
            )
    return ReputationEvalResult(outcomes=outcomes)


def summarize(result: ReputationEvalResult) -> dict[str, object]:
    """Flatten E-R1 to record metrics (per-cell rates plus baseline deltas)."""
    metrics: dict[str, object] = {"n_outcomes": len(result.outcomes)}
    # repr keeps the key exact: rounded keys would collide for close fractions.
    for outcome in result.outcomes:
        prefix = f"{outcome.mechanism}[{outcome.malicious_fraction!r}]"
        metrics[f"{prefix}.ranking_accuracy"] = outcome.ranking_accuracy
        metrics[f"{prefix}.reputation_power"] = outcome.reputation_power
        metrics[f"{prefix}.malicious_rate"] = outcome.malicious_interaction_rate
        metrics[f"{prefix}.success_rate"] = outcome.success_rate
    for mechanism, improvement in sorted(result.improvement_over_baseline().items()):
        metrics[f"improvement.{mechanism}"] = improvement
    return metrics


def report(result: ReputationEvalResult) -> str:
    rows = [
        (
            outcome.malicious_fraction,
            outcome.mechanism,
            outcome.ranking_accuracy,
            outcome.reputation_power,
            outcome.malicious_interaction_rate,
            outcome.success_rate,
        )
        for outcome in result.outcomes
    ]
    table = format_table(
        [
            "malicious fraction",
            "mechanism",
            "ranking accuracy",
            "reputation power",
            "malicious tx rate",
            "success rate",
        ],
        rows,
        title="E-R1: reputation mechanisms vs adversary mix",
    )
    improvements = result.improvement_over_baseline()
    improvement_table = format_table(
        ["mechanism", "mean reduction of malicious tx rate vs no-reputation"],
        sorted(improvements.items(), key=lambda item: -item[1]),
        title="E-R1: protection added by each mechanism",
    )
    return table + "\n\n" + improvement_table

"""The end-to-end scenario: every substrate wired together.

A scenario builds a synthetic social network, deploys a reputation mechanism
and a PriServ-style privacy layer, runs the interaction simulation, feeds the
satisfaction tracker from the interaction outcomes, accounts for every
disclosed feedback in the privacy ledger, and finally evaluates the
three-facet trust model on the measured state.  It is the measurement
instrument behind Figures 1 and 2 when the analytic model is replaced by real
simulation, and the workhorse of the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import _profiling
from repro._util import clamp
from repro.core.backend import resolve_backend
from repro.core.config import SystemSettings
from repro.core.facets import (
    FacetScores,
    privacy_facet,
    reputation_facet,
    satisfaction_facet,
)
from repro.core.metric import Aggregator
from repro.core.trust_model import TrustModel, TrustReport
from repro.errors import ConfigurationError
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.metrics import (
    exposure_level,
    policy_respect_rate,
    privacy_satisfaction,
)
from repro.privacy.policy import permissive_policy, restrictive_policy
from repro.privacy.priserv import PriServService
from repro.privacy.purposes import Operation, Purpose
from repro.reputation.accuracy import mean_absolute_error, pairwise_ranking_accuracy
from repro.reputation.base import ReputationSystem
from repro.scenarios.runner import reputation_for_graph
from repro.satisfaction.adequacy import interaction_adequacy
from repro.satisfaction.aggregate import local_satisfaction
from repro.satisfaction.tracker import SatisfactionTracker
from repro.simulation.churn import ChurnModel
from repro.simulation.engine import (
    InteractionSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.peer import Peer
from repro.simulation.transaction import Feedback
from repro.socialnet.generators import SocialNetworkSpec, cached_social_network
from repro.socialnet.graph import SocialGraph


@dataclass
class ScenarioConfig:
    """Everything needed to run one end-to-end scenario."""

    n_users: int = 60
    rounds: int = 30
    seed: int = 0
    topology: str = "barabasi_albert"
    malicious_fraction: float = 0.2
    traitor_fraction: float = 0.0
    whitewasher_fraction: float = 0.0
    selfish_fraction: float = 0.0
    collusion_fraction: float = 0.0
    churn_leave_probability: float = 0.0
    settings: SystemSettings = field(default_factory=SystemSettings)
    aggregator: Aggregator = Aggregator.GEOMETRIC
    interactions_per_peer: float = 1.0
    #: Sensitivity attributed to one disclosed feedback report (behavioural
    #: data about both the rater and the subject).
    feedback_sensitivity: float = 0.15
    #: Reference exposure used to normalize ledger exposure into [0, 1].
    reference_exposure: float = 20.0
    #: Compute backend for the reputation mechanism and the simulator
    #: ("python", "vectorized" or "auto"); results are backend-independent.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        if self.rounds < 1:
            raise ConfigurationError("rounds must be at least 1")
        resolve_backend(self.backend)


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    config: ScenarioConfig
    graph: SocialGraph
    simulation: SimulationResult
    reputation_system: ReputationSystem | None
    reputation_scores: dict[str, float]
    ledger: DisclosureLedger
    priserv: PriServService
    tracker: SatisfactionTracker
    facets: FacetScores
    per_user_facets: dict[str, FacetScores]
    trust: TrustReport
    reputation_accuracy: float
    reputation_error: float

    @property
    def malicious_interaction_rate(self) -> float:
        return self.simulation.metrics.tail_malicious_rate()

    @property
    def global_satisfaction(self) -> float:
        return self.facets.satisfaction


class Scenario:
    """Build, run and evaluate one end-to-end scenario."""

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        self.config = config or ScenarioConfig()

    # -- construction helpers -------------------------------------------------

    def _build_graph(self) -> SocialGraph:
        # Shared read-only instance: scenario pipelines never mutate the
        # graph, so contrast pairs and sweep tasks with the same population
        # spec reuse one generated network.
        spec = SocialNetworkSpec(
            n_users=self.config.n_users,
            topology=self.config.topology,
            malicious_fraction=self.config.malicious_fraction,
            seed=self.config.seed,
        )
        return cached_social_network(spec)

    def _build_reputation(self, graph: SocialGraph) -> ReputationSystem | None:
        return reputation_for_graph(
            graph,
            self.config.settings.reputation_mechanism,
            seed=self.config.seed,
            backend=self.config.backend,
            anonymous=self.config.settings.anonymous_feedback,
        )

    def _build_priserv(
        self, graph: SocialGraph, reputation: ReputationSystem | None
    ) -> PriServService:
        def trust_oracle(peer_id: str) -> float:
            if reputation is None:
                return 0.5
            return reputation.score(peer_id)

        def friendship(requester: str, owner: str) -> bool:
            return requester in graph and owner in graph and graph.are_connected(requester, owner)

        service = PriServService(
            peer_ids=graph.user_ids(),
            trust_oracle=trust_oracle,
            friendship_oracle=friendship,
        )
        strictness = self.config.settings.policy_strictness
        for user in graph.users():
            # The population splits between permissive and restrictive
            # policies according to the configured strictness and each user's
            # own privacy concern.
            wants_restrictive = 0.5 * strictness + 0.5 * user.privacy_concern >= 0.5
            policy = (
                restrictive_policy(user.user_id)
                if wants_restrictive
                else permissive_policy(user.user_id)
            )
            service.register_policy(policy)
            for attribute in user.profile:
                service.publish(
                    user.user_id,
                    f"{user.user_id}/{attribute.name}",
                    attribute.value,
                    sensitivity=attribute.sensitivity.exposure_weight,
                )
        return service

    # -- run -------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        config = self.config
        with _profiling.phase("setup"):
            graph = self._build_graph()
            reputation = self._build_reputation(graph)
            priserv = self._build_priserv(graph, reputation)
        ledger = priserv.ledger
        tracker = SatisfactionTracker()

        def on_disclosure(feedback: Feedback, consumer: Peer, provider: Peer) -> None:
            # Disclosing a feedback report reveals behavioural information
            # about the rater (its consumption pattern) and the subject; both
            # entries land in the ledger so exposure reflects what the
            # reputation mechanism actually learned.
            recipient = "reputation-service"
            ledger.record(
                DisclosureRecord(
                    time=feedback.time,
                    owner=consumer.base_id,
                    recipient=recipient,
                    data_id=f"feedback/{feedback.transaction_id}/rater",
                    sensitivity=config.feedback_sensitivity,
                    purpose=Purpose.REPUTATION_COMPUTATION,
                    operation=Operation.AGGREGATE,
                    policy_compliant=True,
                )
            )
            ledger.record(
                DisclosureRecord(
                    time=feedback.time,
                    owner=provider.base_id,
                    recipient=recipient,
                    data_id=f"feedback/{feedback.transaction_id}/subject",
                    sensitivity=config.feedback_sensitivity,
                    purpose=Purpose.REPUTATION_COMPUTATION,
                    operation=Operation.AGGREGATE,
                    policy_compliant=True,
                )
            )

        sim_config = SimulationConfig(
            rounds=config.rounds,
            sharing_level=config.settings.sharing_level,
            anonymous_feedback=config.settings.anonymous_feedback,
            traitor_fraction=config.traitor_fraction,
            whitewasher_fraction=config.whitewasher_fraction,
            selfish_fraction=config.selfish_fraction,
            collusion_fraction=config.collusion_fraction,
            churn=ChurnModel(leave_probability=config.churn_leave_probability),
            interactions_per_peer=config.interactions_per_peer,
            seed=config.seed,
            backend=config.backend,
        )
        simulator = InteractionSimulator(
            graph,
            sim_config,
            reputation=reputation,
            disclosure_observer=on_disclosure,
        )
        with _profiling.phase("simulate"):
            simulation = simulator.run()
        with _profiling.phase("metrics"):
            priserv.tick(config.rounds)

            # Satisfaction: each consumer's adequacy per transaction blends
            # its evolving preference for the partner with the delivered
            # quality.
            preferences: dict[str, dict[str, float]] = {}
            for transaction in simulation.transactions:
                consumer = simulator.directory.get(transaction.consumer)
                provider = simulator.directory.get(transaction.provider)
                consumer_prefs = preferences.setdefault(consumer.base_id, {})
                previous = consumer_prefs.get(provider.base_id, 0.5)
                adequacy = interaction_adequacy(previous, transaction.quality)
                tracker.observe(consumer.base_id, adequacy)
                consumer_prefs[provider.base_id] = clamp(
                    0.7 * previous + 0.3 * transaction.quality
                )

            reputation_scores = reputation.scores() if reputation is not None else {}
            ground_truth = simulation.ground_truth_honesty

            facets = self._global_facets(
                simulation, reputation, reputation_scores, ledger, tracker
            )
            per_user_facets = self._per_user_facets(
                graph, simulation, reputation, reputation_scores, ledger, tracker
            )

            model = TrustModel(config.settings, aggregator=config.aggregator)
            trust = model.evaluate(
                facets,
                per_user_facets=per_user_facets,
                trustworthy_fraction=graph.honest_fraction(),
            )

        return ScenarioResult(
            config=config,
            graph=graph,
            simulation=simulation,
            reputation_system=reputation,
            reputation_scores=reputation_scores,
            ledger=ledger,
            priserv=priserv,
            tracker=tracker,
            facets=facets,
            per_user_facets=per_user_facets,
            trust=trust,
            reputation_accuracy=pairwise_ranking_accuracy(reputation_scores, ground_truth),
            reputation_error=mean_absolute_error(reputation_scores, ground_truth),
        )

    # -- facet computation -------------------------------------------------------

    def _information_requirement(self, reputation: ReputationSystem | None) -> float:
        if reputation is None:
            return 0.0
        return reputation.information_requirement

    def _global_facets(
        self,
        simulation: SimulationResult,
        reputation: ReputationSystem | None,
        reputation_scores: dict[str, float],
        ledger: DisclosureLedger,
        tracker: SatisfactionTracker,
    ) -> FacetScores:
        config = self.config
        privacy_concerns = {user.user_id: user.privacy_concern for user in simulation.graph.users()}
        privacy = privacy_facet(
            sharing_level=config.settings.sharing_level,
            information_requirement=self._information_requirement(reputation),
            anonymous_feedback=config.settings.anonymous_feedback,
            ledger=ledger,
            privacy_concerns=privacy_concerns,
        )
        reputation_score = reputation_facet(reputation_scores, simulation.ground_truth_honesty)
        satisfactions = {
            user_id: tracker.satisfaction(user_id)
            for user_id in simulation.graph.user_ids()
        }
        satisfaction = satisfaction_facet(satisfactions)
        return FacetScores(privacy=privacy, reputation=reputation_score, satisfaction=satisfaction)

    def _per_user_facets(
        self,
        graph: SocialGraph,
        simulation: SimulationResult,
        reputation: ReputationSystem | None,
        reputation_scores: dict[str, float],
        ledger: DisclosureLedger,
        tracker: SatisfactionTracker,
    ) -> dict[str, FacetScores]:
        config = self.config
        ground_truth = simulation.ground_truth_honesty
        satisfactions = {user_id: tracker.satisfaction(user_id) for user_id in graph.user_ids()}
        global_reputation = reputation_facet(reputation_scores, ground_truth)
        per_user: dict[str, FacetScores] = {}
        for user in graph.users():
            user_privacy = privacy_satisfaction(
                exposure=exposure_level(
                    ledger, user.user_id, reference_exposure=config.reference_exposure
                ),
                respect_rate=policy_respect_rate(ledger, user.user_id),
                privacy_concern=user.privacy_concern,
            )
            # A user's perception of the reputation mechanism blends its
            # global power with how well it served *her*: the fraction of
            # her consumed transactions that went well.
            peer = simulation.directory.get(user.user_id)
            personal_experience = peer.observed_success_rate if peer.consumed_count else 0.5
            user_reputation = clamp(0.5 * global_reputation + 0.5 * personal_experience)
            user_satisfaction = local_satisfaction(
                user.user_id, satisfactions, graph.neighbors(user.user_id)
            )
            per_user[user.user_id] = FacetScores(
                privacy=user_privacy,
                reputation=user_reputation,
                satisfaction=user_satisfaction,
            )
        return per_user

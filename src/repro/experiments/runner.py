"""The experiment registry: one entry per DESIGN.md experiment id.

Every experiment module exposes ``run(**kwargs) -> result``,
``report(result) -> str`` and ``summarize(result) -> dict`` (a flat mapping
of JSON scalars); the registry maps human-facing names to those triples so
the CLI (``python -m repro.experiments``), the sweep engine
(:mod:`repro.experiments.sweep`) and EXPERIMENTS.md can refer to experiments
uniformly.  ``run_experiment`` keeps the historical text-report API;
``run_experiment_structured`` is the machine-readable path the sweep engine
is built on.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from collections.abc import Callable

from repro.experiments import (
    ablations,
    claims,
    figure1,
    figure2_left,
    figure2_right,
    privacy_eval,
    reputation_eval,
    robustness,
    satisfaction_eval,
)


class RunResult(dict[str, object]):
    """Flat summary metrics of one experiment run, typed for the facade.

    A ``dict`` subclass: the *old* public shape of
    :func:`run_experiment_structured` — a bare ``metric name -> scalar``
    mapping — is a strict subset of this object, so every legacy consumer
    (sweep engine, CI artifacts, ``json.dumps``) keeps working bytewise.
    New code gets the run's identity as attributes instead of threading it
    out of band: which experiment ran, the keyword parameters actually
    passed, and the seed (``None`` for the analytic experiments).
    ``metrics()`` is the explicit deprecation alias for the legacy
    plain-dict shape.
    """

    #: Name of the registered experiment that produced these metrics.
    experiment: str
    #: Keyword arguments the experiment's ``run()`` actually received.
    params: dict[str, object]
    #: The seed forwarded to ``run()``, or ``None`` when it takes none.
    seed: int | None

    def __init__(
        self,
        metrics: dict[str, object] | None = None,
        *,
        experiment: str = "",
        params: dict[str, object] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(metrics if metrics is not None else {})
        self.experiment = experiment
        self.params = dict(params) if params is not None else {}
        self.seed = seed

    def metrics(self) -> dict[str, object]:
        """The legacy bare-dict shape (plain copy, no attributes)."""
        return dict(self)


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    name: str
    experiment_ids: tuple
    description: str
    run: Callable[..., object]
    report: Callable[[object], str]
    #: Adapter flattening the ``run()`` result to a dict of JSON scalars —
    #: the structured twin of ``report`` used by sweeps and CI artifacts.
    summarize: Callable[[object], dict[str, object]]
    #: Keyword arguments that make the experiment finish quickly (used by the
    #: ``--quick`` CLI flag and by integration tests).
    quick_kwargs: dict[str, object]

    def accepted_parameters(self) -> dict[str, inspect.Parameter]:
        """The keyword parameters this experiment's ``run()`` accepts."""
        return dict(inspect.signature(self.run).parameters)

    def accepts(self, name: str) -> bool:
        return name in self.accepted_parameters()


EXPERIMENTS: dict[str, ExperimentEntry] = {
    "figure1": ExperimentEntry(
        name="figure1",
        experiment_ids=("E-F1",),
        description="Figure 1: couplings among satisfaction, reputation, privacy and trust",
        run=figure1.run,
        report=figure1.report,
        summarize=figure1.summarize,
        quick_kwargs={"sharing_levels": [0.3, 0.7], "n_users": 25, "rounds": 10},
    ),
    "figure2-left": ExperimentEntry(
        name="figure2-left",
        experiment_ids=("E-F2L",),
        description="Figure 2 (left): the Area-A good-tradeoff region",
        run=figure2_left.run,
        report=figure2_left.report,
        summarize=figure2_left.summarize,
        quick_kwargs={"sharing_levels": [0.0, 0.25, 0.5, 0.75, 1.0]},
    ),
    "figure2-right": ExperimentEntry(
        name="figure2-right",
        experiment_ids=("E-F2R",),
        description="Figure 2 (right): privacy/reputation/satisfaction vs shared information",
        run=figure2_right.run,
        report=figure2_right.report,
        summarize=figure2_right.summarize,
        quick_kwargs={"simulate": False},
    ),
    "claims": ExperimentEntry(
        name="claims",
        experiment_ids=("E-C1", "E-C2", "E-C3", "E-C4", "E-C5"),
        description="The five qualitative couplings of Section 3",
        run=claims.run,
        report=claims.report,
        summarize=claims.summarize,
        quick_kwargs={"n_users": 25, "rounds": 10},
    ),
    "reputation": ExperimentEntry(
        name="reputation",
        experiment_ids=("E-R1",),
        description="Reputation mechanisms vs adversary mixes",
        run=reputation_eval.run,
        report=reputation_eval.report,
        summarize=reputation_eval.summarize,
        quick_kwargs={
            "mechanisms": ("none", "average", "eigentrust"),
            "malicious_fractions": (0.3,),
            "n_users": 30,
            "rounds": 12,
        },
    ),
    "privacy": ExperimentEntry(
        name="privacy",
        experiment_ids=("E-P1",),
        description="PriServ-style enforcement and OECD compliance",
        run=privacy_eval.run,
        report=privacy_eval.report,
        summarize=privacy_eval.summarize,
        quick_kwargs={"n_users": 25, "n_requests": 150},
    ),
    "satisfaction": ExperimentEntry(
        name="satisfaction",
        experiment_ids=("E-S1",),
        description="Allocation strategies vs long-run satisfaction",
        run=satisfaction_eval.run,
        report=satisfaction_eval.report,
        summarize=satisfaction_eval.summarize,
        quick_kwargs={"n_providers": 8, "n_consumers": 15, "rounds": 15},
    ),
    "robustness": ExperimentEntry(
        name="robustness",
        experiment_ids=("E-X1",),
        description="Attack-scenario catalog vs reputation mechanisms (robustness matrix)",
        run=robustness.run,
        report=robustness.report,
        summarize=robustness.summarize,
        quick_kwargs={
            "scenarios": ("collusion-ring", "whitewash-wave"),
            "mechanisms": ("average", "eigentrust"),
            "n_users": 24,
            "rounds": 12,
        },
    ),
    "ablations": ExperimentEntry(
        name="ablations",
        experiment_ids=("E-A1", "E-A2"),
        description="Aggregator and anonymous-feedback ablations",
        run=ablations.run,
        report=ablations.report,
        summarize=ablations.summarize,
        quick_kwargs={"n_users": 25, "rounds": 10},
    ),
}


def get_experiment(name: str) -> ExperimentEntry:
    """Look up a registered experiment or raise a helpful ``ValueError``."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}") from None


def _merged_kwargs(
    entry: ExperimentEntry, *, quick: bool, overrides: dict[str, object]
) -> dict[str, object]:
    kwargs = dict(entry.quick_kwargs) if quick else {}
    kwargs.update(overrides)
    return kwargs


def run_experiment(name: str, *, quick: bool = False, **overrides: object) -> str:
    """Run one registered experiment and return its text report."""
    entry = get_experiment(name)
    result = entry.run(**_merged_kwargs(entry, quick=quick, overrides=overrides))
    return entry.report(result)


def run_experiment_structured(
    name: str,
    *,
    quick: bool = False,
    seed: int | None = None,
    backend: str | None = None,
    **overrides: object,
) -> RunResult:
    """Run one experiment and return its flat ``summarize()`` metrics.

    ``seed`` is forwarded to ``run()`` only when the experiment accepts a
    seed parameter (the analytic experiments do not), so sweep drivers can
    pass derived seeds unconditionally.  ``backend`` works the same way: it
    selects the compute backend on experiments that take one and is ignored
    (harmlessly — results are backend-independent by contract) elsewhere.

    Returns a :class:`RunResult` — a ``dict`` subclass carrying the metric
    mapping (the historical bare-dict return shape) plus the run's identity
    as attributes.
    """
    entry = get_experiment(name)
    kwargs = _merged_kwargs(entry, quick=quick, overrides=overrides)
    if seed is not None and entry.accepts("seed"):
        kwargs.setdefault("seed", seed)
    if backend is not None and entry.accepts("backend"):
        kwargs.setdefault("backend", backend)
    result = entry.run(**kwargs)
    return RunResult(
        entry.summarize(result),
        experiment=name,
        params=kwargs,
        seed=kwargs.get("seed") if isinstance(kwargs.get("seed"), int) else None,
    )

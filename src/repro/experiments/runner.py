"""The experiment registry: one entry per DESIGN.md experiment id.

Every experiment module exposes ``run(**kwargs) -> result`` and
``report(result) -> str``; the registry maps human-facing names to those
pairs so the CLI (``python -m repro.experiments``) and EXPERIMENTS.md can
refer to experiments uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    claims,
    figure1,
    figure2_left,
    figure2_right,
    privacy_eval,
    reputation_eval,
    satisfaction_eval,
)


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    name: str
    experiment_ids: tuple
    description: str
    run: Callable[..., object]
    report: Callable[[object], str]
    #: Keyword arguments that make the experiment finish quickly (used by the
    #: ``--quick`` CLI flag and by integration tests).
    quick_kwargs: Dict[str, object]


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    "figure1": ExperimentEntry(
        name="figure1",
        experiment_ids=("E-F1",),
        description="Figure 1: couplings among satisfaction, reputation, privacy and trust",
        run=figure1.run,
        report=figure1.report,
        quick_kwargs={"sharing_levels": [0.3, 0.7], "n_users": 25, "rounds": 10},
    ),
    "figure2-left": ExperimentEntry(
        name="figure2-left",
        experiment_ids=("E-F2L",),
        description="Figure 2 (left): the Area-A good-tradeoff region",
        run=figure2_left.run,
        report=figure2_left.report,
        quick_kwargs={"sharing_levels": [0.0, 0.25, 0.5, 0.75, 1.0]},
    ),
    "figure2-right": ExperimentEntry(
        name="figure2-right",
        experiment_ids=("E-F2R",),
        description="Figure 2 (right): privacy/reputation/satisfaction vs shared information",
        run=figure2_right.run,
        report=figure2_right.report,
        quick_kwargs={"simulate": False},
    ),
    "claims": ExperimentEntry(
        name="claims",
        experiment_ids=("E-C1", "E-C2", "E-C3", "E-C4", "E-C5"),
        description="The five qualitative couplings of Section 3",
        run=claims.run,
        report=claims.report,
        quick_kwargs={"n_users": 25, "rounds": 10},
    ),
    "reputation": ExperimentEntry(
        name="reputation",
        experiment_ids=("E-R1",),
        description="Reputation mechanisms vs adversary mixes",
        run=reputation_eval.run,
        report=reputation_eval.report,
        quick_kwargs={
            "mechanisms": ("none", "average", "eigentrust"),
            "malicious_fractions": (0.3,),
            "n_users": 30,
            "rounds": 12,
        },
    ),
    "privacy": ExperimentEntry(
        name="privacy",
        experiment_ids=("E-P1",),
        description="PriServ-style enforcement and OECD compliance",
        run=privacy_eval.run,
        report=privacy_eval.report,
        quick_kwargs={"n_users": 25, "n_requests": 150},
    ),
    "satisfaction": ExperimentEntry(
        name="satisfaction",
        experiment_ids=("E-S1",),
        description="Allocation strategies vs long-run satisfaction",
        run=satisfaction_eval.run,
        report=satisfaction_eval.report,
        quick_kwargs={"n_providers": 8, "n_consumers": 15, "rounds": 15},
    ),
    "ablations": ExperimentEntry(
        name="ablations",
        experiment_ids=("E-A1", "E-A2"),
        description="Aggregator and anonymous-feedback ablations",
        run=ablations.run,
        report=ablations.report,
        quick_kwargs={"n_users": 25, "rounds": 10},
    ),
}


def run_experiment(name: str, *, quick: bool = False, **overrides) -> str:
    """Run one registered experiment and return its text report."""
    try:
        entry = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    kwargs = dict(entry.quick_kwargs) if quick else {}
    kwargs.update(overrides)
    result = entry.run(**kwargs)
    return entry.report(result)

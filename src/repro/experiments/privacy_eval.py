"""Experiment E-P1: PriServ-style enforcement and OECD compliance.

Section 2.3 requires privacy policies to be enforced (authorized users,
purposes, operations, minimal trust) and systems to follow the OECD
principles.  The experiment builds a population with mixed permissive /
restrictive policies, generates a stream of access requests — legitimate
friend requests, stranger requests, low-trust requests and commercial-purpose
requests — plus a configurable fraction of outright breaches, and reports

* the grant/denial rates and the histogram of denial reasons,
* the policy-respect rate and mean exposure from the disclosure ledger, and
* the per-principle OECD compliance scores.

Expected shape: denials concentrate on the configured violation categories,
the respect rate degrades linearly with the injected breach rate, and the
security-safeguards principle is the one that tracks the breaches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._util import mean
from repro.experiments.reporting import format_table
from repro.privacy.metrics import exposure_level, policy_respect_rate
from repro.privacy.oecd import ComplianceReport, check_compliance
from repro.privacy.policy import permissive_policy, restrictive_policy
from repro.privacy.priserv import PriServService
from repro.privacy.purposes import Operation, Purpose
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network


@dataclass
class PrivacyEvalResult:
    requests: int
    granted: int
    denied: int
    denial_reasons: dict[str, int]
    breaches_injected: int
    policy_respect: float
    mean_exposure: float
    compliance: ComplianceReport

    @property
    def denial_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.denied / self.requests


def run(
    *,
    n_users: int = 40,
    n_requests: int = 400,
    restrictive_fraction: float = 0.5,
    breach_rate: float = 0.05,
    seed: int = 0,
) -> PrivacyEvalResult:
    """Run E-P1 with a synthetic request stream over a social graph."""
    rng = random.Random(seed)
    graph = generate_social_network(
        SocialNetworkSpec(n_users=n_users, seed=seed, malicious_fraction=0.2)
    )

    def trust_oracle(peer_id: str) -> float:
        if peer_id in graph:
            return graph.user(peer_id).honesty
        return 0.5

    def friendship(requester: str, owner: str) -> bool:
        return graph.are_connected(requester, owner)

    service = PriServService(
        peer_ids=graph.user_ids(),
        trust_oracle=trust_oracle,
        friendship_oracle=friendship,
    )

    users = graph.users()
    for index, user in enumerate(users):
        restrictive = (index / max(1, len(users) - 1)) < restrictive_fraction
        policy = (
            restrictive_policy(user.user_id)
            if restrictive
            else permissive_policy(user.user_id)
        )
        service.register_policy(policy)
        for attribute in user.profile:
            service.publish(
                user.user_id,
                f"{user.user_id}/{attribute.name}",
                attribute.value,
                sensitivity=attribute.sensitivity.exposure_weight,
            )

    items = service.published_items()
    granted = 0
    denied = 0
    breaches = 0
    for _ in range(n_requests):
        item = rng.choice(items)
        requester = rng.choice([uid for uid in graph.user_ids() if uid != item.owner])
        if rng.random() < breach_rate:
            service.record_breach(item.owner, requester, item.data_id)
            breaches += 1
            continue
        purpose = rng.choice(
            [
                Purpose.SOCIAL_INTERACTION,
                Purpose.SERVICE_PROVISION,
                Purpose.REPUTATION_COMPUTATION,
                Purpose.COMMERCIAL,
            ]
        )
        decision, _content = service.request(
            requester, item.data_id, operation=Operation.READ, purpose=purpose
        )
        if decision.permitted:
            granted += 1
        else:
            denied += 1
        service.tick()

    exposures = [exposure_level(service.ledger, owner) for owner in service.ledger.owners()]
    return PrivacyEvalResult(
        requests=granted + denied,
        granted=granted,
        denied=denied,
        denial_reasons=service.denial_reasons(),
        breaches_injected=breaches,
        policy_respect=policy_respect_rate(service.ledger),
        mean_exposure=mean(exposures, default=0.0),
        compliance=check_compliance(service),
    )


def summarize(result: PrivacyEvalResult) -> dict[str, object]:
    """Flatten E-P1 to record metrics (enforcement rates and OECD scores)."""
    metrics: dict[str, object] = {
        "requests": result.requests,
        "granted": result.granted,
        "denied": result.denied,
        "denial_rate": result.denial_rate,
        "breaches_injected": result.breaches_injected,
        "policy_respect": result.policy_respect,
        "mean_exposure": result.mean_exposure,
        "oecd_overall": result.compliance.overall,
    }
    for reason, count in sorted(result.denial_reasons.items()):
        metrics[f"denials.{reason}"] = count
    for principle, score in result.compliance.as_rows():
        metrics[f"oecd.{principle}"] = score
    return metrics


def report(result: PrivacyEvalResult) -> str:
    summary = format_table(
        ["measure", "value"],
        [
            ("policy-evaluated requests", result.requests),
            ("granted", result.granted),
            ("denied", result.denied),
            ("denial rate", result.denial_rate),
            ("breaches injected (bypassing policy)", result.breaches_injected),
            ("policy respect rate (ledger)", result.policy_respect),
            ("mean owner exposure", result.mean_exposure),
        ],
        title="E-P1: PriServ-style policy enforcement",
    )
    reasons = format_table(
        ["denial reason", "count"],
        sorted(result.denial_reasons.items(), key=lambda item: -item[1]),
        title="E-P1: why requests were denied",
    )
    compliance = format_table(
        ["OECD principle", "score"],
        result.compliance.as_rows(),
        title=f"E-P1: OECD compliance (overall {result.compliance.overall:.3f})",
    )
    return "\n\n".join([summary, reasons, compliance])

"""Parallel sweep campaigns over the registered experiments.

The paper's object of study is a *coupling surface* — how privacy, trust,
reputation and satisfaction respond to the system settings — and a surface
is mapped by sweeping parameters, not by running one point at a time.  This
module turns any registered experiment into a campaign:

* a :class:`SweepSpec` names the experiment and the parameter space —
  explicit value grids (cartesian product), uniform random samples, or a
  Latin-hypercube design over continuous ranges;
* :func:`expand_tasks` materializes the space into :class:`SweepTask`s, each
  with a per-task seed derived (via SHA-256) from the campaign seed, the
  task's parameters and its index — so every task is reproducible in
  isolation and independent of worker scheduling;
* :func:`run_sweep` executes the tasks — inline for ``jobs=1``, through a
  :class:`SweepExecutor` otherwise — and collects
  :class:`~repro.experiments.results.ExperimentRecord`s in task order.

The executor keeps a pool of **persistent worker processes** that survive
across sweeps (pass one ``SweepExecutor`` to several :func:`run_sweep`
calls to amortize interpreter/import startup), runs each worker with the
per-process scenario **run cache** enabled (tasks that differ only in
post-simulation metric knobs share the underlying simulation), schedules
tasks in contiguous **chunks** (fewer IPC round-trips, better cache
locality), and supports **streaming record writes**: completed records are
emitted in task order while later tasks are still running.

Determinism contract: the records (and hence the serialized JSON) depend
only on the spec — never on the worker count, the chunk size, the compute
backend or the completion order.  The caches are memos of pure functions,
so a cache hit returns exactly what a fresh execution would.  Timing lives
on :class:`SweepResult` for benchmarks but is excluded from the serialized
campaign output.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import hashlib
import itertools
import json
import math
import random
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from collections.abc import Callable, Sequence

from repro import _profiling, faults
from repro.core import accel
from repro.core.backend import resolve_backend
from repro.errors import ConfigurationError
from repro.experiments.journal import SweepJournal
from repro.experiments.results import (
    SCALAR_TYPES,
    ExperimentRecord,
    write_records_csv,
    write_records_json,
)
from repro.experiments.runner import get_experiment, run_experiment_structured

#: Supported parameter-space samplers.
SAMPLERS = ("grid", "random", "latin")


@dataclass(frozen=True)
class ParamRange:
    """A continuous ``[low, high]`` interval for random/Latin sampling."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ConfigurationError(f"empty parameter range [{self.low}, {self.high}]")


@dataclass(frozen=True)
class SweepTask:
    """One parameter point of a campaign, ready to execute anywhere."""

    experiment: str
    index: int
    params: dict[str, object]
    seed: int
    #: Whether the experiment's quick_kwargs form the base the params
    #: override (campaigns default to quick bases so grids stay tractable).
    quick_base: bool = True
    #: Compute backend the task runs on.  Execution detail, not campaign
    #: identity: records are backend-independent by contract, so the backend
    #: never appears in params or in the serialized campaign header.
    backend: str = "auto"


@dataclass
class SweepSpec:
    """A campaign: an experiment plus the parameter space to cover."""

    experiment: str
    grids: dict[str, list[object]] = field(default_factory=dict)
    ranges: dict[str, ParamRange] = field(default_factory=dict)
    sampler: str = "grid"
    n_samples: int = 0
    seed: int = 0
    quick_base: bool = True
    #: Compute backend for every task ("python", "vectorized" or "auto").
    #: Like ``jobs``, this is execution telemetry: it must not change the
    #: records and is therefore excluded from the campaign metadata.
    backend: str = "auto"

    def __post_init__(self) -> None:
        resolve_backend(self.backend)
        if self.sampler not in SAMPLERS:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; expected one of {SAMPLERS}"
            )
        if self.sampler == "grid" and self.ranges:
            raise ConfigurationError(
                "continuous ranges require --sample random or latin; "
                "the grid sampler only takes explicit value lists"
            )
        if self.sampler != "grid" and self.n_samples < 1:
            raise ConfigurationError(f"the {self.sampler} sampler needs n_samples >= 1")
        if self.sampler == "grid" and self.n_samples > 0:
            raise ConfigurationError(
                "n_samples only applies to --sample random/latin; "
                "the grid sampler always runs the full cartesian product"
            )
        if self.sampler == "latin":
            for key, values in self.grids.items():
                if len(values) > self.n_samples:
                    raise ConfigurationError(
                        f"latin design with n_samples={self.n_samples} cannot "
                        f"cover the {len(values)} values of grid parameter "
                        f"{key!r}; raise --n-samples or trim the grid"
                    )
        if not self.grids and not self.ranges:
            raise ConfigurationError("a sweep needs at least one --grid or --range parameter")
        overlap = set(self.grids) & set(self.ranges)
        if overlap:
            raise ConfigurationError(f"parameters given both as grid and range: {sorted(overlap)}")
        for key, values in self.grids.items():
            for value in values:
                if not isinstance(value, SCALAR_TYPES):
                    raise ConfigurationError(
                        f"grid parameter {key!r} has non-scalar value {value!r}; "
                        "sweep records carry JSON scalars only"
                    )
        # Fail fast on parameters the experiment cannot accept.
        entry = get_experiment(self.experiment)
        for name in sorted(set(self.grids) | set(self.ranges)):
            if not entry.accepts(name):
                raise ConfigurationError(
                    f"experiment {self.experiment!r} takes no parameter {name!r}; "
                    f"accepted: {sorted(entry.accepted_parameters())}"
                )

    def campaign_metadata(self) -> dict[str, object]:
        """Deterministic campaign header for serialized results (no timing,
        no worker counts — those must not leak into the output file)."""
        return {
            "experiment": self.experiment,
            "sampler": self.sampler,
            "seed": self.seed,
            "quick_base": self.quick_base,
            "grids": {key: list(values) for key, values in self.grids.items()},
            "ranges": {
                key: [value.low, value.high] for key, value in self.ranges.items()
            },
            "n_samples": self.n_samples,
        }


def derive_task_seed(
    campaign_seed: int, experiment: str, index: int, params: dict[str, object]
) -> int:
    """A per-task seed that is stable across processes and Python runs.

    SHA-256 over the canonical JSON of (campaign seed, experiment, index,
    params) — unlike ``hash()``, immune to ``PYTHONHASHSEED``.
    """
    canonical = json.dumps(
        {
            "campaign_seed": campaign_seed,
            "experiment": experiment,
            "index": index,
            "params": params,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _grid_points(grids: dict[str, list[object]]) -> list[dict[str, object]]:
    keys = list(grids)
    combos = itertools.product(*(grids[key] for key in keys))
    return [dict(zip(keys, combo, strict=True)) for combo in combos]


def _random_points(spec: SweepSpec) -> list[dict[str, object]]:
    rng = random.Random(spec.seed)
    points = []
    for _ in range(spec.n_samples):
        point: dict[str, object] = {}
        for key in sorted(spec.grids):
            point[key] = rng.choice(spec.grids[key])
        for key in sorted(spec.ranges):
            bounds = spec.ranges[key]
            point[key] = rng.uniform(bounds.low, bounds.high)
        points.append(point)
    return points


def _latin_points(spec: SweepSpec) -> list[dict[str, object]]:
    """Latin-hypercube design: each continuous range is cut into
    ``n_samples`` strata and every stratum is visited exactly once per
    parameter; discrete grid parameters are stratified over their values
    (spec validation guarantees ``n_samples >= len(values)``, so every
    value appears at least once)."""
    rng = random.Random(spec.seed)
    n = spec.n_samples
    columns: dict[str, list[object]] = {}
    for key in sorted(spec.grids):
        values = spec.grids[key]
        # Repeat the value list to length n, then shuffle: balanced coverage.
        repeated = [values[i % len(values)] for i in range(n)]
        rng.shuffle(repeated)
        columns[key] = repeated
    for key in sorted(spec.ranges):
        bounds = spec.ranges[key]
        strata = list(range(n))
        rng.shuffle(strata)
        columns[key] = [
            bounds.low + (stratum + rng.random()) / n * (bounds.high - bounds.low)
            for stratum in strata
        ]
    return [{key: columns[key][i] for key in columns} for i in range(n)]


def expand_tasks(spec: SweepSpec) -> list[SweepTask]:
    """Materialize the campaign's parameter space into ordered tasks."""
    if spec.sampler == "grid":
        points = _grid_points(spec.grids)
    elif spec.sampler == "random":
        points = _random_points(spec)
    else:
        points = _latin_points(spec)
    return [
        SweepTask(
            experiment=spec.experiment,
            index=index,
            params=point,
            seed=derive_task_seed(spec.seed, spec.experiment, index, point),
            quick_base=spec.quick_base,
            backend=spec.backend,
        )
        for index, point in enumerate(points)
    ]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry behaviour for transient failures.

    The default — a single attempt, no backoff — reproduces the historical
    capture-and-record behaviour exactly.  With ``max_attempts > 1`` a task
    that raises is re-executed after an exponential backoff pause; only
    when the attempts (or the optional wall-clock ``deadline``, in seconds,
    measured across the task's attempts) are exhausted does it become an
    error record.  Retries never change a record's bytes: a task either
    eventually returns its deterministic ok record, or fails with the
    *final* attempt's failure detail.  Deadline truncation is the one
    wall-clock-dependent part — campaigns that must be byte-reproducible
    under failure leave ``deadline`` unset.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")

    def backoff(self, attempt: int) -> float:
        """Pause before re-running after the ``attempt``-th failure (1-based)."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))


def task_failure_record(
    task: SweepTask, used_seed: int | None, exc: BaseException, *, retries: int
) -> ExperimentRecord:
    """Structured error record for a task that exhausted its attempts.

    Beyond the one-line ``error`` summary, the ``failure`` block carries the
    exception class, message, full formatted traceback and the retry count —
    enough to diagnose a failed point without re-running the campaign.
    """
    return ExperimentRecord(
        experiment=task.experiment,
        task_index=task.index,
        params=task.params,
        seed=used_seed,
        status="error",
        metrics={},
        error=f"{type(exc).__name__}: {exc}",
        failure={
            "exception": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(traceback.format_exception(exc)),
            "retries": retries,
        },
    )


def execute_task(task: SweepTask, retry: RetryPolicy | None = None) -> ExperimentRecord:
    """Run one task to a record; failures become ``status="error"`` records
    so a single bad point never sinks a campaign.  Top-level so it pickles
    for the process pool."""
    policy = retry or RetryPolicy()
    entry = get_experiment(task.experiment)
    # An explicitly swept seed wins over the derived task seed (the user
    # asked for that exact value); otherwise the derived seed applies when
    # the experiment takes one.  The record reports the seed actually used.
    params = dict(task.params)
    seed = params.pop("seed", None)
    if seed is None:
        seed = task.seed
    used_seed: int | None = seed if entry.accepts("seed") else None
    started = _profiling.clock()
    for attempt in range(1, policy.max_attempts + 1):
        run_task = task
        try:
            # Inside the try: an injected "raise" at this site is exactly a
            # transient task failure, so it flows through the retry policy
            # like any real exception would.
            action = faults.fire(
                "sweep.task",
                experiment=task.experiment,
                task_index=task.index,
                attempt=attempt,
            )
            if action == "degrade":
                # Simulated accelerator loss: the point must still produce
                # its exact record on the pure-Python backend (backend
                # independence is the determinism contract, so degradation
                # is invisible in the output).
                run_task = replace(task, backend="python")
            metrics = run_experiment_structured(
                run_task.experiment,
                quick=run_task.quick_base,
                seed=seed,
                backend=run_task.backend,
                **params,
            )
            return ExperimentRecord(
                experiment=task.experiment,
                task_index=task.index,
                params=task.params,
                seed=used_seed,
                status="ok",
                metrics=metrics,
            )
        except Exception as exc:  # noqa: BLE001 - campaign isolation boundary
            out_of_time = (
                policy.deadline is not None
                and _profiling.clock() - started >= policy.deadline
            )
            if attempt >= policy.max_attempts or out_of_time:
                return task_failure_record(task, used_seed, exc, retries=attempt - 1)
            time.sleep(policy.backoff(attempt))
    raise AssertionError("unreachable: the attempt loop always returns")


def _worker_init() -> None:
    """Initializer for persistent sweep workers.

    Turns the per-process scenario run cache on: within one worker, sweep
    points that share a simulation identity (same scenario, mechanism,
    size, seed — differing only in metric knobs) reuse the recorded trace.
    The cache is a pure-function memo, so records are unchanged; an
    explicit environment opt-out (``REPRO_ACCEL=no-run-cache`` or ``off``,
    inherited through the fork/environment) is honoured.

    Fault-plan firing counters are per-process state: a freshly forked
    worker starts from zero rather than inheriting its parent's counts.
    """
    if not accel.env_disabled("run_cache"):
        accel.set_flags(run_cache=True)
    faults.reset_worker_state()


def _execute_chunk(
    tasks: list[SweepTask], retry: RetryPolicy | None = None
) -> list[ExperimentRecord]:
    """Run one contiguous chunk of tasks in a worker; top-level so it
    pickles.  One submission per chunk instead of per task keeps IPC and
    future bookkeeping off the per-task critical path."""
    return [execute_task(task, retry) for task in tasks]


#: Record-streaming callback: called with each record in task-index order.
RecordCallback = Callable[[ExperimentRecord], None]


class SweepExecutor:
    """A reusable pool of persistent, cache-warm sweep worker processes.

    The underlying ``ProcessPoolExecutor`` is created lazily on first use
    and kept alive until :meth:`shutdown` (or context-manager exit), so
    consecutive campaigns — a benchmark's repeats, a driver script's sweep
    series — pay worker startup and imports once.  Workers run with the
    scenario run cache enabled (see :func:`_worker_init`).
    """

    def __init__(
        self, jobs: int, *, chunksize: int | None = None, max_pool_rebuilds: int = 2
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        if max_pool_rebuilds < 0:
            raise ConfigurationError("max_pool_rebuilds must be non-negative")
        self.jobs = jobs
        self.chunksize = chunksize
        #: How many times one :meth:`map_records` call may replace a broken
        #: pool (a worker died mid-chunk) before giving up and re-raising.
        self.max_pool_rebuilds = max_pool_rebuilds
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
        return self._pool

    def _effective_chunksize(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        # Four chunks per worker balances scheduling slack against IPC and
        # cache locality; expand_tasks orders grid points first-key-major,
        # so contiguous chunks tend to share a simulation identity.
        return max(1, math.ceil(n_tasks / (self.jobs * 4)))

    def map_records(
        self,
        tasks: Sequence[SweepTask],
        *,
        on_record: RecordCallback | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[ExperimentRecord]:
        """Execute tasks on the pool; stream records in task order.

        ``on_record`` (when given) is invoked for every record as soon as
        the ordered prefix up to it has completed — long campaigns surface
        results (and can persist them) while later chunks still run.

        A worker death (``SIGKILL``, OOM, hard crash) breaks the whole
        ``ProcessPoolExecutor``; this method recovers by discarding the
        broken pool and re-running every not-yet-delivered chunk on a fresh
        one — at most :attr:`max_pool_rebuilds` times per call.  Chunks are
        pure functions of their tasks, so a re-run reproduces exactly the
        records the lost workers would have produced, and a chunk is only
        ever streamed once.
        """
        if not tasks:
            return []
        chunksize = self._effective_chunksize(len(tasks))
        chunks = [
            list(tasks[start : start + chunksize])
            for start in range(0, len(tasks), chunksize)
        ]
        pending: dict[int, list[SweepTask]] = dict(enumerate(chunks))
        finished: dict[int, list[ExperimentRecord]] = {}
        next_chunk = 0
        ordered: list[ExperimentRecord] = []
        rebuilds = 0
        while pending:
            pool = self._ensure_pool()
            futures = {
                pool.submit(_execute_chunk, chunk, retry): index
                for index, chunk in sorted(pending.items())
            }
            broken: BrokenProcessPool | None = None
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                try:
                    finished[index] = future.result()
                except BrokenProcessPool as error:
                    # Results completed but not yet consumed are lost with
                    # the pool; their chunks simply stay pending.
                    broken = error
                    break
                pending.pop(index)
                while next_chunk in finished:
                    for record in finished.pop(next_chunk):
                        ordered.append(record)
                        if on_record is not None:
                            on_record(record)
                    next_chunk += 1
            if broken is not None:
                self.shutdown()
                rebuilds += 1
                if rebuilds > self.max_pool_rebuilds:
                    raise broken
        return ordered

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> SweepExecutor:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


@dataclass
class SweepResult:
    """The executed campaign: ordered records plus execution telemetry."""

    spec: SweepSpec
    records: list[ExperimentRecord]
    jobs: int
    wall_time: float
    #: Tasks skipped because an intact journal line already carried their
    #: record (0 for non-journaled sweeps).  Telemetry, like ``jobs``.
    n_resumed: int = 0

    @property
    def n_ok(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def n_errors(self) -> int:
        return len(self.records) - self.n_ok

    @property
    def failed_records(self) -> list[ExperimentRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def tasks_per_second(self) -> float:
        if self.wall_time <= 0:
            return float("inf")
        return len(self.records) / self.wall_time

    def write_json(self, path: str, *, checksum: bool = True) -> None:
        """Serialize records + campaign header; deterministic by contract.

        By default an SHA-256 sidecar (``<path>.sha256``) rides along so
        ``verify-records`` and the journal-resume tooling can detect
        truncation or bit rot later.
        """
        write_records_json(
            path, self.records, campaign=self.spec.campaign_metadata(), checksum=checksum
        )

    def write_csv(self, path: str, *, checksum: bool = True) -> None:
        write_records_csv(path, self.records, checksum=checksum)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    chunksize: int | None = None,
    executor: SweepExecutor | None = None,
    on_record: RecordCallback | None = None,
    retry: RetryPolicy | None = None,
    journal: str | None = None,
) -> SweepResult:
    """Execute every task of the campaign and collect ordered records.

    ``jobs=1`` runs inline (no pool, easiest to debug); ``jobs>1`` fans
    chunked tasks over a :class:`SweepExecutor` — pass ``executor`` to
    reuse an existing pool across campaigns (its ``jobs``/``chunksize``
    then apply).  ``on_record`` streams records in task order as they
    complete.  Records are always returned sorted by task index and are
    byte-identical regardless of worker count, chunking or streaming.

    ``retry`` applies a :class:`RetryPolicy` to every task.  ``journal``
    names a durable :class:`~repro.experiments.journal.SweepJournal` file:
    every completed record is appended (and fsynced) as it streams, and an
    interrupted campaign re-run with the same spec and journal path skips
    the intact journaled tasks, executes only the missing or corrupt ones,
    and still returns the full record list — byte-identical to a cold
    sweep.  ``on_record`` fires only for newly executed tasks, immediately
    after their journal line is durable.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    tasks = expand_tasks(spec)
    start = _profiling.clock()
    resumed: dict[int, ExperimentRecord] = {}
    journal_handle: SweepJournal | None = None
    if journal is not None:
        journal_handle, resumed, _ = SweepJournal.open(journal, spec.campaign_metadata())
        tasks = [task for task in tasks if task.index not in resumed]
    emit: RecordCallback | None = on_record
    if journal_handle is not None:
        appender = journal_handle

        def journal_emit(record: ExperimentRecord) -> None:
            appender.append(record)
            if on_record is not None:
                on_record(record)

        emit = journal_emit

    try:
        if executor is not None:
            records = executor.map_records(tasks, on_record=emit, retry=retry)
            effective_jobs = executor.jobs
        elif jobs == 1 or len(tasks) <= 1:
            # Inline execution keeps the run cache on too: identical records
            # (the cache memoizes a pure function), faster threshold-style
            # sweeps, no pool to manage.  The memo is dropped afterwards so a
            # one-shot sweep does not pin simulation products in the caller's
            # process for its lifetime (worker processes keep theirs by
            # design — they exist to stay warm).
            from repro.scenarios.runner import clear_run_cache

            use_cache = not accel.env_disabled("run_cache")
            try:
                with accel.override(run_cache=use_cache):
                    records = []
                    for task in tasks:
                        record = execute_task(task, retry)
                        records.append(record)
                        if emit is not None:
                            emit(record)
            finally:
                clear_run_cache()
            effective_jobs = 1
        else:
            with SweepExecutor(min(jobs, len(tasks)), chunksize=chunksize) as owned:
                records = owned.map_records(tasks, on_record=emit, retry=retry)
            effective_jobs = jobs
    finally:
        if journal_handle is not None:
            journal_handle.close()
    records.extend(resumed.values())
    records.sort(key=lambda record: record.task_index)
    wall_time = _profiling.clock() - start
    return SweepResult(
        spec=spec,
        records=records,
        jobs=effective_jobs,
        wall_time=wall_time,
        n_resumed=len(resumed),
    )


# -- CLI-facing parsing helpers -------------------------------------------------


def parse_scalar(text: str) -> object:
    """``"25"`` → 25, ``"0.5"`` → 0.5, ``"true"`` → True, else the string.

    ``"nan"``/``"inf"`` stay strings: non-finite floats have no strict-JSON
    representation, so they may not enter a record as numbers.
    """
    with contextlib.suppress(ValueError):
        return int(text)
    with contextlib.suppress(ValueError):
        value = float(text)
        if math.isfinite(value):
            return value
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    return text


def parse_grid_option(option: str) -> tuple[str, list[object]]:
    """Parse one ``--grid key=v1,v2,...`` occurrence."""
    if "=" not in option:
        raise ConfigurationError(f"--grid expects key=v1,v2,... (got {option!r})")
    key, _, values_text = option.partition("=")
    values = [parse_scalar(value) for value in values_text.split(",") if value != ""]
    if not key or not values:
        raise ConfigurationError(f"--grid expects key=v1,v2,... (got {option!r})")
    return key, values


def parse_range_option(option: str) -> tuple[str, ParamRange]:
    """Parse one ``--range key=low:high`` occurrence."""
    if "=" not in option or ":" not in option.partition("=")[2]:
        raise ConfigurationError(f"--range expects key=low:high (got {option!r})")
    key, _, bounds_text = option.partition("=")
    low_text, _, high_text = bounds_text.partition(":")
    try:
        bounds = ParamRange(low=float(low_text), high=float(high_text))
    except ValueError:
        raise ConfigurationError(f"--range expects numeric bounds (got {option!r})") from None
    return key, bounds


def spec_from_options(
    experiment: str,
    *,
    grid_options: Sequence[str] = (),
    range_options: Sequence[str] = (),
    sampler: str = "grid",
    n_samples: int = 0,
    seed: int = 0,
    quick_base: bool = True,
    backend: str = "auto",
) -> SweepSpec:
    """Build a :class:`SweepSpec` from raw CLI option strings."""
    grids: dict[str, list[object]] = {}
    for option in grid_options:
        key, values = parse_grid_option(option)
        # Repeating --grid for the same key extends its value list.
        grids.setdefault(key, []).extend(values)
    ranges: dict[str, ParamRange] = {}
    for option in range_options:
        key, bounds = parse_range_option(option)
        if key in ranges:
            raise ConfigurationError(f"--range given twice for parameter {key!r}")
        ranges[key] = bounds
    return SweepSpec(
        experiment=experiment,
        grids=grids,
        ranges=ranges,
        sampler=sampler,
        n_samples=n_samples,
        seed=seed,
        quick_base=quick_base,
        backend=backend,
    )

"""Command-line entry point: ``python -m repro.experiments [name ...]``.

Without arguments every registered experiment runs in quick mode; pass
experiment names to run a subset, and ``--full`` for the full-size versions
(slower, closer to the EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.runner import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run (default: all). Available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full-size experiments instead of the quick versions",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, entry in sorted(EXPERIMENTS.items()):
            ids = ", ".join(entry.experiment_ids)
            print(f"{name:16s} [{ids}] {entry.description}")
        return 0

    names = args.experiments or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in names:
        print(f"==== {name} ====")
        print(run_experiment(name, quick=not args.full))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Deprecated entry point: ``python -m repro.experiments`` — use ``repro``.

The CLI moved to the unified tree in :mod:`repro.cli` (``python -m repro`` /
the ``repro`` console script).  This module stays as a compatibility shim:
it warns once per process and forwards, and the forwarded invocations
produce byte-identical artifacts to the new spellings (held by a CI check
and by ``tests/test_cli_unified.py``).  The parser builders and subcommand
mains remain importable from here for the same reason.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from repro.cli import (
    build_run_parser,
    build_sweep_parser,
    build_verify_parser,
    sweep_main,
    verify_records_main,
)

__all__ = [
    "build_parser",
    "build_sweep_parser",
    "build_verify_parser",
    "main",
    "sweep_main",
    "verify_records_main",
]

_warned = False


def build_parser() -> argparse.ArgumentParser:
    """The historical name for the run-mode parser."""
    return build_run_parser(prog="python -m repro.experiments")


def _warn_once() -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "python -m repro.experiments is deprecated; use `python -m repro` "
        "(or the `repro` console script). Subcommands and flags are "
        "unchanged and outputs are byte-identical.",
        DeprecationWarning,
        stacklevel=3,
    )


def main(argv: list[str] | None = None) -> int:
    _warn_once()
    from repro.cli import dispatch

    return dispatch(list(sys.argv[1:] if argv is None else argv), empty_runs_all=True)


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E-S1: allocation strategies vs long-run satisfaction.

Section 2.1 adopts the query-allocation satisfaction model: the system should
"follow the intentions of each participant" in the long run, and a
satisfaction-aware allocation can keep providers and consumers on board even
when individual decisions are imposed.  The experiment runs the same workload
through every allocation strategy and reports mean and minimum consumer /
provider satisfaction, the provider allocation satisfaction and the imposed
fraction.

Expected shape: the satisfaction-balanced strategy achieves the best *minimum*
provider satisfaction (nobody is starved) at a modest cost in mean quality
compared to the purely quality-based strategy, and the reputation-aware
strategy beats random on consumer satisfaction when malicious providers are
present.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro._util import mean
from repro.allocation.mediator import QueryMediator
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.strategies import (
    AllocationStrategy,
    CapacityBasedAllocation,
    QualityBasedAllocation,
    RandomAllocation,
    ReputationAwareAllocation,
    SatisfactionBalancedAllocation,
)
from repro.allocation.workload import WorkloadGenerator, WorkloadSpec
from repro.experiments.reporting import format_table
from repro.satisfaction.intentions import ConsumerIntention, ProviderIntention


@dataclass
class StrategyOutcome:
    strategy: str
    mean_quality: float
    mean_consumer_satisfaction: float
    min_consumer_satisfaction: float
    mean_provider_satisfaction: float
    min_provider_satisfaction: float
    mean_allocation_satisfaction: float
    imposed_fraction: float
    failed_allocations: int


@dataclass
class SatisfactionEvalResult:
    outcomes: list[StrategyOutcome]

    def by_strategy(self) -> dict[str, StrategyOutcome]:
        return {outcome.strategy: outcome for outcome in self.outcomes}


def _build_population(
    *, n_providers: int, n_consumers: int, topics: Sequence[str], seed: int
) -> tuple:
    """Heterogeneous providers (competence, interests) and consumers (preferences)."""
    rng = random.Random(seed)
    providers = []
    for index in range(n_providers):
        provider_id = f"prov{index}"
        competence = {topic: rng.uniform(0.2, 1.0) for topic in topics}
        interests = {topic: rng.uniform(0.0, 1.0) for topic in topics}
        providers.append(
            ProviderAgent(
                provider_id=provider_id,
                intention=ProviderIntention(
                    provider_id, topic_interest=interests, capacity=rng.randint(3, 8)
                ),
                competence=competence,
                capacity_per_round=rng.randint(3, 8),
            )
        )
    consumers = []
    for index in range(n_consumers):
        consumer_id = f"cons{index}"
        preferences = {provider.provider_id: rng.uniform(0.2, 1.0) for provider in providers}
        consumers.append(
            ConsumerAgent(
                consumer_id=consumer_id,
                intention=ConsumerIntention(consumer_id, preferences=preferences),
                activity=rng.uniform(0.3, 1.0),
            )
        )
    return providers, consumers


def _strategies(reputation_scores: dict[str, float]) -> dict[str, AllocationStrategy]:
    return {
        "random": RandomAllocation(),
        "capacity": CapacityBasedAllocation(),
        "quality": QualityBasedAllocation(),
        "reputation": ReputationAwareAllocation(),
        "satisfaction-balanced": SatisfactionBalancedAllocation(),
    }


def run(
    *,
    n_providers: int = 12,
    n_consumers: int = 25,
    rounds: int = 30,
    seed: int = 0,
) -> SatisfactionEvalResult:
    """Run E-S1: one mediator per strategy over the identical workload."""
    topics = ("music", "photos", "news", "files", "events")
    outcomes: list[StrategyOutcome] = []

    # Reputation scores for the reputation-aware strategy: the providers'
    # ground-truth competence averaged over topics (a mechanism-independent
    # stand-in, so this experiment isolates the allocation question).
    base_providers, _ = _build_population(
        n_providers=n_providers, n_consumers=n_consumers, topics=topics, seed=seed
    )
    reputation_scores = {
        provider.provider_id: mean(provider.competence.values())
        for provider in base_providers
    }

    for name, strategy in _strategies(reputation_scores).items():
        providers, consumers = _build_population(
            n_providers=n_providers, n_consumers=n_consumers, topics=topics, seed=seed
        )
        mediator = QueryMediator(
            providers,
            consumers,
            strategy=strategy,
            reputation_scores=reputation_scores,
            seed=seed,
        )
        workload = WorkloadGenerator(
            WorkloadSpec(topics=topics, queries_per_consumer_per_round=1.0, seed=seed),
            [consumer.consumer_id for consumer in consumers],
        )
        for batch in workload.rounds(rounds):
            mediator.submit_batch(batch)
            mediator.end_round()
        report_data = mediator.report()

        consumer_values = list(report_data.consumer_satisfaction.values())
        provider_values = list(report_data.provider_satisfaction.values())
        imposed = [record.imposed_on_provider for record in mediator.records]
        outcomes.append(
            StrategyOutcome(
                strategy=name,
                mean_quality=report_data.mean_quality,
                mean_consumer_satisfaction=mean(consumer_values),
                min_consumer_satisfaction=min(consumer_values) if consumer_values else 0.0,
                mean_provider_satisfaction=mean(provider_values),
                min_provider_satisfaction=min(provider_values) if provider_values else 0.0,
                mean_allocation_satisfaction=mean(
                    report_data.provider_allocation_satisfaction.values()
                ),
                imposed_fraction=mean([1.0 if flag else 0.0 for flag in imposed]),
                failed_allocations=report_data.failed_allocations,
            )
        )
    return SatisfactionEvalResult(outcomes=outcomes)


def summarize(result: SatisfactionEvalResult) -> dict[str, object]:
    """Flatten E-S1 to record metrics (per-strategy satisfaction profile)."""
    metrics: dict[str, object] = {"n_strategies": len(result.outcomes)}
    for outcome in result.outcomes:
        prefix = outcome.strategy
        metrics[f"{prefix}.mean_quality"] = outcome.mean_quality
        metrics[f"{prefix}.consumer_sat_mean"] = outcome.mean_consumer_satisfaction
        metrics[f"{prefix}.consumer_sat_min"] = outcome.min_consumer_satisfaction
        metrics[f"{prefix}.provider_sat_mean"] = outcome.mean_provider_satisfaction
        metrics[f"{prefix}.provider_sat_min"] = outcome.min_provider_satisfaction
        metrics[f"{prefix}.allocation_sat_mean"] = outcome.mean_allocation_satisfaction
        metrics[f"{prefix}.imposed_fraction"] = outcome.imposed_fraction
        metrics[f"{prefix}.failed_allocations"] = outcome.failed_allocations
    return metrics


def report(result: SatisfactionEvalResult) -> str:
    rows = [
        (
            outcome.strategy,
            outcome.mean_quality,
            outcome.mean_consumer_satisfaction,
            outcome.min_consumer_satisfaction,
            outcome.mean_provider_satisfaction,
            outcome.min_provider_satisfaction,
            outcome.mean_allocation_satisfaction,
            outcome.imposed_fraction,
        )
        for outcome in result.outcomes
    ]
    return format_table(
        [
            "strategy",
            "mean quality",
            "consumer sat (mean)",
            "consumer sat (min)",
            "provider sat (mean)",
            "provider sat (min)",
            "allocation sat (mean)",
            "imposed fraction",
        ],
        rows,
        title="E-S1: allocation strategy vs long-run satisfaction",
    )

"""Experiments E-C1..E-C5: the five qualitative couplings of Section 3.

Each bullet of Section 3 becomes a measurable statement; the experiment runs
the coupling dynamics and/or targeted scenario sweeps and reports, per claim,
the quantity measured, its value and whether the paper's direction holds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import pearson
from repro.core.config import SystemSettings
from repro.core.coupling import CouplingDynamics, CouplingState
from repro.experiments.reporting import format_table
from repro.experiments.scenario import Scenario, ScenarioConfig


@dataclass
class ClaimOutcome:
    """The measured outcome of one Section-3 claim."""

    claim_id: str
    statement: str
    measured: float
    holds: bool
    detail: str = ""


@dataclass
class ClaimsResult:
    outcomes: list[ClaimOutcome]

    @property
    def all_hold(self) -> bool:
        return all(outcome.holds for outcome in self.outcomes)

    def by_id(self) -> dict[str, ClaimOutcome]:
        return {outcome.claim_id: outcome for outcome in self.outcomes}


def _claim_c1_trust_satisfaction(backend: str = "auto") -> ClaimOutcome:
    """Trust and satisfaction reinforce each other (closed-loop response)."""
    dynamics = CouplingDynamics(backend=backend)
    equilibrium = dynamics.equilibrium()
    boosted = replace(equilibrium, satisfaction=min(1.0, equilibrium.satisfaction + 0.2))
    state = boosted
    for _ in range(5):
        state = dynamics.step(state)
    trust_response = state.trust - equilibrium.trust

    boosted_trust = replace(equilibrium, trust=min(1.0, equilibrium.trust + 0.2))
    state = boosted_trust
    for _ in range(5):
        state = dynamics.step(state)
    satisfaction_response = state.satisfaction - equilibrium.satisfaction

    measured = min(trust_response, satisfaction_response)
    return ClaimOutcome(
        claim_id="E-C1",
        statement="trust and satisfaction mutually reinforce",
        measured=measured,
        holds=trust_response > 0 and satisfaction_response > 0,
        detail=(
            f"satisfaction shock -> trust {trust_response:+.3f}; "
            f"trust shock -> satisfaction {satisfaction_response:+.3f}"
        ),
    )


def _claim_c2_reputation_trust_contribution(backend: str = "auto") -> ClaimOutcome:
    """Better mechanism -> more trust -> more honest contribution."""
    weak = CouplingDynamics(mechanism_power=0.3, backend=backend).equilibrium()
    strong = CouplingDynamics(mechanism_power=0.95, backend=backend).equilibrium()
    trust_gain = strong.trust - weak.trust
    contribution_gain = strong.honest_contribution - weak.honest_contribution
    return ClaimOutcome(
        claim_id="E-C2",
        statement="efficient reputation raises trust, which raises honest contribution",
        measured=min(trust_gain, contribution_gain),
        holds=trust_gain > 0 and contribution_gain > 0,
        detail=(
            f"mechanism power 0.3 -> 0.95: trust {weak.trust:.3f} -> {strong.trust:.3f}, "
            f"honest contribution {weak.honest_contribution:.3f} -> "
            f"{strong.honest_contribution:.3f}"
        ),
    )


def _claim_c3_reputation_satisfaction(
    *, n_users: int, rounds: int, seed: int, backend: str = "auto"
) -> ClaimOutcome:
    """Reputation efficiency and satisfaction move together (simulation)."""
    satisfactions = []
    powers = []
    for mechanism in ("none", "average", "eigentrust"):
        settings = SystemSettings(reputation_mechanism=mechanism)
        result = Scenario(
            ScenarioConfig(
                n_users=n_users,
                rounds=rounds,
                seed=seed,
                malicious_fraction=0.3,
                settings=settings,
                backend=backend,
            )
        ).run()
        satisfactions.append(result.facets.satisfaction)
        powers.append(result.facets.reputation)
    correlation = pearson(powers, satisfactions)
    improvement = satisfactions[-1] - satisfactions[0]
    return ClaimOutcome(
        claim_id="E-C3",
        statement="the more efficient the reputation mechanism, the more users are satisfied",
        measured=improvement,
        holds=improvement > 0,
        detail=(
            f"satisfaction none={satisfactions[0]:.3f}, average={satisfactions[1]:.3f}, "
            f"eigentrust={satisfactions[2]:.3f}; corr(power, satisfaction)={correlation:.2f}"
        ),
    )


def _claim_c4_untrustworthy_majority(backend: str = "auto") -> ClaimOutcome:
    """Accurate mechanism + untrustworthy majority => low trust, continued contribution."""
    healthy = CouplingDynamics(
        trustworthy_fraction=0.8, mechanism_power=0.95, backend=backend
    ).equilibrium()
    hostile = CouplingDynamics(
        trustworthy_fraction=0.3, mechanism_power=0.95, backend=backend
    ).equilibrium()
    trust_drop = healthy.trust - hostile.trust
    contribution_kept = hostile.honest_contribution
    return ClaimOutcome(
        claim_id="E-C4",
        statement=(
            "an efficient mechanism facing an untrustworthy majority yields low trust "
            "while users keep contributing"
        ),
        measured=trust_drop,
        holds=trust_drop > 0.05 and hostile.trust < healthy.trust and contribution_kept > 0.3,
        detail=(
            f"trust {healthy.trust:.3f} -> {hostile.trust:.3f} when trustworthy fraction "
            f"falls 0.8 -> 0.3; contribution stays at {contribution_kept:.3f}"
        ),
    )


def _claim_c5_information_privacy_loop(backend: str = "auto") -> ClaimOutcome:
    """More gathering -> better reputation; less trust -> less disclosure;
    more privacy respect -> more satisfaction."""
    low_sharing = CouplingDynamics(sharing_level=0.2, backend=backend).equilibrium()
    high_sharing = CouplingDynamics(sharing_level=1.0, backend=backend).equilibrium()
    reputation_gain = high_sharing.reputation_efficiency - low_sharing.reputation_efficiency
    privacy_loss = low_sharing.privacy_satisfaction - high_sharing.privacy_satisfaction

    respected = CouplingDynamics(policy_respect=1.0, backend=backend).equilibrium()
    breached = CouplingDynamics(policy_respect=0.4, backend=backend).equilibrium()
    satisfaction_gain = respected.satisfaction - breached.satisfaction

    low_trust_disclosure = CouplingDynamics(backend=backend).step(
        CouplingState(trust=0.1)
    ).disclosure
    high_trust_disclosure = CouplingDynamics(backend=backend).step(
        CouplingState(trust=0.9)
    ).disclosure
    disclosure_gap = high_trust_disclosure - low_trust_disclosure

    holds = (
        reputation_gain > 0
        and privacy_loss > 0
        and satisfaction_gain > 0
        and disclosure_gap > 0
    )
    return ClaimOutcome(
        claim_id="E-C5",
        statement=(
            "more gathered information makes reputation more efficient but erodes "
            "privacy; less trust means less disclosure; respected privacy raises satisfaction"
        ),
        measured=min(reputation_gain, privacy_loss, satisfaction_gain, disclosure_gap),
        holds=holds,
        detail=(
            f"reputation +{reputation_gain:.3f} and privacy -{privacy_loss:.3f} when sharing "
            f"0.2 -> 1.0; satisfaction +{satisfaction_gain:.3f} when policy respect 0.4 -> 1.0; "
            f"disclosure +{disclosure_gap:.3f} when trust 0.1 -> 0.9"
        ),
    )


def run(
    *, n_users: int = 40, rounds: int = 20, seed: int = 0, backend: str = "auto"
) -> ClaimsResult:
    """Run every Section-3 claim experiment."""
    outcomes = [
        _claim_c1_trust_satisfaction(backend),
        _claim_c2_reputation_trust_contribution(backend),
        _claim_c3_reputation_satisfaction(
            n_users=n_users, rounds=rounds, seed=seed, backend=backend
        ),
        _claim_c4_untrustworthy_majority(backend),
        _claim_c5_information_privacy_loop(backend),
    ]
    return ClaimsResult(outcomes=outcomes)


def summarize(result: ClaimsResult) -> dict[str, object]:
    """Flatten E-C1..E-C5 to record metrics (per-claim effect and verdict)."""
    metrics: dict[str, object] = {
        "all_hold": result.all_hold,
        "n_claims": len(result.outcomes),
        "n_holding": sum(1 for outcome in result.outcomes if outcome.holds),
    }
    for outcome in result.outcomes:
        metrics[f"{outcome.claim_id}.measured"] = outcome.measured
        metrics[f"{outcome.claim_id}.holds"] = outcome.holds
    return metrics


def report(result: ClaimsResult) -> str:
    rows = [
        (outcome.claim_id, outcome.statement, outcome.measured, outcome.holds)
        for outcome in result.outcomes
    ]
    table = format_table(
        ["claim", "statement (Section 3)", "measured effect", "holds"],
        rows,
        title="E-C1..E-C5: the five qualitative couplings of Section 3",
    )
    details = "\n".join(f"  {outcome.claim_id}: {outcome.detail}" for outcome in result.outcomes)
    return table + "\n\nDetails:\n" + details

"""Durable sweep journal: crash-resilient, resumable record persistence.

A journal is an append-only JSONL file the sweep engine writes one line per
*completed* task into, fsynced as it goes.  Each line carries the record
itself plus the SHA-256 of its canonical JSON encoding, and the header line
pins the campaign identity — so on restart :meth:`SweepJournal.open` can
tell exactly which tasks already finished (and finished *intact*), and
``run_sweep(..., journal=...)`` re-executes only the missing or corrupt
ones.  Because every task's record is a pure function of the campaign spec
(the sweep determinism contract), a resumed sweep's merged output is
byte-identical to a cold sweep's.

Format (version 1, one JSON object per line)::

    {"campaign_sha256": "...", "format": "repro-sweep-journal", "version": 1}
    {"record": {...}, "sha256": "...", "task_index": 0}
    {"record": {...}, "sha256": "...", "task_index": 3}
    ...

Lines appear in completion order, not task order.  A truncated tail line
(crash mid-write) or a bit-flipped line (digest mismatch) invalidates only
the tasks on those lines, never the file.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping
from typing import IO

from repro import faults
from repro.errors import ConfigurationError, IntegrityError
from repro.experiments.results import ExperimentRecord

JOURNAL_MAGIC = "repro-sweep-journal"
JOURNAL_VERSION = 1


def campaign_digest(campaign: Mapping[str, object]) -> str:
    """Stable identity of a sweep campaign (its sorted-keys JSON, hashed)."""
    encoded = json.dumps(dict(campaign), sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def _record_digest(payload: dict[str, object]) -> str:
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-side handle of an open journal file.

    Use :meth:`open` (which also replays any existing lines) rather than
    constructing directly.  ``fsync=True`` makes every appended record
    durable before :meth:`append` returns — the right default for a crash
    journal; tests that hammer thousands of tiny tasks can turn it off.
    """

    def __init__(self, handle: IO[bytes], *, fsync: bool = True) -> None:
        self._handle = handle
        self._fsync = fsync

    @classmethod
    def open(
        cls,
        path: str,
        campaign: Mapping[str, object],
        *,
        fsync: bool = True,
    ) -> tuple[SweepJournal, dict[int, ExperimentRecord], int]:
        """Open (creating if missing) a journal for the given campaign.

        Returns ``(journal, completed, n_invalid)``: the records replayed
        from intact lines keyed by task index, and how many lines were
        dropped as truncated/corrupt/malformed (their tasks count as not
        done).  A journal written for a *different* campaign raises
        :class:`ConfigurationError` — resuming someone else's journal would
        silently mix incompatible records; a journal whose header is
        unreadable raises :class:`IntegrityError`.
        """
        digest = campaign_digest(campaign)
        if not os.path.exists(path):
            handle = open(path, "wb")
            header = {
                "format": JOURNAL_MAGIC,
                "version": JOURNAL_VERSION,
                "campaign_sha256": digest,
            }
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
            return cls(handle, fsync=fsync), {}, 0

        with open(path, "rb") as existing:
            lines = existing.read().split(b"\n")
        header_payload = _parse_json_line(lines[0] if lines else b"")
        if (
            header_payload is None
            or header_payload.get("format") != JOURNAL_MAGIC
            or not isinstance(header_payload.get("campaign_sha256"), str)
        ):
            raise IntegrityError(f"{path}: not a sweep journal (malformed header)")
        if header_payload.get("version") != JOURNAL_VERSION:
            raise IntegrityError(
                f"{path}: unsupported journal version {header_payload.get('version')!r}"
            )
        if header_payload["campaign_sha256"] != digest:
            raise ConfigurationError(
                f"{path}: journal belongs to a different campaign "
                "(spec changed since it was written?)"
            )
        completed: dict[int, ExperimentRecord] = {}
        n_invalid = 0
        for line in lines[1:]:
            if not line:
                continue  # trailing newline / blank line
            entry = _parse_record_line(line)
            if entry is None:
                n_invalid += 1
                continue
            task_index, record = entry
            completed[task_index] = record
        return cls(open(path, "ab"), fsync=fsync), completed, n_invalid

    def append(self, record: ExperimentRecord) -> None:
        """Durably journal one completed task.

        The ``journal.record`` fault site can corrupt the encoded line
        before it hits the disk — exercising exactly the damage the replay
        path must survive.
        """
        payload = record.to_dict()
        line = {
            "task_index": record.task_index,
            "sha256": _record_digest(payload),
            "record": payload,
        }
        encoded = json.dumps(line, sort_keys=True).encode("utf-8") + b"\n"
        action = faults.fire("journal.record", task_index=record.task_index)
        if action == "corrupt":
            encoded = faults.corrupt_bytes(encoded)
        self._handle.write(encoded)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> SweepJournal:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _parse_json_line(line: bytes) -> dict[str, object] | None:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _parse_record_line(line: bytes) -> tuple[int, ExperimentRecord] | None:
    """Validate one journal line; ``None`` for anything short of intact."""
    payload = _parse_json_line(line)
    if payload is None:
        return None
    record_payload = payload.get("record")
    task_index = payload.get("task_index")
    digest = payload.get("sha256")
    if not isinstance(record_payload, dict) or not isinstance(task_index, int):
        return None
    if digest != _record_digest(record_payload):
        return None
    try:
        record = ExperimentRecord.from_dict(record_payload)
    except (KeyError, TypeError, ValueError):
        return None
    if record.task_index != task_index:
        return None
    return task_index, record


def verify_journal(path: str) -> tuple[int, int]:
    """Validate a journal file; returns ``(n_valid, n_invalid)`` lines.

    Raises :class:`IntegrityError` for an unreadable or headerless file —
    per-line damage is counted, not fatal, matching the resume semantics.
    """
    try:
        with open(path, "rb") as handle:
            lines = handle.read().split(b"\n")
    except OSError as error:
        raise IntegrityError(f"cannot read journal {path}: {error}") from error
    header = _parse_json_line(lines[0] if lines else b"")
    if header is None or header.get("format") != JOURNAL_MAGIC:
        raise IntegrityError(f"{path}: not a sweep journal (malformed header)")
    n_valid = 0
    n_invalid = 0
    for line in lines[1:]:
        if not line:
            continue
        if _parse_record_line(line) is None:
            n_invalid += 1
        else:
            n_valid += 1
    return n_valid, n_invalid

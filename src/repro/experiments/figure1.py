"""Experiment E-F1: Figure 1, the relationships among the dimensions.

Figure 1 draws arrows between satisfaction, reputation, privacy and trust
towards the system.  The experiment quantifies each arrow twice:

* **analytically** — the signed sensitivity matrix of the Section-3 coupling
  dynamics at equilibrium (:func:`repro.core.coupling.coupling_matrix`);
* **empirically** — contrasts between pairs of full scenarios that differ in
  exactly one cause (sharing level, adversary mix, deployed mechanism) while
  the effect the arrow predicts is measured on the outcome.

"Reproduced" means the signs match the paper's arrows: every pairwise
relation among (satisfaction, reputation efficiency, trust) is positive,
disclosure→privacy is negative, and privacy→satisfaction is positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import SystemSettings
from repro.core.coupling import CouplingDynamics, coupling_matrix
from repro.experiments.reporting import format_table
from repro.experiments.scenario import Scenario, ScenarioConfig, ScenarioResult

#: The arrows of Figure 1 and the sign the paper claims for each.
EXPECTED_SIGNS = {
    ("satisfaction", "trust"): +1,
    ("trust", "satisfaction"): +1,
    ("reputation_efficiency", "trust"): +1,
    ("trust", "honest_contribution"): +1,
    ("reputation_efficiency", "satisfaction"): +1,
    ("satisfaction", "reputation_efficiency"): +1,
    ("disclosure", "privacy_satisfaction"): -1,
    ("privacy_satisfaction", "satisfaction"): +1,
    ("trust", "disclosure"): +1,
    ("disclosure", "reputation_efficiency"): +1,
}


@dataclass
class EmpiricalContrast:
    """One scenario contrast: a cause is raised, an effect is measured."""

    name: str
    cause: str
    effect: str
    low_value: float
    high_value: float
    expected_sign: int

    @property
    def delta(self) -> float:
        return self.high_value - self.low_value

    @property
    def holds(self) -> bool:
        return self.delta > 0 if self.expected_sign > 0 else self.delta < 0


@dataclass
class Figure1Result:
    """Analytic sensitivities, empirical contrasts and sign agreement."""

    sensitivities: dict[str, dict[str, float]]
    sign_matches: dict[tuple, bool]
    contrasts: list[EmpiricalContrast]

    @property
    def all_signs_match(self) -> bool:
        return all(self.sign_matches.values())

    @property
    def all_contrasts_hold(self) -> bool:
        return all(contrast.holds for contrast in self.contrasts)


def _scenario(
    settings: SystemSettings,
    *,
    n_users: int,
    rounds: int,
    seed: int,
    malicious_fraction: float = 0.2,
    backend: str = "auto",
) -> ScenarioResult:
    return Scenario(
        ScenarioConfig(
            n_users=n_users,
            rounds=rounds,
            seed=seed,
            malicious_fraction=malicious_fraction,
            settings=settings,
            backend=backend,
        )
    ).run()


def _empirical_contrasts(
    *, n_users: int, rounds: int, seed: int, backend: str = "auto"
) -> list[EmpiricalContrast]:
    """Targeted scenario pairs, one per Figure-1 arrow measurable end to end."""
    contrasts: list[EmpiricalContrast] = []

    # Arrow: more shared information -> lower privacy, and more shared
    # information -> more efficient reputation (coverage of the population).
    low_sharing = _scenario(
        SystemSettings(sharing_level=0.15, reputation_mechanism="beta"),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        backend=backend,
    )
    high_sharing = _scenario(
        SystemSettings(sharing_level=1.0, reputation_mechanism="beta"),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        backend=backend,
    )
    contrasts.append(
        EmpiricalContrast(
            name="sharing up => privacy down",
            cause="sharing level 0.15 -> 1.0",
            effect="privacy facet",
            low_value=low_sharing.facets.privacy,
            high_value=high_sharing.facets.privacy,
            expected_sign=-1,
        )
    )
    contrasts.append(
        EmpiricalContrast(
            name="sharing up => reputation power up",
            cause="sharing level 0.15 -> 1.0",
            effect="reputation facet",
            low_value=low_sharing.facets.reputation,
            high_value=high_sharing.facets.reputation,
            expected_sign=+1,
        )
    )

    # Arrow: a more efficient reputation mechanism -> more trust.
    no_reputation = _scenario(
        SystemSettings(reputation_mechanism="none"),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        malicious_fraction=0.3,
        backend=backend,
    )
    with_reputation = _scenario(
        SystemSettings(reputation_mechanism="eigentrust"),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        malicious_fraction=0.3,
        backend=backend,
    )
    contrasts.append(
        EmpiricalContrast(
            name="reputation mechanism deployed => trust up",
            cause="mechanism none -> eigentrust",
            effect="global trust",
            low_value=no_reputation.trust.global_trust,
            high_value=with_reputation.trust.global_trust,
            expected_sign=+1,
        )
    )

    # Arrow: satisfaction and trust move together — contrast a hostile
    # population (low satisfaction) with a healthy one.
    hostile = _scenario(
        SystemSettings(),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        malicious_fraction=0.6,
        backend=backend,
    )
    healthy = _scenario(
        SystemSettings(),
        n_users=n_users,
        rounds=rounds,
        seed=seed,
        malicious_fraction=0.05,
        backend=backend,
    )
    contrasts.append(
        EmpiricalContrast(
            name="satisfaction up => trust up",
            cause="malicious fraction 0.6 -> 0.05 (satisfaction "
            f"{hostile.facets.satisfaction:.3f} -> {healthy.facets.satisfaction:.3f})",
            effect="global trust",
            low_value=hostile.trust.global_trust,
            high_value=healthy.trust.global_trust,
            expected_sign=+1,
        )
    )
    return contrasts


def run(
    *,
    sharing_levels: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    n_users: int = 40,
    rounds: int = 20,
    seed: int = 0,
    backend: str = "auto",
) -> Figure1Result:
    """Run E-F1 and return its result.

    ``sharing_levels`` is kept for API compatibility with older callers and
    the quick-mode presets; the empirical part now uses targeted contrasts
    rather than a correlation over that sweep.  ``backend`` selects the
    compute backend ("python", "vectorized" or "auto") without changing any
    result.
    """
    dynamics = CouplingDynamics(backend=backend)
    sensitivities = coupling_matrix(dynamics)

    sign_matches = {}
    for (source, target), expected in EXPECTED_SIGNS.items():
        measured = sensitivities[source][target]
        sign_matches[(source, target)] = measured > 0 if expected > 0 else measured < 0

    contrasts = _empirical_contrasts(n_users=n_users, rounds=rounds, seed=seed, backend=backend)
    return Figure1Result(
        sensitivities=sensitivities,
        sign_matches=sign_matches,
        contrasts=contrasts,
    )


def summarize(result: Figure1Result) -> dict[str, object]:
    """Flatten E-F1 to record metrics (sign agreement plus contrast deltas)."""
    metrics: dict[str, object] = {
        "all_signs_match": result.all_signs_match,
        "all_contrasts_hold": result.all_contrasts_hold,
        "n_signs": len(result.sign_matches),
        "n_signs_matching": sum(1 for match in result.sign_matches.values() if match),
        "n_contrasts": len(result.contrasts),
        "n_contrasts_holding": sum(1 for c in result.contrasts if c.holds),
    }
    for source, target in sorted(EXPECTED_SIGNS):
        metrics[f"sensitivity.{source}->{target}"] = result.sensitivities[source][target]
    for contrast in result.contrasts:
        metrics[f"contrast_delta.{contrast.name}"] = contrast.delta
    return metrics


def report(result: Figure1Result) -> str:
    """Render the E-F1 tables."""
    rows = []
    for (source, target), expected in EXPECTED_SIGNS.items():
        measured = result.sensitivities[source][target]
        rows.append(
            (
                f"{source} -> {target}",
                "+" if expected > 0 else "-",
                measured,
                result.sign_matches[(source, target)],
            )
        )
    table1 = format_table(
        ["coupling (Figure 1 arrow)", "paper sign", "measured sensitivity", "matches"],
        rows,
        title="E-F1: concept couplings at the dynamics equilibrium",
    )
    table2 = format_table(
        ["contrast", "cause", "effect", "low", "high", "holds"],
        [
            (
                contrast.name,
                contrast.cause,
                contrast.effect,
                contrast.low_value,
                contrast.high_value,
                contrast.holds,
            )
            for contrast in result.contrasts
        ],
        title="E-F1: couplings measured on full scenarios (targeted contrasts)",
    )
    return table1 + "\n\n" + table2

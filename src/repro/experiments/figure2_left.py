"""Experiment E-F2L: Figure 2 (left), the Area-A good-tradeoff region.

Figure 2 (left) is the spatial representation of the three dimensions:
"reaching a point located in the intersection area of all these dimensions
(i.e., Area A in the figure) represents a good tradeoff to attend a high
level of trust towards the system."

The experiment sweeps a two-dimensional grid of settings — the
information-sharing level (the reputation/privacy knob) and the policy
strictness (the privacy-guarantee knob) — evaluates the three facets for each
setting and reports which settings fall into Area A (every facet above the
threshold), the size of the region and the maximal-trust setting inside it.
The reproduced shape: Area A is non-empty, excludes both extremes of the
sharing level, and the trust optimum lies inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import SystemSettings
from repro.core.tradeoff import AnalyticFacetModel, SettingsExplorer, TradeoffPoint
from repro.errors import ConfigurationError
from repro.experiments.reporting import format_table


@dataclass
class Figure2LeftResult:
    """The evaluated grid, its Area-A subset and the best setting."""

    points: list[TradeoffPoint]
    area_a_points: list[TradeoffPoint]
    best_point: TradeoffPoint
    threshold: float

    @property
    def area_a_fraction(self) -> float:
        if not self.points:
            return 0.0
        return len(self.area_a_points) / len(self.points)

    @property
    def best_in_area_a(self) -> bool:
        return self.best_point.in_area_a


def run(
    *,
    sharing_levels: Sequence[float] | None = None,
    strictness_levels: Sequence[float] | None = None,
    threshold: float = 0.5,
    mechanism: str = "eigentrust",
) -> Figure2LeftResult:
    """Run E-F2L over a (sharing level × policy strictness) settings grid."""
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    sharing_levels = list(
        sharing_levels
        if sharing_levels is not None
        else [index / 10 for index in range(11)]
    )
    strictness_levels = list(
        strictness_levels if strictness_levels is not None else (0.0, 0.25, 0.5, 0.75, 1.0)
    )

    explorer = SettingsExplorer(evaluator=AnalyticFacetModel())
    settings_grid = [
        SystemSettings(
            sharing_level=sharing,
            policy_strictness=strictness,
            reputation_mechanism=mechanism,
            area_a_threshold=threshold,
        )
        for sharing in sharing_levels
        for strictness in strictness_levels
    ]
    points = explorer.sweep_settings(settings_grid)
    area_a_points = explorer.area_a(points)
    best_point = explorer.best(points)
    return Figure2LeftResult(
        points=points,
        area_a_points=area_a_points,
        best_point=best_point,
        threshold=threshold,
    )


def summarize(result: Figure2LeftResult) -> dict:
    """Flatten E-F2L to record metrics (Area-A size and the trust optimum)."""
    return {
        "n_points": len(result.points),
        "n_area_a_points": len(result.area_a_points),
        "area_a_fraction": result.area_a_fraction,
        "threshold": result.threshold,
        "best_trust": result.best_point.trust,
        "best_sharing_level": result.best_point.settings.sharing_level,
        "best_policy_strictness": result.best_point.settings.policy_strictness,
        "best_in_area_a": result.best_in_area_a,
    }


def report(result: Figure2LeftResult) -> str:
    area_rows = [
        (
            point.settings.sharing_level,
            point.settings.policy_strictness,
            point.facets.privacy,
            point.facets.reputation,
            point.facets.satisfaction,
            point.trust,
        )
        for point in sorted(result.area_a_points, key=lambda p: -p.trust)[:15]
    ]
    blocks = [
        (
            f"E-F2L: settings grid of {len(result.points)} points, threshold "
            f"{result.threshold:.2f}; Area A contains {len(result.area_a_points)} "
            f"settings ({result.area_a_fraction:.1%})"
        ),
        format_table(
            [
                "sharing level",
                "policy strictness",
                "privacy",
                "reputation",
                "satisfaction",
                "trust",
            ],
            area_rows,
            title="E-F2L: best settings inside Area A (top 15 by trust)",
        ),
        (
            "Trust-maximizing setting: sharing level "
            f"{result.best_point.settings.sharing_level:.2f}, policy strictness "
            f"{result.best_point.settings.policy_strictness:.2f}, trust "
            f"{result.best_point.trust:.3f}, inside Area A: "
            f"{'yes' if result.best_in_area_a else 'no'}"
        ),
    ]
    return "\n\n".join(blocks)

"""Experiments E-A1 and E-A2: design-choice ablations.

* **E-A1 — aggregator ablation.**  The paper asks for "a generic metric"; we
  compare the aggregator family (weighted, geometric, minimum, OWA) on the
  same tradeoff sweep: achieved maximal trust, the sharing level at which it
  is achieved, whether the optimum lies inside Area A, and how sharply the
  metric penalizes an unbalanced facet profile.

* **E-A2 — anonymous versus identified feedback.**  The paper cites
  reputation systems for anonymous networks as the privacy/reputation
  compromise; the ablation runs the same scenario with and without the
  anonymizing feedback channel and reports the reputation-accuracy cost and
  the privacy-exposure gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator, CompositeTrustMetric
from repro.core.tradeoff import SettingsExplorer
from repro.experiments.reporting import format_table
from repro.experiments.scenario import Scenario, ScenarioConfig


@dataclass
class AggregatorOutcome:
    aggregator: str
    best_trust: float
    best_sharing_level: float
    best_in_area_a: bool
    unbalanced_penalty: float


@dataclass
class AnonymityOutcome:
    mode: str
    reputation_accuracy: float
    reputation_facet: float
    privacy_facet: float
    mean_exposure_records: float
    trust: float


@dataclass
class AblationResult:
    aggregators: list[AggregatorOutcome]
    anonymity: list[AnonymityOutcome]

    def aggregator_by_name(self) -> dict[str, AggregatorOutcome]:
        return {outcome.aggregator: outcome for outcome in self.aggregators}

    def anonymity_by_mode(self) -> dict[str, AnonymityOutcome]:
        return {outcome.mode: outcome for outcome in self.anonymity}


def run_aggregator_ablation() -> list[AggregatorOutcome]:
    """E-A1: compare aggregators on the analytic tradeoff sweep."""
    outcomes = []
    balanced = FacetScores(privacy=0.6, reputation=0.6, satisfaction=0.6)
    unbalanced = FacetScores(privacy=0.1, reputation=0.85, satisfaction=0.85)
    for aggregator in Aggregator:
        explorer = SettingsExplorer(aggregator=aggregator)
        points = explorer.sweep_sharing_levels(resolution=41)
        best = explorer.best(points)
        metric = CompositeTrustMetric(aggregator=aggregator)
        penalty = metric.trust(balanced) - metric.trust(unbalanced)
        outcomes.append(
            AggregatorOutcome(
                aggregator=aggregator.value,
                best_trust=best.trust,
                best_sharing_level=best.sharing_level,
                best_in_area_a=best.in_area_a,
                unbalanced_penalty=penalty,
            )
        )
    return outcomes


#: (label, mechanism, anonymous?) modes compared by E-A2.  EigenTrust needs
#: rater identities, so the anonymous channel collapses it; Beta only counts
#: ratings, so it degrades gracefully — together they bound the accuracy cost
#: of anonymity.
ANONYMITY_MODES = (
    ("identified-eigentrust", "eigentrust", False),
    ("anonymous-eigentrust", "eigentrust", True),
    ("identified-beta", "beta", False),
    ("anonymous-beta", "beta", True),
)


def run_anonymity_ablation(
    *, n_users: int = 40, rounds: int = 20, seed: int = 0, backend: str = "auto"
) -> list[AnonymityOutcome]:
    """E-A2: identified versus anonymous feedback on the same scenario."""
    outcomes = []
    for label, mechanism, anonymous in ANONYMITY_MODES:
        settings = SystemSettings(reputation_mechanism=mechanism, anonymous_feedback=anonymous)
        result = Scenario(
            ScenarioConfig(
                n_users=n_users,
                rounds=rounds,
                seed=seed,
                malicious_fraction=0.3,
                settings=settings,
                backend=backend,
            )
        ).run()
        owners = result.ledger.owners()
        mean_records = (
            sum(len(result.ledger.by_owner(owner)) for owner in owners) / len(owners)
            if owners
            else 0.0
        )
        outcomes.append(
            AnonymityOutcome(
                mode=label,
                reputation_accuracy=result.reputation_accuracy,
                reputation_facet=result.facets.reputation,
                privacy_facet=result.facets.privacy,
                mean_exposure_records=mean_records,
                trust=result.trust.global_trust,
            )
        )
    return outcomes


def run(
    *, n_users: int = 40, rounds: int = 20, seed: int = 0, backend: str = "auto"
) -> AblationResult:
    return AblationResult(
        aggregators=run_aggregator_ablation(),
        anonymity=run_anonymity_ablation(
            n_users=n_users, rounds=rounds, seed=seed, backend=backend
        ),
    )


def summarize(result: AblationResult) -> dict[str, object]:
    """Flatten E-A1/E-A2 to record metrics (per-variant key numbers)."""
    metrics: dict[str, object] = {
        "n_aggregators": len(result.aggregators),
        "n_anonymity_modes": len(result.anonymity),
    }
    for outcome in result.aggregators:
        prefix = f"aggregator.{outcome.aggregator}"
        metrics[f"{prefix}.best_trust"] = outcome.best_trust
        metrics[f"{prefix}.best_sharing_level"] = outcome.best_sharing_level
        metrics[f"{prefix}.best_in_area_a"] = outcome.best_in_area_a
        metrics[f"{prefix}.unbalanced_penalty"] = outcome.unbalanced_penalty
    for outcome in result.anonymity:
        prefix = f"anonymity.{outcome.mode}"
        metrics[f"{prefix}.reputation_accuracy"] = outcome.reputation_accuracy
        metrics[f"{prefix}.reputation_facet"] = outcome.reputation_facet
        metrics[f"{prefix}.privacy_facet"] = outcome.privacy_facet
        metrics[f"{prefix}.trust"] = outcome.trust
    return metrics


def report(result: AblationResult) -> str:
    aggregator_table = format_table(
        [
            "aggregator",
            "max trust",
            "best sharing level",
            "optimum in Area A",
            "penalty for unbalanced facets",
        ],
        [
            (
                outcome.aggregator,
                outcome.best_trust,
                outcome.best_sharing_level,
                outcome.best_in_area_a,
                outcome.unbalanced_penalty,
            )
            for outcome in result.aggregators
        ],
        title="E-A1: composite-metric aggregator ablation",
    )
    anonymity_table = format_table(
        [
            "feedback mode",
            "ranking accuracy",
            "reputation facet",
            "privacy facet",
            "ledger records per owner",
            "trust",
        ],
        [
            (
                outcome.mode,
                outcome.reputation_accuracy,
                outcome.reputation_facet,
                outcome.privacy_facet,
                outcome.mean_exposure_records,
                outcome.trust,
            )
            for outcome in result.anonymity
        ],
        title="E-A2: anonymous versus identified feedback",
    )
    return aggregator_table + "\n\n" + anonymity_table

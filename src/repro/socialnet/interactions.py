"""Interaction traces between socially connected users.

Reputation "is constructed from the interaction and feedback of users"
(paper, Section 3).  The trace generator produces a stream of typed
interactions (messages, content shares, service requests, ratings) between
connected users, biased by tie strength and user activity, which the
simulation and the reputation mechanisms consume as their workload.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.socialnet.graph import SocialGraph


class InteractionKind(enum.Enum):
    """The kinds of pairwise interactions a social network mediates."""

    MESSAGE = "message"
    CONTENT_SHARE = "content_share"
    SERVICE_REQUEST = "service_request"
    RATING = "rating"
    FRIEND_REQUEST = "friend_request"


@dataclass(frozen=True)
class Interaction:
    """One directed interaction from ``initiator`` to ``partner`` at ``time``."""

    time: int
    initiator: str
    partner: str
    kind: InteractionKind
    payload_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        if self.initiator == self.partner:
            raise ConfigurationError("interactions require two distinct users")
        if not 0.0 <= self.payload_sensitivity <= 1.0:
            raise ConfigurationError("payload_sensitivity must be in [0, 1]")


@dataclass
class InteractionTrace:
    """An ordered collection of interactions plus convenience accessors."""

    interactions: list[Interaction] = field(default_factory=list)

    def append(self, interaction: Interaction) -> None:
        self.interactions.append(interaction)

    def __len__(self) -> int:
        return len(self.interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.interactions)

    def involving(self, user_id: str) -> list[Interaction]:
        """Every interaction the user initiated or received."""
        return [i for i in self.interactions if user_id in (i.initiator, i.partner)]

    def initiated_by(self, user_id: str) -> list[Interaction]:
        return [i for i in self.interactions if i.initiator == user_id]

    def pair_count(self, a: str, b: str) -> int:
        """Number of interactions (either direction) between two users."""
        return sum(1 for i in self.interactions if {i.initiator, i.partner} == {a, b})

    def span(self) -> int:
        """Number of distinct time steps covered by the trace."""
        if not self.interactions:
            return 0
        times = {i.time for i in self.interactions}
        return max(times) - min(times) + 1


class InteractionTraceGenerator:
    """Generate interaction traces over a :class:`SocialGraph`.

    Each step, every user initiates an interaction with probability equal to
    its ``activity``; the partner is a neighbour sampled proportionally to tie
    strength.  The payload sensitivity is drawn from the initiator's privacy
    concern so privacy-conscious users tend to exchange more sensitive data
    (which is what makes their policies matter).
    """

    def __init__(
        self,
        graph: SocialGraph,
        *,
        kinds: Sequence[InteractionKind] | None = None,
        seed: int = 0,
    ) -> None:
        if len(graph) < 2:
            raise ConfigurationError("need at least two users to interact")
        self._graph = graph
        self._kinds = list(kinds) if kinds else list(InteractionKind)
        self._rng = random.Random(seed)

    def _pick_partner(self, user_id: str) -> str | None:
        neighbors = self._graph.neighbors(user_id)
        if not neighbors:
            return None
        weights = [self._graph.tie_strength(user_id, n) for n in neighbors]
        total = sum(weights)
        # repro-lint: ignore[R5] exact sentinel: non-negative tie strengths
        # sum to exactly 0.0 only when all are exactly zero
        if total == 0.0:
            return self._rng.choice(neighbors)
        return self._rng.choices(neighbors, weights=weights, k=1)[0]

    def generate(self, steps: int) -> InteractionTrace:
        """Generate a trace covering ``steps`` time steps."""
        if steps < 0:
            raise ConfigurationError("steps must be non-negative")
        trace = InteractionTrace()
        for t in range(steps):
            for user in self._graph.users():
                if self._rng.random() >= user.activity:
                    continue
                partner = self._pick_partner(user.user_id)
                if partner is None:
                    continue
                kind = self._rng.choice(self._kinds)
                sensitivity = self._rng.uniform(0.0, user.privacy_concern)
                trace.append(
                    Interaction(
                        time=t,
                        initiator=user.user_id,
                        partner=partner,
                        kind=kind,
                        payload_sensitivity=sensitivity,
                    )
                )
        return trace

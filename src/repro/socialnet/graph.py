"""The :class:`SocialGraph`: users plus their relationship topology.

A thin, explicit wrapper around :class:`networkx.Graph` that stores
:class:`~repro.socialnet.user.User` objects on nodes and exposes exactly the
operations the rest of the library needs (neighbour queries, shortest social
distance, acquaintance checks, degree statistics).  Keeping the wrapper small
makes the simulation and reputation code independent of networkx details.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.errors import ConfigurationError, UnknownPeerError
from repro.socialnet.user import User


class SocialGraph:
    """An undirected social graph whose nodes are user identifiers.

    Neighbour and user listings are cached: the simulation inner loops call
    :meth:`neighbors`, :meth:`users` and :meth:`user_ids` once per peer per
    round, and rebuilding fresh lists from networkx every time dominated the
    profile.  Mutations (:meth:`add_user`, :meth:`add_relationship`,
    :meth:`remove_user`) invalidate the caches.  Treat returned lists as
    read-only views.
    """

    def __init__(self, users: Iterable[User] | None = None) -> None:
        self._graph = nx.Graph()
        self._users: dict[str, User] = {}
        self._neighbors_cache: dict[str, list[str]] = {}
        self._users_cache: list[User] | None = None
        self._user_ids_cache: list[str] | None = None
        self._version = 0
        for user in users or []:
            self.add_user(user)

    # -- construction -----------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumps on every structural change).

        The shared-setup caches key their validity on this: a cached graph
        whose version moved since it was stored has been mutated by some
        consumer and is silently regenerated instead of reused.
        """
        return self._version

    def _invalidate_caches(self) -> None:
        self._neighbors_cache.clear()
        self._users_cache = None
        self._user_ids_cache = None
        self._version += 1

    def add_user(self, user: User) -> None:
        """Add a user node; replacing an existing user keeps its edges."""
        self._users[user.user_id] = user
        self._graph.add_node(user.user_id)
        self._invalidate_caches()

    def add_relationship(self, a: str, b: str, *, strength: float = 1.0) -> None:
        """Connect two existing users with a tie of the given strength."""
        self._require(a)
        self._require(b)
        if a == b:
            raise ConfigurationError("self relationships are not allowed")
        self._graph.add_edge(a, b, strength=float(strength))
        self._invalidate_caches()

    def remove_user(self, user_id: str) -> None:
        """Remove a user and all its relationships (e.g. permanent churn)."""
        self._require(user_id)
        self._graph.remove_node(user_id)
        del self._users[user_id]
        self._invalidate_caches()

    # -- queries ----------------------------------------------------------

    def _require(self, user_id: str) -> None:
        if user_id not in self._users:
            raise UnknownPeerError(user_id)

    def user(self, user_id: str) -> User:
        self._require(user_id)
        return self._users[user_id]

    def users(self) -> list[User]:
        """All users (cached view; do not mutate the returned list)."""
        if self._users_cache is None:
            self._users_cache = list(self._users.values())
        return self._users_cache

    def user_ids(self) -> list[str]:
        """All user identifiers (cached view; do not mutate)."""
        if self._user_ids_cache is None:
            self._user_ids_cache = list(self._users.keys())
        return self._user_ids_cache

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._users

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self) -> Iterator[str]:
        return iter(self._users)

    def neighbors(self, user_id: str) -> list[str]:
        """Direct neighbours of a user (cached view; do not mutate)."""
        self._require(user_id)
        cached = self._neighbors_cache.get(user_id)
        if cached is None:
            cached = list(self._graph.neighbors(user_id))
            self._neighbors_cache[user_id] = cached
        return cached

    def are_connected(self, a: str, b: str) -> bool:
        self._require(a)
        self._require(b)
        return self._graph.has_edge(a, b)

    def tie_strength(self, a: str, b: str) -> float:
        """Strength of the tie between two users, 0.0 when not connected."""
        self._require(a)
        self._require(b)
        data = self._graph.get_edge_data(a, b)
        if data is None:
            return 0.0
        return float(data.get("strength", 1.0))

    def degree(self, user_id: str) -> int:
        self._require(user_id)
        return int(self._graph.degree[user_id])

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    def social_distance(self, a: str, b: str) -> int | None:
        """Shortest-path hop count between two users, ``None`` if unreachable."""
        self._require(a)
        self._require(b)
        try:
            return int(nx.shortest_path_length(self._graph, a, b))
        except nx.NetworkXNoPath:
            return None

    def is_connected(self) -> bool:
        """Whether the whole graph forms a single connected component."""
        if len(self) == 0:
            return True
        return nx.is_connected(self._graph)

    def largest_component(self) -> list[str]:
        """Identifiers of the largest connected component."""
        if len(self) == 0:
            return []
        return list(max(nx.connected_components(self._graph), key=len))

    def average_degree(self) -> float:
        if len(self) == 0:
            return 0.0
        return 2.0 * self.number_of_edges() / len(self)

    def clustering_coefficient(self) -> float:
        """Average clustering coefficient of the graph (0.0 when empty)."""
        if len(self) == 0:
            return 0.0
        return float(nx.average_clustering(self._graph))

    def honest_fraction(self) -> float:
        """Fraction of users that are predominantly honest."""
        if not self._users:
            return 0.0
        honest = sum(1 for user in self._users.values() if user.is_honest)
        return honest / len(self._users)

    def to_networkx(self) -> nx.Graph:
        """Return a copy of the underlying networkx graph (nodes = user ids)."""
        return self._graph.copy()

    def copy(self) -> SocialGraph:
        """An independent structural copy sharing the (read-only) users.

        The networkx graph is copied adjacency-dict for adjacency-dict, so
        neighbour iteration order — which downstream determinism depends on
        — is preserved exactly.  :class:`User` objects are shared, not
        deep-copied: nothing in the library mutates a user after creation.
        Scenario setup uses this to mutate a population (e.g. inject
        sybils) without touching the cached base network.
        """
        duplicate = SocialGraph.__new__(SocialGraph)
        duplicate._graph = self._graph.copy()
        duplicate._users = dict(self._users)
        duplicate._neighbors_cache = {}
        duplicate._users_cache = None
        duplicate._user_ids_cache = None
        duplicate._version = 0
        return duplicate

    def subgraph(self, user_ids: Iterable[str]) -> SocialGraph:
        """Build a new :class:`SocialGraph` restricted to the given users."""
        ids = [uid for uid in user_ids]
        for uid in ids:
            self._require(uid)
        sub = SocialGraph(self._users[uid] for uid in ids)
        for a, b, data in self._graph.subgraph(ids).edges(data=True):
            sub.add_relationship(a, b, strength=data.get("strength", 1.0))
        return sub

"""Synthetic social networks: users, profiles, graphs and interaction traces.

The paper studies decentralized social-networking systems but provides no
dataset; this subpackage provides the laptop-scale synthetic substitute used
by every experiment.  It covers:

* :mod:`repro.socialnet.user` — users, profiles, sensitive attributes;
* :mod:`repro.socialnet.graph` — a :class:`SocialGraph` wrapper over
  :mod:`networkx` exposing the operations the rest of the library needs;
* :mod:`repro.socialnet.generators` — Erdős–Rényi, Barabási–Albert,
  Watts–Strogatz and stochastic-block-model topologies with populated users;
* :mod:`repro.socialnet.interactions` — interaction-trace generation between
  connected users;
* :mod:`repro.socialnet.communities` — community extraction helpers.
"""

from repro.socialnet.communities import (
    community_partition,
    intra_community_fraction,
    modularity,
)
from repro.socialnet.generators import (
    SocialNetworkSpec,
    generate_social_network,
    populate_users,
)
from repro.socialnet.graph import SocialGraph
from repro.socialnet.presets import (
    NETWORK_PRESETS,
    generate_preset,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    preset_spec,
)
from repro.socialnet.interactions import (
    Interaction,
    InteractionKind,
    InteractionTrace,
    InteractionTraceGenerator,
)
from repro.socialnet.user import (
    AttributeSensitivity,
    ProfileAttribute,
    User,
    UserProfile,
    standard_profile,
)

__all__ = [
    "AttributeSensitivity",
    "Interaction",
    "InteractionKind",
    "InteractionTrace",
    "InteractionTraceGenerator",
    "NETWORK_PRESETS",
    "ProfileAttribute",
    "SocialGraph",
    "SocialNetworkSpec",
    "User",
    "UserProfile",
    "community_partition",
    "generate_preset",
    "generate_social_network",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "intra_community_fraction",
    "modularity",
    "populate_users",
    "preset_spec",
    "standard_profile",
]

"""Community structure helpers.

Communities matter for two experiments: interaction traces are denser inside
communities (which biases who learns whose reputation locally), and the
"global vision" versus "local vision" of satisfaction discussed in Section 3
is operationalized as community-local versus network-global aggregation.
"""

from __future__ import annotations


import networkx as nx

from repro.socialnet.graph import SocialGraph


def community_partition(graph: SocialGraph, *, seed: int = 0) -> dict[str, int]:
    """Partition users into communities.

    Users generated with an explicit community label (SBM topologies) keep it;
    otherwise greedy modularity maximization on the topology is used.  The
    result maps every user id to a community index.
    """
    explicit = {
        user.user_id: user.community
        for user in graph.users()
        if user.community is not None
    }
    if len(explicit) == len(graph):
        return {uid: int(label) for uid, label in explicit.items()}

    nx_graph = graph.to_networkx()
    if nx_graph.number_of_nodes() == 0:
        return {}
    communities = nx.algorithms.community.greedy_modularity_communities(nx_graph)
    partition: dict[str, int] = {}
    for index, members in enumerate(communities):
        for member in members:
            partition[member] = index
    return partition


def modularity(graph: SocialGraph, partition: dict[str, int]) -> float:
    """Newman modularity of a partition over the social graph."""
    nx_graph = graph.to_networkx()
    if nx_graph.number_of_edges() == 0:
        return 0.0
    groups: dict[int, list[str]] = {}
    for user_id, label in partition.items():
        groups.setdefault(label, []).append(user_id)
    return float(nx.algorithms.community.modularity(nx_graph, list(groups.values())))


def intra_community_fraction(graph: SocialGraph, partition: dict[str, int]) -> float:
    """Fraction of edges whose endpoints share a community (1.0 if no edges)."""
    nx_graph = graph.to_networkx()
    edges = list(nx_graph.edges())
    if not edges:
        return 1.0
    intra = sum(1 for a, b in edges if partition.get(a) == partition.get(b))
    return intra / len(edges)

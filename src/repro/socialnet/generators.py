"""Synthetic social-network generation.

The paper's experiments require "large-scale networks composed by numerous
autonomous and potentially untrusted participants" but no dataset is
available.  :func:`generate_social_network` builds laptop-scale synthetic
topologies with the usual models (Erdős–Rényi, Barabási–Albert,
Watts–Strogatz, stochastic block model) and populates them with
:class:`~repro.socialnet.user.User` objects whose behavioural parameters
(honesty, competence, activity, privacy concern) are drawn from the
specification, including an explicit malicious fraction for the adversarial
experiments.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

import networkx as nx

from repro._util import require_positive, require_unit_interval
from repro.core import accel
from repro.errors import ConfigurationError
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User, standard_profile

#: Topology model identifiers accepted by :class:`SocialNetworkSpec`.
TOPOLOGIES = ("erdos_renyi", "barabasi_albert", "watts_strogatz", "sbm")


@dataclass
class SocialNetworkSpec:
    """Specification of a synthetic social network.

    Parameters
    ----------
    n_users:
        Number of participants.
    topology:
        One of ``"erdos_renyi"``, ``"barabasi_albert"``, ``"watts_strogatz"``
        or ``"sbm"`` (stochastic block model with ``n_communities`` blocks).
    mean_degree:
        Target average degree; translated into the per-model parameter.
    malicious_fraction:
        Fraction of users created with low honesty (drawn in ``[0, 0.3]``);
        the rest are honest (honesty in ``[0.7, 1.0]``).
    rewiring_probability:
        Watts–Strogatz rewiring probability.
    n_communities / inter_community_probability:
        Stochastic-block-model parameters.
    privacy_concern_range:
        Uniform range from which each user's privacy concern is drawn.
    """

    n_users: int = 100
    topology: str = "barabasi_albert"
    mean_degree: float = 6.0
    malicious_fraction: float = 0.2
    rewiring_probability: float = 0.1
    n_communities: int = 4
    inter_community_probability: float = 0.01
    privacy_concern_range: tuple = (0.2, 0.9)
    seed: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        require_positive(self.mean_degree, "mean_degree")
        require_unit_interval(self.malicious_fraction, "malicious_fraction")
        require_unit_interval(self.rewiring_probability, "rewiring_probability")
        require_unit_interval(self.inter_community_probability, "inter_community_probability")
        if self.n_communities < 1:
            raise ConfigurationError("n_communities must be at least 1")
        low, high = self.privacy_concern_range
        require_unit_interval(low, "privacy_concern_range low")
        require_unit_interval(high, "privacy_concern_range high")
        if low > high:
            raise ConfigurationError("privacy_concern_range must be (low, high)")


def _build_topology(spec: SocialNetworkSpec) -> nx.Graph:
    """Build the bare networkx topology for the specification."""
    n = spec.n_users
    if spec.topology == "erdos_renyi":
        p = min(1.0, spec.mean_degree / max(1, n - 1))
        graph = nx.gnp_random_graph(n, p, seed=spec.seed)
    elif spec.topology == "barabasi_albert":
        m = max(1, min(n - 1, int(round(spec.mean_degree / 2.0))))
        graph = nx.barabasi_albert_graph(n, m, seed=spec.seed)
    elif spec.topology == "watts_strogatz":
        k = max(2, int(round(spec.mean_degree)))
        if k % 2 == 1:
            k += 1
        k = min(k, n - 1 if (n - 1) % 2 == 0 else n - 2)
        k = max(2, k)
        graph = nx.watts_strogatz_graph(n, k, spec.rewiring_probability, seed=spec.seed)
    else:  # sbm
        sizes = [n // spec.n_communities] * spec.n_communities
        sizes[0] += n - sum(sizes)
        p_in = min(1.0, spec.mean_degree / max(1, (n / spec.n_communities)))
        probs = [
            [
                p_in if i == j else spec.inter_community_probability
                for j in range(spec.n_communities)
            ]
            for i in range(spec.n_communities)
        ]
        graph = nx.stochastic_block_model(sizes, probs, seed=spec.seed)
    return graph


def _ensure_connected(graph: nx.Graph, rng: random.Random) -> None:
    """Connect stray components by adding one random bridge edge per component.

    Experiments assume reachability (reputation propagation, social distance);
    a handful of bridge edges does not change the topology's character.
    """
    components = list(nx.connected_components(graph))
    if len(components) <= 1:
        return
    anchor = list(components[0])
    for component in components[1:]:
        a = rng.choice(anchor)
        b = rng.choice(list(component))
        graph.add_edge(a, b)
        anchor.extend(component)


def populate_users(
    node_ids: list[int],
    spec: SocialNetworkSpec,
    rng: random.Random,
    communities: dict[int, int] | None = None,
) -> list[User]:
    """Create :class:`User` objects for the given node identifiers.

    The first ``malicious_fraction`` share of users (after shuffling) receives
    low honesty; everyone else is honest.  Competence and activity are drawn
    uniformly so providers are heterogeneous, which the satisfaction model
    needs to express preferences.
    """
    shuffled = list(node_ids)
    rng.shuffle(shuffled)
    n_malicious = int(round(spec.malicious_fraction * len(shuffled)))
    malicious_ids = set(shuffled[:n_malicious])
    low_pc, high_pc = spec.privacy_concern_range

    users = []
    for node in node_ids:
        user_id = f"u{node}"
        if node in malicious_ids:
            honesty = rng.uniform(0.0, 0.3)
        else:
            honesty = rng.uniform(0.7, 1.0)
        user = User(
            user_id=user_id,
            profile=standard_profile(user_id, age=rng.randint(18, 80)),
            honesty=honesty,
            competence=rng.uniform(0.3, 1.0),
            activity=rng.uniform(0.1, 1.0),
            privacy_concern=rng.uniform(low_pc, high_pc),
            community=communities.get(node) if communities else None,
        )
        users.append(user)
    return users


def generate_social_network(spec: SocialNetworkSpec) -> SocialGraph:
    """Generate a connected :class:`SocialGraph` matching the specification."""
    rng = random.Random(spec.seed)
    graph = _build_topology(spec)
    _ensure_connected(graph, rng)

    communities: dict[int, int] | None = None
    if spec.topology == "sbm":
        communities = {node: data.get("block", 0) for node, data in graph.nodes(data=True)}

    users = populate_users(list(graph.nodes()), spec, rng, communities)
    social = SocialGraph(users)
    for a, b in graph.edges():
        social.add_relationship(f"u{a}", f"u{b}", strength=rng.uniform(0.3, 1.0))
    return social


# -- shared setup cache ----------------------------------------------------------

#: Most-recently-used cache of generated networks, keyed by specification.
#: Small on purpose: entries hold whole graphs, and the sharing pattern this
#: serves (every mechanism column of a robustness row, repeated sweep tasks)
#: cycles through a handful of specifications at a time.
_NETWORK_CACHE_SIZE = 8
_NETWORK_CACHE: OrderedDict[tuple, tuple[SocialGraph, int]] = OrderedDict()


def _spec_cache_key(spec: SocialNetworkSpec) -> tuple | None:
    """A hashable identity for the spec, or ``None`` when it has none
    (unhashable ``extra`` payloads fall back to fresh generation)."""
    try:
        return (
            spec.n_users,
            spec.topology,
            spec.mean_degree,
            spec.malicious_fraction,
            spec.rewiring_probability,
            spec.n_communities,
            spec.inter_community_probability,
            tuple(spec.privacy_concern_range),
            spec.seed,
            tuple(sorted(spec.extra.items())),
        )
    except TypeError:
        return None


def clear_network_cache() -> None:
    """Drop every cached network (tests and benchmarks use this)."""
    _NETWORK_CACHE.clear()


def cached_social_network(spec: SocialNetworkSpec) -> SocialGraph:
    """A shared, read-only network for the specification.

    Generation is deterministic in the spec, so callers that only *read*
    the graph (every experiment pipeline; simulations mutate peers, never
    the graph) can share one instance instead of regenerating it per
    (scenario × mechanism) cell or sweep task.  The cache records the
    graph's mutation :attr:`~repro.socialnet.graph.SocialGraph.version` at
    store time and regenerates on mismatch, so a consumer that does mutate
    a shared graph costs a rebuild rather than corrupting later runs.
    Callers that need to mutate should take ``.copy()`` first.  With the
    setup cache disabled this is exactly :func:`generate_social_network`.
    """
    if not accel.flags().setup_cache:
        return generate_social_network(spec)
    key = _spec_cache_key(spec)
    if key is None:
        return generate_social_network(spec)
    cached = _NETWORK_CACHE.get(key)
    if cached is not None:
        graph, version = cached
        if graph.version == version:
            _NETWORK_CACHE.move_to_end(key)
            return graph
        del _NETWORK_CACHE[key]
    graph = generate_social_network(spec)
    _NETWORK_CACHE[key] = (graph, graph.version)
    while len(_NETWORK_CACHE) > _NETWORK_CACHE_SIZE:
        _NETWORK_CACHE.popitem(last=False)
    return graph

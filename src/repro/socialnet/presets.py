"""Named social-network presets and graph (de)serialization.

Presets give the examples and experiments recognizable starting points —
"a Facebook-like friendship network", "a P2P file-sharing swarm", "a
professional network" — without repeating parameter blocks everywhere.
Serialization lets a generated network be saved and re-loaded so that
experiments can be re-run on exactly the same population.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import AttributeSensitivity, ProfileAttribute, User, UserProfile

#: Named presets: recognisable social-network shapes at laptop scale.
NETWORK_PRESETS: dict[str, SocialNetworkSpec] = {
    # Dense friend graph with strong communities and privacy-aware users.
    "friendship": SocialNetworkSpec(
        n_users=120,
        topology="sbm",
        n_communities=6,
        mean_degree=10.0,
        inter_community_probability=0.02,
        malicious_fraction=0.05,
        privacy_concern_range=(0.4, 0.95),
    ),
    # Scale-free swarm with a sizeable dishonest population (the reputation
    # literature's classic setting).
    "file-sharing": SocialNetworkSpec(
        n_users=150,
        topology="barabasi_albert",
        mean_degree=6.0,
        malicious_fraction=0.3,
        privacy_concern_range=(0.1, 0.6),
    ),
    # Small-world acquaintance network, mostly honest, moderately private.
    "professional": SocialNetworkSpec(
        n_users=80,
        topology="watts_strogatz",
        mean_degree=8.0,
        rewiring_probability=0.2,
        malicious_fraction=0.1,
        privacy_concern_range=(0.3, 0.8),
    ),
    # Tiny network for demos and tests.
    "village": SocialNetworkSpec(
        n_users=25,
        topology="watts_strogatz",
        mean_degree=4.0,
        malicious_fraction=0.15,
    ),
    # Hostile environment for robustness studies: scale-free topology (hub
    # capture is what attacks exploit), a third of the population dishonest,
    # and low privacy concern so the reputation mechanism sees almost all
    # evidence — attacks are measured at full mechanism strength.
    "adversarial-lab": SocialNetworkSpec(
        n_users=60,
        topology="barabasi_albert",
        mean_degree=6.0,
        malicious_fraction=0.35,
        privacy_concern_range=(0.0, 0.3),
    ),
}


def preset_spec(name: str, *, seed: int = 0) -> SocialNetworkSpec:
    """The :class:`SocialNetworkSpec` behind a preset, reseeded."""
    try:
        base = NETWORK_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network preset {name!r}; available: {sorted(NETWORK_PRESETS)}"
        ) from None
    return SocialNetworkSpec(
        n_users=base.n_users,
        topology=base.topology,
        mean_degree=base.mean_degree,
        malicious_fraction=base.malicious_fraction,
        rewiring_probability=base.rewiring_probability,
        n_communities=base.n_communities,
        inter_community_probability=base.inter_community_probability,
        privacy_concern_range=base.privacy_concern_range,
        seed=seed,
    )


def generate_preset(name: str, *, seed: int = 0) -> SocialGraph:
    """Generate the named preset network."""
    return generate_social_network(preset_spec(name, seed=seed))


# -- graph (de)serialization ----------------------------------------------------


def graph_to_dict(graph: SocialGraph) -> dict[str, object]:
    """Serialize a social graph (users, profiles, relationships) to plain data."""
    users = []
    for user in graph.users():
        users.append(
            {
                "user_id": user.user_id,
                "honesty": user.honesty,
                "competence": user.competence,
                "activity": user.activity,
                "privacy_concern": user.privacy_concern,
                "community": user.community,
                "profile": [
                    {
                        "name": attribute.name,
                        "value": attribute.value,
                        "sensitivity": attribute.sensitivity.name,
                    }
                    for attribute in user.profile
                ],
            }
        )
    nx_graph = graph.to_networkx()
    edges = [
        {"a": a, "b": b, "strength": data.get("strength", 1.0)}
        for a, b, data in nx_graph.edges(data=True)
    ]
    return {"users": users, "edges": edges}


def graph_from_dict(data: dict[str, object]) -> SocialGraph:
    """Rebuild a social graph serialized by :func:`graph_to_dict`."""
    users_data = data.get("users")
    if not isinstance(users_data, list):
        raise ConfigurationError("graph document has no user list")
    users = []
    for entry in users_data:
        profile = UserProfile()
        for attribute in entry.get("profile", []):
            try:
                sensitivity = AttributeSensitivity[attribute["sensitivity"]]
            except KeyError as error:
                raise ConfigurationError(
                    f"unknown sensitivity {attribute.get('sensitivity')!r}"
                ) from error
            profile.add(
                ProfileAttribute(
                    name=attribute["name"],
                    value=attribute["value"],
                    sensitivity=sensitivity,
                )
            )
        users.append(
            User(
                user_id=entry["user_id"],
                profile=profile,
                honesty=entry.get("honesty", 1.0),
                competence=entry.get("competence", 0.8),
                activity=entry.get("activity", 0.5),
                privacy_concern=entry.get("privacy_concern", 0.5),
                community=entry.get("community"),
            )
        )
    graph = SocialGraph(users)
    for edge in data.get("edges", []):
        graph.add_relationship(edge["a"], edge["b"], strength=edge.get("strength", 1.0))
    return graph


def graph_to_json(graph: SocialGraph, *, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(document: str) -> SocialGraph:
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"malformed graph JSON: {error}") from error
    return graph_from_dict(data)

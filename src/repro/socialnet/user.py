"""Users of the social network and their (sensitive) profile data.

The privacy facet of the paper is about *personal data*: what a user shares,
with whom and for which purpose.  To make that measurable we give each user a
profile made of attributes with an explicit sensitivity level; the privacy
subsystem then attaches privacy policies to attributes and the disclosure
ledger accounts for every access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro._util import require_unit_interval
from repro.errors import ConfigurationError


class AttributeSensitivity(enum.IntEnum):
    """Coarse sensitivity classes for profile attributes.

    The numeric values are ordered so that comparisons express "at least as
    sensitive as"; the default exposure weight of an attribute grows with its
    sensitivity.
    """

    PUBLIC = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4

    @property
    def exposure_weight(self) -> float:
        """Weight used by privacy metrics when this attribute is disclosed."""
        return {
            AttributeSensitivity.PUBLIC: 0.0,
            AttributeSensitivity.LOW: 0.25,
            AttributeSensitivity.MEDIUM: 0.5,
            AttributeSensitivity.HIGH: 0.75,
            AttributeSensitivity.CRITICAL: 1.0,
        }[self]


@dataclass(frozen=True)
class ProfileAttribute:
    """A single named profile attribute with a value and a sensitivity."""

    name: str
    value: object
    sensitivity: AttributeSensitivity = AttributeSensitivity.LOW

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("attribute name must not be empty")


@dataclass
class UserProfile:
    """A collection of named attributes belonging to one user."""

    attributes: dict[str, ProfileAttribute] = field(default_factory=dict)

    def add(self, attribute: ProfileAttribute) -> None:
        """Add or replace an attribute."""
        self.attributes[attribute.name] = attribute

    def get(self, name: str) -> ProfileAttribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise ConfigurationError(f"profile has no attribute {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def __iter__(self) -> Iterator[ProfileAttribute]:
        return iter(self.attributes.values())

    def __len__(self) -> int:
        return len(self.attributes)

    def sensitive_attributes(
        self, minimum: AttributeSensitivity = AttributeSensitivity.MEDIUM
    ) -> list[ProfileAttribute]:
        """Return the attributes whose sensitivity is at least ``minimum``."""
        return [attr for attr in self if attr.sensitivity >= minimum]

    def total_exposure_weight(self) -> float:
        """Sum of exposure weights — the maximum possible disclosure cost."""
        return sum(attr.sensitivity.exposure_weight for attr in self)


def standard_profile(user_id: str, *, age: int = 30, city: str = "Nantes") -> UserProfile:
    """Build the canonical synthetic profile used by generators and tests.

    The attribute mix spans every sensitivity class so privacy experiments can
    distinguish disclosing a display name from disclosing health data.
    """
    profile = UserProfile()
    profile.add(ProfileAttribute("display_name", f"user-{user_id}", AttributeSensitivity.PUBLIC))
    profile.add(ProfileAttribute("city", city, AttributeSensitivity.LOW))
    profile.add(ProfileAttribute("age", age, AttributeSensitivity.MEDIUM))
    profile.add(ProfileAttribute("email", f"{user_id}@example.org", AttributeSensitivity.MEDIUM))
    profile.add(ProfileAttribute("relationship_status", "undisclosed", AttributeSensitivity.HIGH))
    profile.add(ProfileAttribute("political_views", "undisclosed", AttributeSensitivity.CRITICAL))
    profile.add(ProfileAttribute("health_record", "undisclosed", AttributeSensitivity.CRITICAL))
    return profile


@dataclass
class User:
    """A participant of the social network.

    Behavioural parameters (``honesty``, ``competence``, ``activity``) drive
    the simulation: honesty is the probability of serving a correct
    transaction and reporting feedback truthfully; competence scales the
    quality of provided answers; activity scales how often the user initiates
    interactions.  ``privacy_concern`` in ``[0, 1]`` expresses how much the
    user values non-disclosure and is used when translating disclosures into
    privacy (dis)satisfaction.
    """

    user_id: str
    profile: UserProfile = field(default_factory=UserProfile)
    honesty: float = 1.0
    competence: float = 0.8
    activity: float = 0.5
    privacy_concern: float = 0.5
    community: int | None = None

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ConfigurationError("user_id must not be empty")
        require_unit_interval(self.honesty, "honesty")
        require_unit_interval(self.competence, "competence")
        require_unit_interval(self.activity, "activity")
        require_unit_interval(self.privacy_concern, "privacy_concern")

    @property
    def is_honest(self) -> bool:
        """Whether the user is predominantly honest (honesty above one half)."""
        return self.honesty >= 0.5

    def __hash__(self) -> int:
        return hash(self.user_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, User):
            return NotImplemented
        return self.user_id == other.user_id

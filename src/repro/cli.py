"""The unified command-line surface: ``python -m repro`` / ``repro``.

One entry point, five subcommands::

    repro run [EXPERIMENT ...]      regenerate the paper's experiments
    repro sweep EXPERIMENT ...      parallel parameter campaigns -> records
    repro scenario <cmd> ...        declarative scenario templates
    repro verify-records PATH ...   integrity-check record artifacts
    repro serve ...                 live reputation scores over HTTP

All record-writing subcommands share conventions: ``--out`` for the JSON
record file, ``--csv`` for the CSV twin, ``--seed`` for the campaign seed
and ``--backend`` for the compute backend (records are byte-identical
across backends by contract).

``python -m repro.experiments`` is the deprecated historical spelling: it
warns once and forwards here, producing byte-identical artifacts (a CI
check holds the shim to that).  For ergonomic and compatibility reasons a
first argument that is not a subcommand is treated as ``run`` input, so
``repro figure1 --full`` and the historical bare invocations keep working.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import TextIO

from repro import _profiling
from repro.errors import ConfigurationError, IntegrityError
from repro.experiments.journal import JOURNAL_MAGIC, verify_journal
from repro.experiments.reporting import format_sweep_summary
from repro.experiments.results import ExperimentRecord, verify_file_checksum
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.sweep import RetryPolicy, run_sweep, spec_from_options

#: The unified subcommands, in help order.
COMMANDS = ("run", "sweep", "scenario", "verify-records", "serve")

_OVERVIEW = """usage: repro <command> [options]

commands:
  run [EXPERIMENT ...]     run registered experiments (default: all, quick)
  sweep EXPERIMENT ...     parallel sweep campaign -> structured records
  scenario <cmd> ...       list/validate/verify/run scenario templates
  verify-records PATH ...  check record files and sweep journals for rot
  serve [options]          serve live reputation scores over HTTP

Run 'repro <command> --help' for command options.  Record-writing commands
share --out/--csv/--seed/--backend conventions.
"""


def build_run_parser(prog: str = "repro run") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Run the paper-reproduction experiments.",
        epilog=(
            "Use the 'sweep' subcommand for parallel parameter campaigns: "
            "repro sweep figure1 --grid n_users=25,50 --jobs 2 --seed 7 "
            "--out results.json"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run (default: all). Available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full-size experiments instead of the quick versions",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-phase wall-clock table (setup / simulate / refresh "
            "/ metrics) after each experiment — the map for finding the "
            "next hot path"
        ),
    )
    return parser


def build_sweep_parser(prog: str = "repro sweep") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Run a parallel sweep campaign over one registered experiment "
            "and write structured records."
        ),
    )
    parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help=f"experiment to sweep. Available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="explicit values for one parameter (repeatable)",
    )
    parser.add_argument(
        "--range",
        action="append",
        default=[],
        dest="ranges",
        metavar="KEY=LOW:HIGH",
        help="continuous interval for one parameter (random/latin samplers only)",
    )
    parser.add_argument(
        "--sample",
        choices=("grid", "random", "latin"),
        default="grid",
        help="how to cover the parameter space (default: full cartesian grid)",
    )
    parser.add_argument(
        "--n-samples",
        type=int,
        default=0,
        help="number of sampled points for --sample random/latin",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1; results are identical either way)",
    )
    parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help=(
            "tasks per worker submission (default: ~4 chunks per worker); "
            "records are identical for any chunking"
        ),
    )
    parser.add_argument(
        "--stream",
        metavar="PATH",
        help=(
            "stream records to this JSONL file in task order as they "
            "complete (the --out JSON is still written at the end)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "vectorized"),
        default="auto",
        help=(
            "compute backend for every task (default auto: vectorized when "
            "numpy is available); records are identical either way"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the JSON record file here",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the records as CSV here",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help=(
            "base each task on the experiment's full-size defaults instead "
            "of its quick preset"
        ),
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        help=(
            "durable resume journal: completed records are fsynced here as "
            "they finish; re-running with the same spec and journal skips "
            "them (byte-identical output to a cold sweep)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failing task up to N extra times with backoff (default 0)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="initial retry backoff, doubling per attempt (default 0.05s)",
    )
    parser.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget across attempts (default: none)",
    )
    return parser


def build_verify_parser(prog: str = "repro verify-records") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Verify the integrity of record artifacts: JSON/CSV files "
            "against their SHA-256 sidecars, sweep journals line by line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=(
            "record files (.json/.csv, checked against <file>.sha256), sweep "
            "journals, serve WALs, or service snapshots (via their sidecar)"
        ),
    )
    return parser


def _verify_one(path: str) -> tuple[str | None, str | None]:
    """Check one artifact; returns ``(error, warning)`` (both None = intact).

    Dispatch is by content: sweep journals and serve WALs are recognized
    from their header line; anything else (records, service snapshots) is
    checked against its SHA-256 sidecar.  For a WAL, torn/corrupt *tail*
    lines are a warning, not a failure — they were never acked and the
    next recovery truncates them; damaged interior lines (acked evidence
    lost) fail hard.
    """
    try:
        with open(path, "rb") as handle:
            first = handle.readline()
    except OSError as error:
        return f"cannot read file: {error}", None
    if first.startswith(b'{"campaign_sha256"') or JOURNAL_MAGIC.encode() in first:
        try:
            n_valid, n_invalid = verify_journal(path)
        except IntegrityError as error:
            return str(error), None
        if n_invalid:
            return f"{n_invalid} corrupt/truncated journal lines ({n_valid} intact)", None
        return None, None
    if b"repro-serve-wal" in first:  # WAL_MAGIC; literal keeps serving lazy
        from repro.serving.wal import verify_wal

        try:
            n_valid, n_tail = verify_wal(path)
        except IntegrityError as error:
            return str(error), None
        if n_tail:
            return None, (
                f"{n_tail} torn/corrupt unacked tail line(s) "
                f"({n_valid} intact batches; next recovery truncates the tail)"
            )
        return None, None
    try:
        verify_file_checksum(path)
    except IntegrityError as error:
        return str(error), None
    return None, None


def verify_records_main(argv: list[str], *, prog: str = "repro verify-records") -> int:
    parser = build_verify_parser(prog)
    args = parser.parse_args(argv)
    failures = 0
    for path in args.paths:
        problem, warning = _verify_one(path)
        if problem is not None:
            failures += 1
            print(f"{path}: FAIL: {problem}")
        elif warning is not None:
            print(f"{path}: ok (warning: {warning})")
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


def sweep_main(argv: list[str], *, prog: str = "repro sweep") -> int:
    parser = build_sweep_parser(prog)
    args = parser.parse_args(argv)
    try:
        spec = spec_from_options(
            args.experiment,
            grid_options=args.grid,
            range_options=args.ranges,
            sampler=args.sample,
            n_samples=args.n_samples,
            seed=args.seed,
            quick_base=not args.full,
            backend=args.backend,
        )
    except (ConfigurationError, ValueError) as exc:
        parser.error(str(exc))
    on_record = None
    with contextlib.ExitStack() as stack:
        if args.stream:
            stream_handle = stack.enter_context(
                open(args.stream, "w", encoding="utf-8", newline="\n")
            )

            def on_record(record: ExperimentRecord, handle: TextIO = stream_handle) -> None:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
                handle.flush()

        retry = None
        if args.retries or args.retry_deadline is not None:
            retry = RetryPolicy(
                max_attempts=args.retries + 1,
                backoff_base=args.retry_backoff,
                deadline=args.retry_deadline,
            )
        try:
            result = run_sweep(
                spec,
                jobs=args.jobs,
                chunksize=args.chunksize,
                on_record=on_record,
                retry=retry,
                journal=args.journal,
            )
        except ConfigurationError as exc:
            parser.error(str(exc))
    print(format_sweep_summary(result.records))
    print()
    print(
        f"{len(result.records)} tasks in {result.wall_time:.2f}s "
        f"({result.tasks_per_second:.2f} tasks/s, jobs={result.jobs})"
    )
    if result.n_resumed:
        print(f"{result.n_resumed} tasks resumed from journal {args.journal}")
    if args.stream:
        print(f"records streamed to {args.stream}")
    if args.out:
        result.write_json(args.out)
        print(f"records written to {args.out}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"CSV written to {args.csv}")
    for record in result.failed_records:
        failure = record.failure or {}
        retries = failure.get("retries", 0)
        print(
            f"FAILED task {record.task_index} "
            f"(params={json.dumps(record.params, sort_keys=True)}, "
            f"retries={retries}): {record.error}",
            file=sys.stderr,
        )
    if result.n_errors:
        print(f"{result.n_errors} of {len(result.records)} tasks failed", file=sys.stderr)
        return 1
    return 0


def run_main(argv: list[str], *, prog: str = "repro run") -> int:
    parser = build_run_parser(prog)
    args = parser.parse_args(argv)

    if args.list:
        for name, entry in sorted(EXPERIMENTS.items()):
            ids = ", ".join(entry.experiment_ids)
            print(f"{name:16s} [{ids}] {entry.description}")
        return 0

    names = args.experiments or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in names:
        print(f"==== {name} ====")
        if args.profile:
            with _profiling.profiled() as timer:
                report = run_experiment(name, quick=not args.full)
            print(report)
            print()
            print(f"---- {name}: per-phase wall clock ----")
            print(timer.report())
        else:
            print(run_experiment(name, quick=not args.full))
        print()
    return 0


def serve_main(argv: list[str]) -> int:
    # Imported lazily: `repro run` and friends should not pay for (or be
    # able to break on) the serving stack.
    from repro.serving.cli import main as serving_main

    return serving_main(argv)


def dispatch(argv: list[str], *, empty_runs_all: bool = False) -> int:
    """Route one invocation.

    ``empty_runs_all`` preserves the historical ``python -m repro.experiments``
    contract where a bare invocation runs every experiment; the new top
    level prints the overview instead.
    """
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "scenario":
        from repro.scenarios.schema.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "verify-records":
        return verify_records_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if not argv and not empty_runs_all:
        print(_OVERVIEW, end="")
        return 0
    if argv and argv[0] in ("help", "--help", "-h"):
        print(_OVERVIEW, end="")
        return 0
    # Anything else is `run` input: experiment names or run flags.
    return run_main(argv)


def main(argv: list[str] | None = None) -> int:
    return dispatch(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":
    sys.exit(main())

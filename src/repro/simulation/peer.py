"""Peers: the runtime counterpart of users inside the simulation.

A :class:`Peer` couples a :class:`~repro.socialnet.user.User` with a
:class:`~repro.simulation.adversary.BehaviorModel` and a bit of mutable state
(online flag, identity generation for whitewashing, served/consumed counters).
The :class:`PeerDirectory` tracks the live population, including identity
changes, and is the single source of truth the engine, reputation systems and
metrics consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.errors import UnknownPeerError
from repro.simulation.adversary import BehaviorModel, HonestBehavior
from repro.socialnet.user import User


@dataclass
class Peer:
    """Runtime state of one participant.

    ``peer_id`` (current network identity) and ``base_id`` (stable
    ground-truth identifier) are plain attributes, not properties: the
    simulation inner loops read them hundreds of thousands of times per
    run.  They are derived from ``user`` and ``identity_generation`` at
    construction and refreshed by :meth:`new_identity` — change
    ``identity_generation`` only through that method.
    """

    user: User
    behavior: BehaviorModel = field(default_factory=HonestBehavior)
    online: bool = True
    identity_generation: int = 0
    served_count: int = 0
    consumed_count: int = 0
    good_received: int = 0
    bad_received: int = 0
    #: Stable identifier of the underlying user (ground truth).
    base_id: str = field(init=False, repr=False, compare=False)
    #: Current network identity; changes when the peer whitewashes.
    peer_id: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.base_id = self.user.user_id
        self._refresh_peer_id()

    def _refresh_peer_id(self) -> None:
        if self.identity_generation == 0:
            self.peer_id = self.user.user_id
        else:
            self.peer_id = f"{self.user.user_id}#{self.identity_generation}"

    def new_identity(self) -> str:
        """Adopt a fresh identity (whitewashing) and return it."""
        self.identity_generation += 1
        self._refresh_peer_id()
        return self.peer_id

    def record_received(self, good: bool) -> None:
        self.consumed_count += 1
        if good:
            self.good_received += 1
        else:
            self.bad_received += 1

    @property
    def observed_success_rate(self) -> float:
        """Fraction of this peer's consumed transactions that went well."""
        if self.consumed_count == 0:
            return 0.0
        return self.good_received / self.consumed_count


class PeerDirectory:
    """The live peer population, indexed both by current and by base identity."""

    def __init__(self, peers: list[Peer] | None = None) -> None:
        self._by_base: dict[str, Peer] = {}
        self._current_to_base: dict[str, str] = {}
        for peer in peers or []:
            self.add(peer)

    def add(self, peer: Peer) -> None:
        self._by_base[peer.base_id] = peer
        self._current_to_base[peer.peer_id] = peer.base_id

    def __len__(self) -> int:
        return len(self._by_base)

    def __iter__(self) -> Iterator[Peer]:
        return iter(self._by_base.values())

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._current_to_base or peer_id in self._by_base

    def peers(self) -> list[Peer]:
        return list(self._by_base.values())

    def online_peers(self) -> list[Peer]:
        return [peer for peer in self._by_base.values() if peer.online]

    def get(self, peer_id: str) -> Peer:
        """Look a peer up by current or base identity."""
        base = self._current_to_base.get(peer_id, peer_id)
        try:
            return self._by_base[base]
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def current_ids(self, *, online_only: bool = True) -> list[str]:
        peers = self.online_peers() if online_only else self.peers()
        return [peer.peer_id for peer in peers]

    def rebind_identity(self, peer: Peer, old_id: str) -> None:
        """Record that ``peer`` abandoned ``old_id`` for its current identity.

        The old identity keeps resolving to the same peer: transactions and
        feedback recorded under it must remain attributable to their ground-
        truth user even after the whitewash (only the *reputation system* is
        supposed to lose the link, not the simulator).
        """
        self._current_to_base[old_id] = peer.base_id
        self._current_to_base[peer.peer_id] = peer.base_id

    def honest_fraction(self) -> float:
        if not self._by_base:
            return 0.0
        honest = sum(1 for peer in self._by_base.values() if peer.user.is_honest)
        return honest / len(self._by_base)

"""Session churn: peers leaving and (re)joining over time.

The paper lists churn among the "expected user behaviour" a reputation system
must survive.  The model is deliberately simple — per-round independent
leave/join probabilities — because the experiments only need churn as a
stressor, not as an object of study.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List

from repro._util import require_unit_interval
from repro.simulation.peer import Peer, PeerDirectory


class ChurnEvent(enum.Enum):
    """What happened to a peer during a churn step."""

    LEFT = "left"
    JOINED = "joined"


@dataclass
class ChurnModel:
    """Independent per-round departure/return probabilities.

    ``leave_probability`` applies to online peers, ``return_probability`` to
    offline ones.  Setting both to zero disables churn entirely.
    """

    leave_probability: float = 0.0
    return_probability: float = 0.5

    def __post_init__(self) -> None:
        require_unit_interval(self.leave_probability, "leave_probability")
        require_unit_interval(self.return_probability, "return_probability")

    def step(
        self, directory: PeerDirectory, rng: random.Random
    ) -> List[tuple[Peer, ChurnEvent]]:
        """Apply one round of churn and return the per-peer events."""
        events: List[tuple[Peer, ChurnEvent]] = []
        for peer in directory.peers():
            if peer.online:
                if rng.random() < self.leave_probability:
                    peer.online = False
                    events.append((peer, ChurnEvent.LEFT))
            else:
                if rng.random() < self.return_probability:
                    peer.online = True
                    events.append((peer, ChurnEvent.JOINED))
        return events

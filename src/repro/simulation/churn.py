"""Session churn: peers leaving and (re)joining over time.

The paper lists churn among the "expected user behaviour" a reputation system
must survive.  The base model is deliberately simple — per-round independent
leave/join probabilities — because most experiments only need churn as a
stressor.  :class:`PhasedChurnModel` adds the time-varying layer the attack
scenarios need: round-windowed probability overrides, so a campaign can spike
churn during an attack window (whitewashing waves, sybil bursts) and return
to the base rates afterwards.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro._util import require_unit_interval
from repro.errors import ConfigurationError
from repro.simulation.peer import Peer, PeerDirectory


class ChurnEvent(enum.Enum):
    """What happened to a peer during a churn step."""

    LEFT = "left"
    JOINED = "joined"


@dataclass
class ChurnModel:
    """Independent per-round departure/return probabilities.

    ``leave_probability`` applies to online peers, ``return_probability`` to
    offline ones.  Setting both to zero disables churn entirely.
    """

    leave_probability: float = 0.0
    return_probability: float = 0.5

    def __post_init__(self) -> None:
        require_unit_interval(self.leave_probability, "leave_probability")
        require_unit_interval(self.return_probability, "return_probability")

    def step(self, directory: PeerDirectory, rng: random.Random) -> list[tuple[Peer, ChurnEvent]]:
        """Apply one round of churn and return the per-peer events.

        Peers are visited in directory (insertion) order and one uniform is
        drawn per peer, so event ordering — including the order offline peers
        rejoin in — is deterministic for a given directory and rng state.
        """
        leave, rejoin = self._probabilities()
        events: list[tuple[Peer, ChurnEvent]] = []
        for peer in directory.peers():
            if peer.online:
                if rng.random() < leave:
                    peer.online = False
                    events.append((peer, ChurnEvent.LEFT))
            else:
                if rng.random() < rejoin:
                    peer.online = True
                    events.append((peer, ChurnEvent.JOINED))
        return events

    def _probabilities(self) -> tuple[float, float]:
        """The (leave, return) probabilities for the step about to run."""
        return self.leave_probability, self.return_probability

    def reset(self) -> None:
        """Forget any per-run state; the base model is stateless."""


@dataclass(frozen=True)
class ChurnPhase:
    """Probability overrides active on rounds ``start <= round < end``."""

    start: int
    end: int
    leave_probability: float = 0.0
    return_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"churn phase needs 0 <= start < end (got [{self.start}, {self.end}))"
            )
        require_unit_interval(self.leave_probability, "leave_probability")
        require_unit_interval(self.return_probability, "return_probability")

    def covers(self, round_index: int) -> bool:
        return self.start <= round_index < self.end


@dataclass
class PhasedChurnModel(ChurnModel):
    """Time-varying churn: base probabilities plus round-windowed overrides.

    Each :meth:`step` call advances an internal round counter (the engine
    steps churn exactly once per round, so the counter tracks the round
    index); the simulator calls :meth:`reset` at construction, so one model
    instance — e.g. carried by a reusable campaign — can back several
    consecutive runs.  When a phase covers the current round its
    probabilities replace
    the base ones; overlapping phases resolve to the *latest-starting* one so
    campaigns can layer a short spike on top of a long window.  The per-peer
    draw pattern is identical to :class:`ChurnModel` — one uniform per peer
    per step — so swapping models never perturbs the other random streams.
    """

    phases: list[ChurnPhase] = field(default_factory=list)
    _round: int = field(default=0, init=False, repr=False)

    @property
    def current_round(self) -> int:
        """The round index the next :meth:`step` call will apply to."""
        return self._round

    def reset(self) -> None:
        """Rewind to round 0 so the model can back a fresh run."""
        self._round = 0

    def _probabilities(self) -> tuple[float, float]:
        active = [phase for phase in self.phases if phase.covers(self._round)]
        if not active:
            return self.leave_probability, self.return_probability
        latest = max(active, key=lambda phase: phase.start)
        return latest.leave_probability, latest.return_probability

    def step(self, directory: PeerDirectory, rng: random.Random) -> list[tuple[Peer, ChurnEvent]]:
        try:
            return super().step(directory, rng)
        finally:
            self._round += 1

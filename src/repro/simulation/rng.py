"""Seeded random streams.

Every stochastic component (topology, behaviour, churn, workload) draws from
its own named stream derived from a single master seed.  This keeps
experiments reproducible while letting one component's draw count change
without perturbing the others — the standard trick for controlled
distributed-system simulations.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Any, cast


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("churn").random()
    >>> b = RandomStreams(42).stream("churn").random()
    >>> a == b
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        if name not in self._streams:
            # Derive a per-stream seed deterministically from the master seed
            # and the stream name; hash() is salted per process, so use a
            # stable string hash instead.
            derived = self._master_seed
            for char in name:
                derived = (derived * 1000003 + ord(char)) % (2 ** 63)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def uniforms(self, name: str, n: int) -> list[float]:
        """``n`` uniform draws from the named stream, as one vector.

        The draws come from the same underlying generator in the same order
        as ``n`` successive ``stream(name).random()`` calls, so batching a
        loop through this method never changes the stream's sequence — the
        contract the batched simulation round relies on for determinism
        against the per-peer code path.
        """
        draw = self.stream(name).random
        return [draw() for _ in range(n)]

    def snapshot(self) -> dict[str, object]:
        """Exact generator state of every materialized stream.

        The returned mapping (stream name → ``random.Random.getstate()``
        tuple) is plain picklable data; feeding it to :meth:`restore` on a
        fresh instance reproduces the remaining draw sequence of every
        stream bit-for-bit — the checkpoint/resume contract.  Streams not
        yet materialized are deliberately absent: they carry no state
        beyond the master seed, and a restored instance re-derives them on
        first use exactly like an uninterrupted run would.
        """
        return {name: self._streams[name].getstate() for name in sorted(self._streams)}

    def restore(self, states: Mapping[str, object]) -> None:
        """Rewind to a :meth:`snapshot`: recreate exactly the snapshotted
        streams, each mid-sequence at its saved state."""
        self._streams.clear()
        for name, state in states.items():
            # stream() seeds the generator from the master seed as usual;
            # setstate() then overwrites that state wholesale, so the seed
            # only matters for streams *not* in the snapshot.
            self.stream(name).setstate(cast("tuple[Any, ...]", state))

    def reset(self) -> None:
        """Drop every derived stream so the next access re-seeds it."""
        self._streams.clear()

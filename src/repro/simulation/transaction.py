"""Transactions between peers and the feedback they generate.

A *transaction* is one service interaction: a consumer asks a provider for a
service and the provider serves it well or badly.  A *feedback* is the
consumer's report about that transaction — possibly dishonest, possibly
withheld (the information-sharing knob of the privacy/reputation tradeoff),
and possibly anonymized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util import require_unit_interval
from repro.errors import ConfigurationError


class TransactionOutcome(enum.Enum):
    """How a transaction actually went (ground truth known to the simulator)."""

    SUCCESS = "success"
    FAILURE = "failure"

    @property
    def as_score(self) -> float:
        """Numeric value used by reputation mechanisms (1 good, 0 bad)."""
        return 1.0 if self is TransactionOutcome.SUCCESS else 0.0


@dataclass(frozen=True)
class Transaction:
    """One completed transaction with its ground-truth outcome and quality."""

    transaction_id: int
    time: int
    consumer: str
    provider: str
    outcome: TransactionOutcome
    quality: float = 0.0

    def __post_init__(self) -> None:
        if self.consumer == self.provider:
            raise ConfigurationError("a peer cannot transact with itself")
        # Fast path for the common case (a float in range): one Transaction
        # is built per simulated interaction, so this sits on the engine's
        # hottest path.  Anything else funnels through the full validator
        # for the usual error messages.
        if type(self.quality) is not float or not 0.0 <= self.quality <= 1.0:
            require_unit_interval(self.quality, "quality")

    @property
    def succeeded(self) -> bool:
        return self.outcome is TransactionOutcome.SUCCESS


@dataclass(frozen=True)
class Feedback:
    """A consumer's report about a transaction.

    ``rating`` is what the consumer *claims* (1.0 positive, 0.0 negative);
    ``truthful`` records whether the claim matches the ground truth, which
    only the simulator knows.  ``rater`` is ``None`` when the feedback was
    submitted anonymously (the [2,4]-style privacy-preserving mode).
    """

    transaction_id: int
    time: int
    subject: str
    rating: float
    rater: str | None
    truthful: bool = True

    def __post_init__(self) -> None:
        # Fast path for in-range floats; see Transaction.__post_init__.
        if type(self.rating) is not float or not 0.0 <= self.rating <= 1.0:
            require_unit_interval(self.rating, "rating")

    @property
    def is_anonymous(self) -> bool:
        return self.rater is None

    @property
    def positive(self) -> bool:
        return self.rating >= 0.5

"""A small discrete-event core: timestamped events and a priority queue.

The round-based interaction simulator is built on this engine; having a real
event queue also lets extensions (delayed feedback, message propagation
latency, staggered churn) be added without restructuring the simulator.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import SimulationError


@dataclass(frozen=True, order=False)
class Event:
    """An event scheduled at ``time`` with a tie-breaking ``priority``."""

    time: float
    priority: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A time-ordered queue of :class:`Event` objects.

    Ties on time are broken by priority, then by insertion order, which keeps
    runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.priority, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[-1]

    def peek_time(self) -> float | None:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

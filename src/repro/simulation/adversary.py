"""Peer behaviour models, including the adversary classes the paper lists.

Section 2.2 enumerates the adversarial context a reputation system faces:
"selfish peers, malicious peers, traitors, whitewashers".  Each class is a
:class:`BehaviorModel` that decides three things for its peer:

* how the peer serves transactions (``serve_quality``),
* how it rates partners (``rate_transaction``),
* how much evidence it discloses to the reputation system
  (``disclosure_probability``).

Collusion is modelled explicitly: colluders inflate each other and deflate
everyone else, which is the classic attack EigenTrust's pre-trusted peers are
meant to dampen.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import clamp, require_unit_interval
from repro.simulation.transaction import Transaction
from repro.socialnet.user import User


@dataclass
class BehaviorModel:
    """Base behaviour: honest service and truthful ratings.

    Subclasses override the three decision hooks.  ``name`` identifies the
    behaviour in metrics and reports.
    """

    name: str = "base"

    def serve_quality(self, user: User, rng: random.Random) -> float:
        """Quality in ``[0, 1]`` of the service this peer provides now."""
        base = user.competence if rng.random() < user.honesty else rng.uniform(0.0, 0.2)
        return clamp(base + rng.gauss(0.0, 0.05))

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        """Return ``(claimed rating, truthful?)`` for a finished transaction."""
        truthful = rng.random() < user.honesty
        actual = transaction.outcome.as_score
        rating = actual if truthful else 1.0 - actual
        return rating, truthful or rating == actual

    def disclosure_probability(self, user: User, base_sharing: float) -> float:
        """Probability of reporting evidence, given the system sharing level.

        Privacy-concerned users hold back part of their evidence even when
        the system asks for it; this is exactly the "the less a user trusts
        towards the system, the less she discloses information" lever.
        ``base_sharing`` is validated where it is configured
        (:class:`~repro.simulation.engine.SimulationConfig`), not here —
        this runs once per consumer per round.
        """
        probability = base_sharing * (1.0 - 0.5 * user.privacy_concern)
        return 0.0 if probability < 0.0 else (1.0 if probability > 1.0 else probability)

    def provides_service(self, user: User, rng: random.Random) -> bool:
        """Whether the peer accepts to serve an incoming request at all."""
        return True


@dataclass
class HonestBehavior(BehaviorModel):
    """Serves at its competence level and always reports truthfully."""

    name: str = "honest"

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        return transaction.outcome.as_score, True


@dataclass
class MaliciousBehavior(BehaviorModel):
    """Provides bad service and lies in feedback with high probability."""

    name: str = "malicious"
    bad_service_probability: float = 0.9
    lie_probability: float = 0.9

    def serve_quality(self, user: User, rng: random.Random) -> float:
        if rng.random() < self.bad_service_probability:
            return rng.uniform(0.0, 0.15)
        return clamp(user.competence)

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        actual = transaction.outcome.as_score
        if rng.random() < self.lie_probability:
            return 1.0 - actual, False
        return actual, True


@dataclass
class SelfishBehavior(BehaviorModel):
    """Free rider: consumes but rarely serves and rarely reports feedback."""

    name: str = "selfish"
    service_refusal_probability: float = 0.8
    reporting_discount: float = 0.2

    def provides_service(self, user: User, rng: random.Random) -> bool:
        return rng.random() >= self.service_refusal_probability

    def disclosure_probability(self, user: User, base_sharing: float) -> float:
        return clamp(super().disclosure_probability(user, base_sharing) * self.reporting_discount)


@dataclass
class TraitorBehavior(BehaviorModel):
    """Behaves honestly until it has built a reputation, then defects.

    ``betrayal_after`` counts the number of transactions served before the
    switch; afterwards the peer behaves like a malicious one.
    """

    name: str = "traitor"
    betrayal_after: int = 20
    served: int = 0

    def serve_quality(self, user: User, rng: random.Random) -> float:
        self.served += 1
        if self.served <= self.betrayal_after:
            return clamp(max(user.competence, 0.8) + rng.gauss(0.0, 0.03))
        return rng.uniform(0.0, 0.1)

    @property
    def has_betrayed(self) -> bool:
        return self.served > self.betrayal_after


@dataclass
class WhitewasherBehavior(MaliciousBehavior):
    """Malicious peer that sheds its identity once its reputation collapses.

    The simulator consults :meth:`should_whitewash`; when true the peer
    rejoins under a fresh identifier, which resets every reputation score
    about it.
    """

    name: str = "whitewasher"
    reputation_threshold: float = 0.25
    whitewash_count: int = 0

    def should_whitewash(self, current_reputation: float) -> bool:
        return current_reputation < self.reputation_threshold

    def note_whitewash(self) -> None:
        self.whitewash_count += 1


@dataclass
class GroomingBehavior(BehaviorModel):
    """Builds reputation on purpose: serves at high quality, rates truthfully.

    This is the *build-up* phase of an on-off traitor: scenario campaigns
    alternate a peer between this behaviour and :class:`MaliciousBehavior`
    to model oscillating betrayal (see
    :func:`repro.scenarios.catalog.traitor_oscillation`).
    """

    name: str = "grooming"
    floor_quality: float = 0.85

    def serve_quality(self, user: User, rng: random.Random) -> float:
        return clamp(max(user.competence, self.floor_quality) + rng.gauss(0.0, 0.03))

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        return transaction.outcome.as_score, True


@dataclass
class SlanderBehavior(BehaviorModel):
    """Rating attack: serves honestly but poisons the feedback channel.

    With probability ``slander_probability`` the peer *bad-mouths* every
    provider outside its accomplice set (rates 0 regardless of the actual
    outcome); accomplices get *ballot-stuffed* (rated 1) instead.  Because
    the service itself stays honest, score-based detection must come from
    rating consistency, which makes slander the stealthiest catalog attack.
    """

    name: str = "slanderer"
    accomplices: set[str] = field(default_factory=set)
    slander_probability: float = 1.0

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        actual = transaction.outcome.as_score
        if transaction.provider in self.accomplices:
            # repro-lint: ignore[R5] outcome scores are the discrete
            # constants 0.0/1.0, so the honesty check is exact
            return 1.0, actual == 1.0
        if rng.random() < self.slander_probability:
            return 0.0, actual == 0.0  # repro-lint: ignore[R5] discrete outcome
        return actual, True


@dataclass
class CollusiveBehavior(MaliciousBehavior):
    """Member of a collusion ring: inflates accomplices, deflates everyone else."""

    name: str = "colluder"
    ring: set[str] = field(default_factory=set)

    def rate_transaction(
        self, user: User, transaction: Transaction, rng: random.Random
    ) -> tuple[float, bool]:
        actual = transaction.outcome.as_score
        if transaction.provider in self.ring:
            # repro-lint: ignore[R5] outcome scores are the discrete
            # constants 0.0/1.0, so the honesty check is exact
            return 1.0, actual == 1.0
        return 0.0, actual == 0.0  # repro-lint: ignore[R5] discrete outcome


def behavior_for_user(
    user: User,
    *,
    rng: random.Random | None = None,
    traitor_fraction: float = 0.0,
    whitewasher_fraction: float = 0.0,
    selfish_fraction: float = 0.0,
) -> BehaviorModel:
    """Pick a behaviour model for a user based on its honesty and the mix.

    Honest users get :class:`HonestBehavior`.  Dishonest users are split
    between plain malicious, traitor and whitewasher behaviours according to
    the provided fractions (interpreted within the dishonest population).
    A ``selfish_fraction`` of the honest population free-rides.
    """
    rng = rng or random.Random(0)
    require_unit_interval(traitor_fraction, "traitor_fraction")
    require_unit_interval(whitewasher_fraction, "whitewasher_fraction")
    require_unit_interval(selfish_fraction, "selfish_fraction")

    if user.is_honest:
        if rng.random() < selfish_fraction:
            return SelfishBehavior()
        return HonestBehavior()
    draw = rng.random()
    if draw < traitor_fraction:
        return TraitorBehavior()
    if draw < traitor_fraction + whitewasher_fraction:
        return WhitewasherBehavior()
    return MaliciousBehavior()

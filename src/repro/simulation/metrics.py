"""Measurement collection for simulation runs.

The collector records per-round aggregates and exposes the derived quantities
the experiments report: transaction success rate, the rate of transactions
served by dishonest peers ("malicious transaction rate" — the standard
reputation-system effectiveness measure), feedback disclosure counts and the
honest-feedback rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import mean
from repro.simulation.transaction import Feedback, Transaction


@dataclass
class RoundMetrics:
    """Aggregates for a single simulation round."""

    round_index: int
    transactions: int = 0
    successes: int = 0
    failures: int = 0
    malicious_provider_transactions: int = 0
    feedback_generated: int = 0
    feedback_disclosed: int = 0
    truthful_feedback: int = 0
    online_peers: int = 0

    @property
    def success_rate(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.successes / self.transactions

    @property
    def malicious_rate(self) -> float:
        """Fraction of transactions that were served by a dishonest peer."""
        if self.transactions == 0:
            return 0.0
        return self.malicious_provider_transactions / self.transactions

    @property
    def disclosure_rate(self) -> float:
        if self.feedback_generated == 0:
            return 0.0
        return self.feedback_disclosed / self.feedback_generated

    @property
    def honest_feedback_rate(self) -> float:
        if self.feedback_generated == 0:
            return 0.0
        return self.truthful_feedback / self.feedback_generated


class MetricsCollector:
    """Accumulates :class:`RoundMetrics` and per-peer counters over a run."""

    def __init__(self) -> None:
        self.rounds: list[RoundMetrics] = []
        self._per_peer_provided: dict[str, int] = {}
        self._per_peer_good_provided: dict[str, int] = {}
        self._current: RoundMetrics = RoundMetrics(round_index=0)

    def start_round(self, round_index: int, online_peers: int) -> None:
        self._current = RoundMetrics(round_index=round_index, online_peers=online_peers)

    def end_round(self) -> RoundMetrics:
        self.rounds.append(self._current)
        return self._current

    def record_transaction(self, transaction: Transaction, provider_honest: bool) -> None:
        current = self._current
        succeeded = transaction.succeeded
        provider = transaction.provider
        current.transactions += 1
        if succeeded:
            current.successes += 1
        else:
            current.failures += 1
        if not provider_honest:
            current.malicious_provider_transactions += 1
        self._per_peer_provided[provider] = self._per_peer_provided.get(provider, 0) + 1
        if succeeded:
            self._per_peer_good_provided[provider] = (
                self._per_peer_good_provided.get(provider, 0) + 1
            )

    def record_feedback(self, feedback: Feedback, disclosed: bool) -> None:
        current = self._current
        current.feedback_generated += 1
        if disclosed:
            current.feedback_disclosed += 1
        if feedback.truthful:
            current.truthful_feedback += 1

    # -- run-level summaries ----------------------------------------------

    @property
    def total_transactions(self) -> int:
        return sum(r.transactions for r in self.rounds)

    @property
    def overall_success_rate(self) -> float:
        total = self.total_transactions
        if total == 0:
            return 0.0
        return sum(r.successes for r in self.rounds) / total

    @property
    def overall_malicious_rate(self) -> float:
        total = self.total_transactions
        if total == 0:
            return 0.0
        return sum(r.malicious_provider_transactions for r in self.rounds) / total

    @property
    def overall_disclosure_rate(self) -> float:
        generated = sum(r.feedback_generated for r in self.rounds)
        if generated == 0:
            return 0.0
        return sum(r.feedback_disclosed for r in self.rounds) / generated

    @property
    def overall_honest_feedback_rate(self) -> float:
        generated = sum(r.feedback_generated for r in self.rounds)
        if generated == 0:
            return 0.0
        return sum(r.truthful_feedback for r in self.rounds) / generated

    def provider_success_rate(self, peer_id: str) -> float:
        provided = self._per_peer_provided.get(peer_id, 0)
        if provided == 0:
            return 0.0
        return self._per_peer_good_provided.get(peer_id, 0) / provided

    def success_rate_series(self) -> list[float]:
        return [r.success_rate for r in self.rounds]

    def malicious_rate_series(self) -> list[float]:
        return [r.malicious_rate for r in self.rounds]

    def tail_success_rate(self, window: int = 10) -> float:
        """Mean success rate over the last ``window`` rounds (steady state)."""
        tail = self.rounds[-window:] if window > 0 else self.rounds
        return mean([r.success_rate for r in tail])

    def tail_malicious_rate(self, window: int = 10) -> float:
        tail = self.rounds[-window:] if window > 0 else self.rounds
        return mean([r.malicious_rate for r in tail])

"""Peer-to-peer interaction simulation.

The paper argues for fully decentralized social systems whose participants
are "autonomous and potentially untrusted".  This subpackage provides the
controlled substrate on which reputation, privacy and satisfaction are
measured:

* :mod:`repro.simulation.rng` — seeded random streams so every experiment is
  reproducible;
* :mod:`repro.simulation.transaction` — transaction and feedback records;
* :mod:`repro.simulation.peer` / :mod:`repro.simulation.adversary` — peer
  behaviours (honest, malicious, selfish, traitor, whitewasher, colluder);
* :mod:`repro.simulation.churn` — session churn;
* :mod:`repro.simulation.events` / :mod:`repro.simulation.engine` — a small
  discrete-event engine and the round-based interaction simulator built on it;
* :mod:`repro.simulation.metrics` — measurement collection.
"""

from repro.simulation.adversary import (
    BehaviorModel,
    CollusiveBehavior,
    GroomingBehavior,
    HonestBehavior,
    MaliciousBehavior,
    SelfishBehavior,
    SlanderBehavior,
    TraitorBehavior,
    WhitewasherBehavior,
    behavior_for_user,
)
from repro.simulation.churn import ChurnEvent, ChurnModel, ChurnPhase, PhasedChurnModel
from repro.simulation.engine import (
    EventDrivenSimulator,
    InteractionSimulator,
    RoundHook,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.events import Event, EventQueue
from repro.simulation.metrics import MetricsCollector, RoundMetrics
from repro.simulation.peer import Peer, PeerDirectory
from repro.simulation.rng import RandomStreams
from repro.simulation.transaction import Feedback, Transaction, TransactionOutcome

__all__ = [
    "BehaviorModel",
    "ChurnEvent",
    "ChurnModel",
    "ChurnPhase",
    "CollusiveBehavior",
    "Event",
    "EventDrivenSimulator",
    "EventQueue",
    "Feedback",
    "GroomingBehavior",
    "HonestBehavior",
    "InteractionSimulator",
    "MaliciousBehavior",
    "MetricsCollector",
    "Peer",
    "PeerDirectory",
    "PhasedChurnModel",
    "RandomStreams",
    "RoundHook",
    "RoundMetrics",
    "SelfishBehavior",
    "SimulationConfig",
    "SimulationResult",
    "SlanderBehavior",
    "TraitorBehavior",
    "Transaction",
    "TransactionOutcome",
    "WhitewasherBehavior",
    "behavior_for_user",
]

"""The simulation engine.

Two layers:

* :class:`EventDrivenSimulator` — a generic discrete-event loop over the
  :class:`~repro.simulation.events.EventQueue`;
* :class:`InteractionSimulator` — the round-based peer-to-peer interaction
  simulation used throughout the experiments, built on top of the event loop.

Each round, every online peer may initiate a transaction with a provider
chosen either at random among its candidates or through the reputation
system's response policy; the provider serves well or badly according to its
behaviour model; the consumer produces (possibly dishonest) feedback and
discloses it to the reputation system with a probability driven by the
system-wide *information-sharing level* and the peer's own privacy concern.
Disclosed feedback is what the reputation mechanism sees and what the privacy
ledger accounts for — this is the concrete coupling knob between the paper's
reputation and privacy facets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro._util import require_unit_interval
from repro.core.backend import (
    VECTORIZED_BACKEND,
    interaction_counts,
    lexicographic_argmax,
    require_numpy,
    resolve_backend,
)
from repro.errors import ConfigurationError
from repro.simulation.adversary import (
    CollusiveBehavior,
    WhitewasherBehavior,
    behavior_for_user,
)
from repro.simulation.churn import ChurnModel
from repro.simulation.events import Event, EventQueue
from repro.simulation.metrics import MetricsCollector
from repro.simulation.peer import Peer, PeerDirectory
from repro.simulation.rng import RandomStreams
from repro.simulation.transaction import Feedback, Transaction, TransactionOutcome
from repro.socialnet.graph import SocialGraph


class ReputationProtocol(Protocol):
    """What the simulator needs from a reputation mechanism."""

    def record_feedback(self, feedback: Feedback) -> None:
        """Ingest one disclosed feedback report."""

    def score(self, peer_id: str) -> float:
        """Current reputation score of a peer in ``[0, 1]``."""


class RoundHook(Protocol):
    """Observer/actuator invoked at every round boundary.

    Hooks are the engine's extension point for *time-varying* behaviour —
    attack campaigns that switch behaviours, force churn or whitewash peers
    on a schedule, and trace collectors that snapshot the published scores.

    ``on_round_start`` runs after the natural churn step but before the
    round's reputation snapshot and transactions, so a hook can override
    churn decisions and rewire behaviours for the round about to run.
    ``on_round_end`` runs after the round's metrics closed, with the scores
    the mechanism published at the end of the round.

    Hooks must not consume the engine's named random streams ("behavior",
    "churn", "selection", "activity", "transactions", "feedback"); a hook
    that needs randomness draws from its own named stream (e.g.
    ``simulator.streams.stream("campaign")``) so that runs with and without
    hooks, and runs on either compute backend, stay stream-exact.
    """

    def on_round_start(self, simulator: "InteractionSimulator", round_index: int) -> None:
        """Called before the round's transactions (after natural churn)."""

    def on_round_end(
        self, simulator: "InteractionSimulator", round_index: int, scores: Dict[str, float]
    ) -> None:
        """Called after the round completed, with the published scores."""


#: Callback invoked for every feedback actually disclosed to the system.
DisclosureObserver = Callable[[Feedback, Peer, Peer], None]


class EventDrivenSimulator:
    """A minimal discrete-event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(
        self, time: float, action: Callable[[], None], *, priority: int = 0, label: str = ""
    ) -> None:
        if time < self._now:
            raise ConfigurationError("cannot schedule an event in the past")
        self._queue.push(Event(time=time, priority=priority, action=action, label=label))

    def schedule_in(
        self, delay: float, action: Callable[[], None], *, priority: int = 0, label: str = ""
    ) -> None:
        self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def run(self, until: Optional[float] = None) -> int:
        """Process events until the queue drains or the clock passes ``until``.

        Returns the number of events processed.
        """
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            event = self._queue.pop()
            self._now = event.time
            event.action()
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed


@dataclass
class SimulationConfig:
    """Parameters of one interaction-simulation run.

    ``sharing_level`` is the paper's "quantity of shared information" knob
    (σ): the base probability that a generated feedback is disclosed to the
    reputation system.  ``anonymous_feedback`` switches to the
    privacy-preserving reporting mode where the rater identity is withheld.
    """

    rounds: int = 50
    sharing_level: float = 1.0
    anonymous_feedback: bool = False
    neighbor_only: bool = True
    use_reputation_selection: bool = True
    selection_exploration: float = 0.1
    interactions_per_peer: float = 1.0
    traitor_fraction: float = 0.0
    whitewasher_fraction: float = 0.0
    selfish_fraction: float = 0.0
    collusion_fraction: float = 0.0
    churn: ChurnModel = field(default_factory=ChurnModel)
    seed: int = 0
    #: Compute backend for the round loop's numeric kernels ("python",
    #: "vectorized" or "auto").  Both backends consume the random streams
    #: identically, so a run's trajectory does not depend on the choice.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        resolve_backend(self.backend)
        require_unit_interval(self.sharing_level, "sharing_level")
        require_unit_interval(self.selection_exploration, "selection_exploration")
        require_unit_interval(self.traitor_fraction, "traitor_fraction")
        require_unit_interval(self.whitewasher_fraction, "whitewasher_fraction")
        require_unit_interval(self.selfish_fraction, "selfish_fraction")
        require_unit_interval(self.collusion_fraction, "collusion_fraction")
        if self.interactions_per_peer < 0:
            raise ConfigurationError("interactions_per_peer must be non-negative")


@dataclass
class SimulationResult:
    """Everything a run produced, for downstream facet evaluation."""

    config: SimulationConfig
    directory: PeerDirectory
    graph: SocialGraph
    transactions: List[Transaction]
    feedbacks: List[Feedback]
    disclosed_feedbacks: List[Feedback]
    metrics: MetricsCollector
    ground_truth_honesty: Dict[str, float]

    @property
    def disclosure_rate(self) -> float:
        if not self.feedbacks:
            return 0.0
        return len(self.disclosed_feedbacks) / len(self.feedbacks)


class InteractionSimulator:
    """Round-based peer-to-peer interaction simulation over a social graph."""

    def __init__(
        self,
        graph: SocialGraph,
        config: Optional[SimulationConfig] = None,
        *,
        reputation: Optional[ReputationProtocol] = None,
        disclosure_observer: Optional[DisclosureObserver] = None,
        hooks: Sequence[RoundHook] = (),
    ) -> None:
        if len(graph) < 2:
            raise ConfigurationError("the simulation needs at least two peers")
        self.graph = graph
        self.config = config or SimulationConfig()
        self.reputation = reputation
        self._disclosure_observer = disclosure_observer
        self._hooks: tuple = tuple(hooks)
        self._streams = RandomStreams(self.config.seed)
        self.directory = self._build_directory()
        self.metrics = MetricsCollector()
        self._transactions: List[Transaction] = []
        self._feedbacks: List[Feedback] = []
        self._disclosed: List[Feedback] = []
        self._transaction_counter = 0
        self._engine = EventDrivenSimulator()
        self._backend = resolve_backend(self.config.backend)
        # Stateful churn models (PhasedChurnModel) rewind here so a config
        # or campaign reused across simulators starts every run at round 0.
        self.config.churn.reset()
        #: Reputation snapshot taken once per round; selection and
        #: whitewashing decisions read from it instead of querying the
        #: mechanism per transaction (peers act on the scores published at
        #: the start of the round, and recomputation happens once per round).
        self._round_scores: Dict[str, float] = {}
        #: Round-scoped caches, rebuilt by :meth:`_begin_round_caches`.
        #: Candidate sets, their score vectors and disclosure probabilities
        #: are all static within a round (churn moves peers only at the round
        #: boundary, whitewashing rebinds identities only at the round end),
        #: so they are computed once per consumer per round instead of once
        #: per transaction.
        self._candidate_cache: Dict[str, List[Peer]] = {}
        self._score_cache: Dict[str, object] = {}
        self._disclosure_cache: Dict[str, float] = {}

    @property
    def streams(self) -> RandomStreams:
        """The run's named random streams (hooks draw from their own stream)."""
        return self._streams

    # -- setup -------------------------------------------------------------

    def _build_directory(self) -> PeerDirectory:
        rng = self._streams.stream("behavior")
        peers = []
        for user in self.graph.users():
            behavior = behavior_for_user(
                user,
                rng=rng,
                traitor_fraction=self.config.traitor_fraction,
                whitewasher_fraction=self.config.whitewasher_fraction,
                selfish_fraction=self.config.selfish_fraction,
            )
            peers.append(Peer(user=user, behavior=behavior))
        directory = PeerDirectory(peers)
        self._setup_collusion(directory, rng)
        return directory

    def _setup_collusion(self, directory: PeerDirectory, rng) -> None:
        """Convert part of the dishonest population into a collusion ring."""
        if self.config.collusion_fraction <= 0.0:
            return
        dishonest = [p for p in directory.peers() if not p.user.is_honest]
        if len(dishonest) < 2:
            return
        ring_size = max(2, int(round(self.config.collusion_fraction * len(dishonest))))
        ring_members = rng.sample(dishonest, min(ring_size, len(dishonest)))
        ring_ids = {p.peer_id for p in ring_members}
        for peer in ring_members:
            peer.behavior = CollusiveBehavior(ring=set(ring_ids - {peer.peer_id}))

    # -- provider selection --------------------------------------------------

    def _candidates(self, consumer: Peer) -> List[Peer]:
        if self.config.neighbor_only:
            neighbor_ids = self.graph.neighbors(consumer.base_id)
            candidates = [self.directory.get(nid) for nid in neighbor_ids]
        else:
            candidates = self.directory.peers()
        return [peer for peer in candidates if peer.online and peer.base_id != consumer.base_id]

    def _begin_round_caches(self) -> None:
        self._candidate_cache.clear()
        self._score_cache.clear()
        self._disclosure_cache.clear()

    def _round_candidates(self, consumer: Peer) -> List[Peer]:
        cached = self._candidate_cache.get(consumer.base_id)
        if cached is None:
            cached = self._candidates(consumer)
            self._candidate_cache[consumer.base_id] = cached
        return cached

    def _candidate_scores(self, consumer: Peer, candidates: List[Peer]):
        """Round-start scores of a consumer's candidates, in candidate order.

        ``None`` when selection does not use reputation.  The vectorized
        backend keeps the scores as a dense array for the argmax kernel.
        """
        if self.reputation is None or not self.config.use_reputation_selection:
            return None
        cached = self._score_cache.get(consumer.base_id)
        if cached is None:
            default = getattr(self.reputation, "default_score", 0.5)
            lookup = self._round_scores.get
            cached = [lookup(peer.peer_id, default) for peer in candidates]
            if self._backend == VECTORIZED_BACKEND:
                cached = require_numpy().asarray(cached, dtype=float)
            self._score_cache[consumer.base_id] = cached
        return cached

    def _select_from(self, candidates: List[Peer], scores) -> Peer:
        """Pick a provider among the candidates given their score vector.

        Consumes the "selection" stream exactly as the historical
        per-transaction code did: one exploration uniform (only when
        reputation-guided selection is active), then either a ``choice`` or
        one tie-break uniform per candidate.
        """
        rng = self._streams.stream("selection")
        if scores is None or rng.random() < self.config.selection_exploration:
            return rng.choice(candidates)
        tiebreaks = self._streams.uniforms("selection", len(candidates))
        if self._backend == VECTORIZED_BACKEND:
            return candidates[lexicographic_argmax(scores, tiebreaks)]
        best_index = 0
        best_key = (scores[0], tiebreaks[0])
        for position in range(1, len(candidates)):
            key = (scores[position], tiebreaks[position])
            if key > best_key:
                best_key = key
                best_index = position
        return candidates[best_index]

    def _select_provider(self, consumer: Peer, candidates: List[Peer]) -> Peer:
        return self._select_from(candidates, self._candidate_scores(consumer, candidates))

    # -- one round -----------------------------------------------------------

    def _execute_transaction(self, consumer: Peer, provider: Peer, round_index: int) -> None:
        rng = self._streams.stream("transactions")
        self._transaction_counter += 1

        if not provider.behavior.provides_service(provider.user, rng):
            quality = 0.0
        else:
            quality = provider.behavior.serve_quality(provider.user, rng)
        outcome = TransactionOutcome.SUCCESS if quality >= 0.5 else TransactionOutcome.FAILURE
        transaction = Transaction(
            transaction_id=self._transaction_counter,
            time=round_index,
            consumer=consumer.peer_id,
            provider=provider.peer_id,
            outcome=outcome,
            quality=quality,
        )
        provider.served_count += 1
        consumer.record_received(transaction.succeeded)
        self._transactions.append(transaction)
        self.metrics.record_transaction(transaction, provider.user.is_honest)

        self._generate_feedback(consumer, provider, transaction, round_index)

    def _generate_feedback(
        self, consumer: Peer, provider: Peer, transaction: Transaction, round_index: int
    ) -> None:
        rng = self._streams.stream("feedback")
        rating, truthful = consumer.behavior.rate_transaction(consumer.user, transaction, rng)
        rater = None if self.config.anonymous_feedback else consumer.peer_id
        feedback = Feedback(
            transaction_id=transaction.transaction_id,
            time=round_index,
            subject=provider.peer_id,
            rating=rating,
            rater=rater,
            truthful=truthful,
        )
        self._feedbacks.append(feedback)

        disclose_probability = self._disclosure_cache.get(consumer.base_id)
        if disclose_probability is None:
            disclose_probability = consumer.behavior.disclosure_probability(
                consumer.user, self.config.sharing_level
            )
            self._disclosure_cache[consumer.base_id] = disclose_probability
        disclosed = rng.random() < disclose_probability
        self.metrics.record_feedback(feedback, disclosed)
        if not disclosed:
            return
        self._disclosed.append(feedback)
        if self.reputation is not None:
            self.reputation.record_feedback(feedback)
        if self._disclosure_observer is not None:
            self._disclosure_observer(feedback, consumer, provider)

    def _apply_whitewashing(self) -> None:
        if self.reputation is None:
            return
        default = getattr(self.reputation, "default_score", 0.5)
        for peer in self.directory.peers():
            behavior = peer.behavior
            if not isinstance(behavior, WhitewasherBehavior):
                continue
            current_score = self._round_scores.get(peer.peer_id, default)
            if behavior.should_whitewash(current_score):
                old_id = peer.peer_id
                peer.new_identity()
                behavior.note_whitewash()
                self.directory.rebind_identity(peer, old_id)

    def _interaction_counts(self, online: List[Peer], draws: List[float]) -> List[int]:
        """Per-consumer interaction counts from the batched activity draws."""
        per_peer = self.config.interactions_per_peer
        if self._backend == VECTORIZED_BACKEND and online:
            activities = [peer.user.activity for peer in online]
            return interaction_counts(activities, per_peer, draws).tolist()
        counts: List[int] = []
        for peer, draw in zip(online, draws):
            expected = peer.user.activity * per_peer
            base = int(expected)
            counts.append(base + (1 if draw < (expected - base) else 0))
        return counts

    def _run_round(self, round_index: int) -> None:
        churn_rng = self._streams.stream("churn")
        self.config.churn.step(self.directory, churn_rng)

        # Hooks run after natural churn so scheduled campaigns can override
        # it (pin a peer offline, force a rejoin) for the round about to run.
        for hook in self._hooks:
            hook.on_round_start(self, round_index)

        online = self.directory.online_peers()
        self.metrics.start_round(round_index, online_peers=len(online))

        if self.reputation is not None:
            if hasattr(self.reputation, "refresh"):
                self._round_scores = dict(self.reputation.refresh())
            elif hasattr(self.reputation, "scores"):
                self._round_scores = dict(self.reputation.scores())

        self._begin_round_caches()

        # The whole round's activity draws come out of the stream as one
        # vector (same draws, same order as the historical per-peer calls).
        draws = self._streams.uniforms("activity", len(online))
        counts = self._interaction_counts(online, draws)

        for consumer, n_interactions in zip(online, counts):
            if not n_interactions:
                continue
            candidates = self._round_candidates(consumer)
            if not candidates:
                continue
            scores = self._candidate_scores(consumer, candidates)
            for _ in range(n_interactions):
                provider = self._select_from(candidates, scores)
                self._execute_transaction(consumer, provider, round_index)

        if self.reputation is not None and hasattr(self.reputation, "refresh"):
            self._round_scores = dict(self.reputation.refresh())
        self._apply_whitewashing()
        self.metrics.end_round()
        for hook in self._hooks:
            hook.on_round_end(self, round_index, dict(self._round_scores))

    # -- public API ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run every configured round and return the collected result."""
        for round_index in range(self.config.rounds):
            self._engine.schedule_at(
                float(round_index),
                lambda idx=round_index: self._run_round(idx),
                label=f"round-{round_index}",
            )
        self._engine.run()
        ground_truth = {peer.base_id: peer.user.honesty for peer in self.directory.peers()}
        return SimulationResult(
            config=self.config,
            directory=self.directory,
            graph=self.graph,
            transactions=list(self._transactions),
            feedbacks=list(self._feedbacks),
            disclosed_feedbacks=list(self._disclosed),
            metrics=self.metrics,
            ground_truth_honesty=ground_truth,
        )

"""The simulation engine.

Two layers:

* :class:`EventDrivenSimulator` — a generic discrete-event loop over the
  :class:`~repro.simulation.events.EventQueue`;
* :class:`InteractionSimulator` — the round-based peer-to-peer interaction
  simulation used throughout the experiments, built on top of the event loop.

Each round, every online peer may initiate a transaction with a provider
chosen either at random among its candidates or through the reputation
system's response policy; the provider serves well or badly according to its
behaviour model; the consumer produces (possibly dishonest) feedback and
discloses it to the reputation system with a probability driven by the
system-wide *information-sharing level* and the peer's own privacy concern.
Disclosed feedback is what the reputation mechanism sees and what the privacy
ledger accounts for — this is the concrete coupling knob between the paper's
reputation and privacy facets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Protocol

from repro import _profiling
from repro._util import require_unit_interval
from repro.core.backend import (
    VECTORIZED_BACKEND,
    interaction_counts,
    resolve_backend,
)
from repro.errors import ConfigurationError, SimulationError
from repro.simulation.adversary import (
    BehaviorModel,
    CollusiveBehavior,
    WhitewasherBehavior,
    behavior_for_user,
)
from repro.simulation.churn import ChurnModel
from repro.simulation.events import Event, EventQueue
from repro.simulation.metrics import MetricsCollector
from repro.simulation.peer import Peer, PeerDirectory
from repro.simulation.rng import RandomStreams
from repro.simulation.transaction import Feedback, Transaction, TransactionOutcome
from repro.socialnet.graph import SocialGraph


class ReputationProtocol(Protocol):
    """What the simulator needs from a reputation mechanism."""

    def record_feedback(self, feedback: Feedback) -> None:
        """Ingest one disclosed feedback report."""

    def score(self, peer_id: str) -> float:
        """Current reputation score of a peer in ``[0, 1]``."""


class RoundHook(Protocol):
    """Observer/actuator invoked at every round boundary.

    Hooks are the engine's extension point for *time-varying* behaviour —
    attack campaigns that switch behaviours, force churn or whitewash peers
    on a schedule, and trace collectors that snapshot the published scores.

    ``on_round_start`` runs after the natural churn step but before the
    round's reputation snapshot and transactions, so a hook can override
    churn decisions and rewire behaviours for the round about to run.
    ``on_round_end`` runs after the round's metrics closed, with the scores
    the mechanism published at the end of the round.

    Hooks must not consume the engine's named random streams ("behavior",
    "churn", "selection", "activity", "transactions", "feedback"); a hook
    that needs randomness draws from its own named stream (e.g.
    ``simulator.streams.stream("campaign")``) so that runs with and without
    hooks, and runs on either compute backend, stay stream-exact.
    """

    def on_round_start(self, simulator: InteractionSimulator, round_index: int) -> None:
        """Called before the round's transactions (after natural churn)."""

    def on_round_end(
        self, simulator: InteractionSimulator, round_index: int, scores: dict[str, float]
    ) -> None:
        """Called after the round completed, with the published scores."""


#: Callback invoked for every feedback actually disclosed to the system.
DisclosureObserver = Callable[[Feedback, Peer, Peer], None]


class EventDrivenSimulator:
    """A minimal discrete-event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(
        self, time: float, action: Callable[[], None], *, priority: int = 0, label: str = ""
    ) -> None:
        if time < self._now:
            raise ConfigurationError("cannot schedule an event in the past")
        self._queue.push(Event(time=time, priority=priority, action=action, label=label))

    def schedule_in(
        self, delay: float, action: Callable[[], None], *, priority: int = 0, label: str = ""
    ) -> None:
        self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def run(self, until: float | None = None) -> int:
        """Process events until the queue drains or the clock passes ``until``.

        Returns the number of events processed.
        """
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            event = self._queue.pop()
            self._now = event.time
            event.action()
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed

    def restore_clock(self, now: float) -> None:
        """Reset the virtual clock to a checkpointed instant.

        Only legal while the queue is drained — checkpoints are taken at
        round boundaries, so a restored loop never has in-flight events.
        """
        if self._queue:
            raise SimulationError("cannot restore the clock while events are pending")
        self._now = float(now)


@dataclass
class SimulationConfig:
    """Parameters of one interaction-simulation run.

    ``sharing_level`` is the paper's "quantity of shared information" knob
    (σ): the base probability that a generated feedback is disclosed to the
    reputation system.  ``anonymous_feedback`` switches to the
    privacy-preserving reporting mode where the rater identity is withheld.
    """

    rounds: int = 50
    sharing_level: float = 1.0
    anonymous_feedback: bool = False
    neighbor_only: bool = True
    use_reputation_selection: bool = True
    selection_exploration: float = 0.1
    interactions_per_peer: float = 1.0
    traitor_fraction: float = 0.0
    whitewasher_fraction: float = 0.0
    selfish_fraction: float = 0.0
    collusion_fraction: float = 0.0
    churn: ChurnModel = field(default_factory=ChurnModel)
    seed: int = 0
    #: Compute backend for the round loop's numeric kernels ("python",
    #: "vectorized" or "auto").  Both backends consume the random streams
    #: identically, so a run's trajectory does not depend on the choice.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        resolve_backend(self.backend)
        require_unit_interval(self.sharing_level, "sharing_level")
        require_unit_interval(self.selection_exploration, "selection_exploration")
        require_unit_interval(self.traitor_fraction, "traitor_fraction")
        require_unit_interval(self.whitewasher_fraction, "whitewasher_fraction")
        require_unit_interval(self.selfish_fraction, "selfish_fraction")
        require_unit_interval(self.collusion_fraction, "collusion_fraction")
        if self.interactions_per_peer < 0:
            raise ConfigurationError("interactions_per_peer must be non-negative")


@dataclass
class SimulationResult:
    """Everything a run produced, for downstream facet evaluation."""

    config: SimulationConfig
    directory: PeerDirectory
    graph: SocialGraph
    transactions: list[Transaction]
    feedbacks: list[Feedback]
    disclosed_feedbacks: list[Feedback]
    metrics: MetricsCollector
    ground_truth_honesty: dict[str, float]

    @property
    def disclosure_rate(self) -> float:
        if not self.feedbacks:
            return 0.0
        return len(self.disclosed_feedbacks) / len(self.feedbacks)


@dataclass(frozen=True)
class DirectoryPlan:
    """A deterministic blueprint of the peer directory.

    Building a :class:`PeerDirectory` draws behaviour assignments from the
    engine's ``"behavior"`` stream; those draws depend only on the graph,
    the seed and the adversary-mix fractions, so scenario runs that share a
    setup (every mechanism column of a robustness row) repeat them
    needlessly.  A plan captures the *decisions* — per user, a zero-argument
    factory for its behaviour — without any mutable state: materializing it
    creates fresh :class:`Peer` and behaviour objects every time, so
    restored directories are exactly what a cold build would produce.

    Skipping the draws is stream-exact: ``"behavior"`` is its own named
    stream, consumed only during directory construction, so every other
    stream's sequence is untouched whether a plan is supplied or not.
    """

    entries: tuple[tuple[str, Callable[[], BehaviorModel]], ...]

    def materialize(self, graph: SocialGraph) -> list[Peer]:
        """Fresh peers (fresh behaviour instances) for the planned graph."""
        user_of = graph.user
        return [
            Peer(user=user_of(user_id), behavior=factory())
            for user_id, factory in self.entries
        ]


def _collusive_factory(ring: frozenset) -> Callable[[], BehaviorModel]:
    return lambda: CollusiveBehavior(ring=set(ring))


def build_directory_plan(
    graph: SocialGraph,
    rng: random.Random,
    *,
    traitor_fraction: float = 0.0,
    whitewasher_fraction: float = 0.0,
    selfish_fraction: float = 0.0,
    collusion_fraction: float = 0.0,
) -> DirectoryPlan:
    """Draw the directory's behaviour decisions into a reusable plan.

    Consumes the rng exactly as the historical directory build did — one
    :func:`behavior_for_user` call per user in graph order, then one
    ``sample`` for the collusion ring — so building a plan and materializing
    it yields the same directory as the old inline construction.
    """
    decisions: list[list[object]] = []
    for user in graph.users():
        behavior = behavior_for_user(
            user,
            rng=rng,
            traitor_fraction=traitor_fraction,
            whitewasher_fraction=whitewasher_fraction,
            selfish_fraction=selfish_fraction,
        )
        # Every assignable behaviour is default-constructible, so the class
        # itself is the factory; the throwaway instance only fixes the draw.
        decisions.append([user.user_id, type(behavior), user.is_honest])
    if collusion_fraction > 0.0:
        dishonest = [decision for decision in decisions if not decision[2]]
        if len(dishonest) >= 2:
            ring_size = max(2, int(round(collusion_fraction * len(dishonest))))
            ring_members = rng.sample(dishonest, min(ring_size, len(dishonest)))
            ring_ids = {member[0] for member in ring_members}
            for member in ring_members:
                member[1] = _collusive_factory(frozenset(ring_ids - {member[0]}))
    return DirectoryPlan(
        entries=tuple((user_id, factory) for user_id, factory, _ in decisions)
    )


class InteractionSimulator:
    """Round-based peer-to-peer interaction simulation over a social graph."""

    def __init__(
        self,
        graph: SocialGraph,
        config: SimulationConfig | None = None,
        *,
        reputation: ReputationProtocol | None = None,
        disclosure_observer: DisclosureObserver | None = None,
        hooks: Sequence[RoundHook] = (),
        directory_plan: DirectoryPlan | None = None,
    ) -> None:
        if len(graph) < 2:
            raise ConfigurationError("the simulation needs at least two peers")
        self.graph = graph
        self.config = config or SimulationConfig()
        self.reputation = reputation
        self._disclosure_observer = disclosure_observer
        self._hooks: tuple = tuple(hooks)
        self._streams = RandomStreams(self.config.seed)
        #: Hot-loop stream handles; hoisted so per-transaction code skips the
        #: per-call name lookup.  Streams are independent per name, so eager
        #: creation never changes any sequence.
        self._rng_selection = self._streams.stream("selection")
        self._rng_transactions = self._streams.stream("transactions")
        self._rng_feedback = self._streams.stream("feedback")
        self._directory_plan = directory_plan
        self.directory = self._build_directory()
        self.metrics = MetricsCollector()
        self._transactions: list[Transaction] = []
        self._feedbacks: list[Feedback] = []
        self._disclosed: list[Feedback] = []
        self._transaction_counter = 0
        self._engine = EventDrivenSimulator()
        #: First round the next :meth:`run_until` segment will execute.
        self._next_round = 0
        self._backend = resolve_backend(self.config.backend)
        # Stateful churn models (PhasedChurnModel) rewind here so a config
        # or campaign reused across simulators starts every run at round 0.
        self.config.churn.reset()
        #: Reputation snapshot taken once per round; selection and
        #: whitewashing decisions read from it instead of querying the
        #: mechanism per transaction (peers act on the scores published at
        #: the start of the round, and recomputation happens once per round).
        self._round_scores: dict[str, float] = {}
        #: Disclosure probabilities are static within a round (behaviour
        #: switches happen at round boundaries), so they are computed once
        #: per consumer per round; cleared by :meth:`_begin_round_caches`.
        #: Candidates and score vectors are hoisted per consumer directly in
        #: the round loop — each consumer is visited exactly once per round.
        self._disclosure_cache: dict[str, float] = {}
        #: Whole-run neighbour→Peer resolution (see :meth:`_neighbor_peers`).
        self._neighbor_peers_cache: dict[str, list[Peer]] = {}

    @property
    def streams(self) -> RandomStreams:
        """The run's named random streams (hooks draw from their own stream)."""
        return self._streams

    # -- setup -------------------------------------------------------------

    def _build_directory(self) -> PeerDirectory:
        plan = self._directory_plan
        if plan is None:
            plan = build_directory_plan(
                self.graph,
                self._streams.stream("behavior"),
                traitor_fraction=self.config.traitor_fraction,
                whitewasher_fraction=self.config.whitewasher_fraction,
                selfish_fraction=self.config.selfish_fraction,
                collusion_fraction=self.config.collusion_fraction,
            )
        return PeerDirectory(plan.materialize(self.graph))

    # -- provider selection --------------------------------------------------

    def _neighbor_peers(self, consumer: Peer) -> list[Peer]:
        """The consumer's neighbours as :class:`Peer` objects, cached for the
        whole run: the graph is immutable during a simulation and the
        directory never replaces peer objects (whitewashing rebinds
        identities on the same object), so the id→peer resolution per
        neighbour per round was pure overhead."""
        cached = self._neighbor_peers_cache.get(consumer.base_id)
        if cached is None:
            get = self.directory.get
            cached = [get(nid) for nid in self.graph.neighbors(consumer.base_id)]
            self._neighbor_peers_cache[consumer.base_id] = cached
        return cached

    def _candidates(self, consumer: Peer) -> list[Peer]:
        if self.config.neighbor_only:
            # Self-edges cannot exist in the graph, so no self-filter needed.
            return [peer for peer in self._neighbor_peers(consumer) if peer.online]
        return [
            peer
            for peer in self.directory.peers()
            if peer.online and peer.base_id != consumer.base_id
        ]

    def _begin_round_caches(self) -> None:
        self._disclosure_cache.clear()

    def _candidate_scores(self, consumer: Peer, candidates: list[Peer]) -> list[float] | None:
        """Round-start scores of a consumer's candidates, in candidate order.

        ``None`` when selection does not use reputation.  Kept as a plain
        list on every backend: candidate sets are small (a peer's
        neighbourhood), where the pure-Python argmax scan beats the fixed
        dispatch cost of any array kernel — and a single selection code
        path keeps trajectories trivially backend-independent.
        """
        if self.reputation is None or not self.config.use_reputation_selection:
            return None
        default = getattr(self.reputation, "default_score", 0.5)
        lookup = self._round_scores.get
        return [lookup(peer.peer_id, default) for peer in candidates]

    def _select_from(self, candidates: list[Peer], scores: list[float] | None) -> Peer:
        """Pick a provider among the candidates given their score vector.

        Consumes the "selection" stream exactly as the historical
        per-transaction code did: one exploration uniform (only when
        reputation-guided selection is active), then either a ``choice`` or
        one tie-break uniform per candidate.  The scan below is the tuple
        comparison ``(score, tiebreak) > best`` unrolled; draws happen in
        candidate order, exactly like the historical batched vector.
        """
        rng = self._rng_selection
        if scores is None or rng.random() < self.config.selection_exploration:
            return rng.choice(candidates)
        draw = rng.random
        best_index = 0
        best_score = scores[0]
        best_tiebreak = draw()
        for position in range(1, len(candidates)):
            tiebreak = draw()
            score = scores[position]
            if score > best_score or (score == best_score and tiebreak > best_tiebreak):
                best_score = score
                best_tiebreak = tiebreak
                best_index = position
        return candidates[best_index]

    def _select_provider(self, consumer: Peer, candidates: list[Peer]) -> Peer:
        return self._select_from(candidates, self._candidate_scores(consumer, candidates))

    # -- one round -----------------------------------------------------------

    def _execute_transaction(self, consumer: Peer, provider: Peer, round_index: int) -> None:
        rng = self._rng_transactions
        self._transaction_counter += 1

        if not provider.behavior.provides_service(provider.user, rng):
            quality = 0.0
        else:
            quality = provider.behavior.serve_quality(provider.user, rng)
        outcome = TransactionOutcome.SUCCESS if quality >= 0.5 else TransactionOutcome.FAILURE
        transaction = Transaction(
            transaction_id=self._transaction_counter,
            time=round_index,
            consumer=consumer.peer_id,
            provider=provider.peer_id,
            outcome=outcome,
            quality=quality,
        )
        provider.served_count += 1
        consumer.record_received(transaction.succeeded)
        self._transactions.append(transaction)
        self.metrics.record_transaction(transaction, provider.user.is_honest)

        self._generate_feedback(consumer, provider, transaction, round_index)

    def _generate_feedback(
        self, consumer: Peer, provider: Peer, transaction: Transaction, round_index: int
    ) -> None:
        rng = self._rng_feedback
        rating, truthful = consumer.behavior.rate_transaction(consumer.user, transaction, rng)
        rater = None if self.config.anonymous_feedback else consumer.peer_id
        feedback = Feedback(
            transaction_id=transaction.transaction_id,
            time=round_index,
            subject=provider.peer_id,
            rating=rating,
            rater=rater,
            truthful=truthful,
        )
        self._feedbacks.append(feedback)

        disclose_probability = self._disclosure_cache.get(consumer.base_id)
        if disclose_probability is None:
            disclose_probability = consumer.behavior.disclosure_probability(
                consumer.user, self.config.sharing_level
            )
            self._disclosure_cache[consumer.base_id] = disclose_probability
        disclosed = rng.random() < disclose_probability
        self.metrics.record_feedback(feedback, disclosed)
        if not disclosed:
            return
        self._disclosed.append(feedback)
        if self.reputation is not None:
            self.reputation.record_feedback(feedback)
        if self._disclosure_observer is not None:
            self._disclosure_observer(feedback, consumer, provider)

    def _apply_whitewashing(self) -> None:
        if self.reputation is None:
            return
        default = getattr(self.reputation, "default_score", 0.5)
        for peer in self.directory.peers():
            behavior = peer.behavior
            if not isinstance(behavior, WhitewasherBehavior):
                continue
            current_score = self._round_scores.get(peer.peer_id, default)
            if behavior.should_whitewash(current_score):
                old_id = peer.peer_id
                peer.new_identity()
                behavior.note_whitewash()
                self.directory.rebind_identity(peer, old_id)

    def _interaction_counts(self, online: list[Peer], draws: list[float]) -> list[int]:
        """Per-consumer interaction counts from the batched activity draws."""
        per_peer = self.config.interactions_per_peer
        if self._backend == VECTORIZED_BACKEND and online:
            activities = [peer.user.activity for peer in online]
            return interaction_counts(activities, per_peer, draws).tolist()
        counts: list[int] = []
        for peer, draw in zip(online, draws, strict=True):
            expected = peer.user.activity * per_peer
            base = int(expected)
            counts.append(base + (1 if draw < (expected - base) else 0))
        return counts

    def _refresh_round_scores(self) -> None:
        """Snapshot the mechanism's published scores for the running round.

        ``refresh()`` returns a fresh dict every call, so the snapshot is
        taken by reference — no extra copy per round.  Wall time spent here
        is attributed to the ``refresh`` profiling phase when profiling is
        active.
        """
        reputation = self.reputation
        if reputation is None:
            return
        timer = _profiling.active()
        started = _profiling.clock() if timer is not None else 0.0
        if hasattr(reputation, "refresh"):
            self._round_scores = reputation.refresh()
        elif hasattr(reputation, "scores"):
            self._round_scores = dict(reputation.scores())
        if timer is not None:
            timer.add("refresh", _profiling.clock() - started)

    def _run_round(self, round_index: int) -> None:
        churn_rng = self._streams.stream("churn")
        self.config.churn.step(self.directory, churn_rng)

        # Hooks run after natural churn so scheduled campaigns can override
        # it (pin a peer offline, force a rejoin) for the round about to run.
        for hook in self._hooks:
            hook.on_round_start(self, round_index)

        online = self.directory.online_peers()
        self.metrics.start_round(round_index, online_peers=len(online))

        self._refresh_round_scores()

        self._begin_round_caches()

        # The whole round's activity draws come out of the stream as one
        # vector (same draws, same order as the historical per-peer calls).
        draws = self._streams.uniforms("activity", len(online))
        counts = self._interaction_counts(online, draws)

        for consumer, n_interactions in zip(online, counts, strict=True):
            if not n_interactions:
                continue
            candidates = self._candidates(consumer)
            if not candidates:
                continue
            scores = self._candidate_scores(consumer, candidates)
            for _ in range(n_interactions):
                provider = self._select_from(candidates, scores)
                self._execute_transaction(consumer, provider, round_index)

        if self.reputation is not None and hasattr(self.reputation, "refresh"):
            self._refresh_round_scores()
        self._apply_whitewashing()
        self.metrics.end_round()
        # Hooks receive the snapshot by reference (it is reassigned, never
        # mutated, between rounds); they must treat it as read-only.
        round_scores = self._round_scores
        for hook in self._hooks:
            hook.on_round_end(self, round_index, round_scores)

    # -- public API ------------------------------------------------------------

    @property
    def completed_rounds(self) -> int:
        """Rounds executed so far (the next segment starts here)."""
        return self._next_round

    def run_until(self, round_limit: int) -> int:
        """Execute rounds up to ``round_limit`` (clamped to the configured
        total) and return the number of rounds completed so far.

        Segmenting a run over several ``run_until`` calls schedules and
        drains exactly the events a single :meth:`run` would, on the same
        virtual clock — so the trajectory, and any checkpoint taken between
        segments, is byte-identical to an uninterrupted run.
        """
        limit = min(round_limit, self.config.rounds)
        for round_index in range(self._next_round, limit):
            self._engine.schedule_at(
                float(round_index),
                lambda idx=round_index: self._run_round(idx),
                label=f"round-{round_index}",
            )
        if limit > self._next_round:
            self._next_round = limit
        self._engine.run()
        return self._next_round

    def result(self) -> SimulationResult:
        """The collected result of the rounds executed so far."""
        ground_truth = {peer.base_id: peer.user.honesty for peer in self.directory.peers()}
        return SimulationResult(
            config=self.config,
            directory=self.directory,
            graph=self.graph,
            transactions=list(self._transactions),
            feedbacks=list(self._feedbacks),
            disclosed_feedbacks=list(self._disclosed),
            metrics=self.metrics,
            ground_truth_honesty=ground_truth,
        )

    def run(self) -> SimulationResult:
        """Run every configured round and return the collected result."""
        self.run_until(self.config.rounds)
        return self.result()

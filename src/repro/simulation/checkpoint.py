"""Checkpoint/resume for the interaction simulator.

A checkpoint is the *complete* state of a paused run — peers and their
rebound identities, the reputation mechanism with its feedback store and
epoch, every materialized RNG stream mid-sequence, churn and campaign
cursors, the published score snapshot, and the collected transaction and
feedback logs — captured at a round boundary.  Restoring it and running the
remaining rounds produces byte-identical records to a run that was never
interrupted; the contract tests in ``tests/chaos`` enforce this per
mechanism and per compute backend.

File format (version 1): one JSON header line, then a pickle payload::

    {"format": "repro-checkpoint", "version": 1, "kind": ...,
     "round_index": ..., "payload_bytes": N, "payload_sha256": "..."}\\n
    <N bytes of pickle>

The header is self-describing and cheap to read without unpickling; the
SHA-256 digest detects truncation and bit rot before any pickle byte is
trusted.  Writes are atomic (temp file + ``os.replace``) so a crash during
checkpointing leaves the previous checkpoint intact.  Versioning policy:
``version`` bumps whenever the payload's shape changes incompatibly; readers
reject unknown versions outright rather than guessing (a checkpoint is a
short-lived restart artifact, not an archival format).

Hooks (campaign drivers, trace collectors) hold closures and are not
pickled.  Instead a hook may implement the checkpoint protocol —
``checkpoint_state() -> state`` and
``restore_checkpoint_state(state, simulator) -> None`` — and the resume path
reconstructs the hooks from configuration before rehydrating their state.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro import faults
from repro.core.backend import resolve_backend
from repro.errors import CheckpointError
from repro.simulation.engine import (
    DisclosureObserver,
    EventDrivenSimulator,
    InteractionSimulator,
    RoundHook,
)
from repro.simulation.rng import RandomStreams

if TYPE_CHECKING:
    from repro.simulation.metrics import MetricsCollector

CHECKPOINT_MAGIC = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: Protocol 4 is supported by every Python this repo targets; pinning it
#: keeps checkpoint bytes stable across interpreter minor versions.
_PICKLE_PROTOCOL = 4


@dataclass
class SimulatorState:
    """Picklable snapshot of a paused :class:`InteractionSimulator`.

    ``config`` carries the churn model *with its cursor* (stateful churn
    advances inside the config object), so restore must not reset it.
    ``hook_states`` holds one entry per hook, in hook order — the hook's
    ``checkpoint_state()`` result, or ``None`` for stateless hooks.
    """

    config: Any
    graph: Any
    directory: Any
    reputation: Any
    stream_states: dict[str, object]
    transactions: list[Any]
    feedbacks: list[Any]
    disclosed: list[Any]
    transaction_counter: int
    round_scores: dict[str, float]
    metrics: MetricsCollector
    next_round: int
    clock: float
    hook_states: list[object]


def capture_state(simulator: InteractionSimulator) -> SimulatorState:
    """Snapshot a simulator paused at a round boundary.

    The snapshot shares references with the live simulator — callers
    serialize it immediately (:func:`save_simulator_checkpoint`) rather than
    holding it across further rounds.
    """
    hook_states: list[object] = []
    for hook in simulator._hooks:
        state_of = getattr(hook, "checkpoint_state", None)
        hook_states.append(None if state_of is None else state_of())
    return SimulatorState(
        config=simulator.config,
        graph=simulator.graph,
        directory=simulator.directory,
        reputation=simulator.reputation,
        stream_states=simulator.streams.snapshot(),
        transactions=simulator._transactions,
        feedbacks=simulator._feedbacks,
        disclosed=simulator._disclosed,
        transaction_counter=simulator._transaction_counter,
        round_scores=simulator._round_scores,
        metrics=simulator.metrics,
        next_round=simulator.completed_rounds,
        clock=simulator._engine.now,
        hook_states=hook_states,
    )


def restore_simulator(
    state: SimulatorState,
    *,
    hooks: Sequence[RoundHook] = (),
    disclosure_observer: DisclosureObserver | None = None,
) -> InteractionSimulator:
    """Rebuild a simulator from a snapshot, ready to run the remaining rounds.

    ``hooks`` must mirror the checkpointed run's hooks positionally: each is
    rehydrated from the matching ``hook_states`` entry via its
    ``restore_checkpoint_state``.  The caller reconstructs the hook objects
    themselves (they are configuration, not state).
    """
    if len(hooks) != len(state.hook_states):
        raise CheckpointError(
            f"checkpoint carries state for {len(state.hook_states)} hooks, "
            f"but {len(hooks)} were supplied"
        )
    simulator = InteractionSimulator.__new__(InteractionSimulator)
    simulator.graph = state.graph
    simulator.config = state.config
    simulator.reputation = state.reputation
    simulator._disclosure_observer = disclosure_observer
    simulator._hooks = tuple(hooks)
    streams = RandomStreams(state.config.seed)
    streams.restore(state.stream_states)
    simulator._streams = streams
    simulator._rng_selection = streams.stream("selection")
    simulator._rng_transactions = streams.stream("transactions")
    simulator._rng_feedback = streams.stream("feedback")
    simulator._directory_plan = None
    simulator.directory = state.directory
    simulator.metrics = state.metrics
    simulator._transactions = state.transactions
    simulator._feedbacks = state.feedbacks
    simulator._disclosed = state.disclosed
    simulator._transaction_counter = state.transaction_counter
    simulator._engine = EventDrivenSimulator()
    simulator._engine.restore_clock(state.clock)
    simulator._next_round = state.next_round
    simulator._backend = resolve_backend(state.config.backend)
    # The churn cursor lives inside config.churn and was pickled in place —
    # restoring must NOT reset it (unlike __init__, which starts a new run).
    simulator._round_scores = state.round_scores
    # Pure caches: rebuilt lazily with value-identical contents.
    simulator._disclosure_cache = {}
    simulator._neighbor_peers_cache = {}
    for hook, hook_state in zip(hooks, state.hook_states, strict=True):
        if hook_state is None:
            continue
        restore = getattr(hook, "restore_checkpoint_state", None)
        if restore is None:
            raise CheckpointError(
                f"checkpoint carries state for hook {type(hook).__name__}, "
                "which does not implement restore_checkpoint_state"
            )
        restore(hook_state, simulator)
    return simulator


# -- file format -----------------------------------------------------------


def write_checkpoint(path: str, kind: str, payload: object, *, round_index: int) -> None:
    """Atomically persist a payload as a versioned, checksummed checkpoint.

    The SHA-256 digest is always computed over the *intact* pickle; the
    ``checkpoint.save`` fault site can crash the process before anything is
    written (durability testing) or flip a payload bit after digesting
    (corruption-detection testing).
    """
    blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    action = faults.fire("checkpoint.save", kind=kind, round_index=round_index)
    digest = hashlib.sha256(blob).hexdigest()
    if action == "corrupt":
        blob = faults.corrupt_bytes(blob)
    header = {
        "format": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "kind": kind,
        "round_index": round_index,
        "payload_bytes": len(blob),
        "payload_sha256": digest,
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        handle.write(b"\n")
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def read_checkpoint(
    path: str, *, expected_kind: str | None = None
) -> tuple[dict[str, object], object]:
    """Load and verify a checkpoint; returns ``(header, payload)``.

    Every failure mode — missing file, foreign format, unsupported version,
    wrong kind, truncation, digest mismatch, unpicklable payload — raises
    :class:`CheckpointError` with a message naming the file and the defect.
    """
    try:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            blob = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path}: malformed checkpoint header") from error
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if expected_kind is not None and header.get("kind") != expected_kind:
        raise CheckpointError(
            f"{path}: checkpoint kind {header.get('kind')!r} "
            f"(expected {expected_kind!r})"
        )
    expected_bytes = header.get("payload_bytes")
    if not isinstance(expected_bytes, int) or len(blob) != expected_bytes:
        raise CheckpointError(
            f"{path}: truncated checkpoint payload "
            f"({len(blob)} bytes, header promises {expected_bytes!r})"
        )
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: checkpoint payload failed its SHA-256 check")
    try:
        payload = pickle.loads(blob)
    except Exception as error:
        # The digest matched, so this is a format bug, not rot — still a
        # CheckpointError so callers have a single failure type to handle.
        raise CheckpointError(f"{path}: cannot unpickle checkpoint payload") from error
    return header, payload


def save_simulator_checkpoint(path: str, simulator: InteractionSimulator) -> None:
    """Snapshot a simulator (paused at a round boundary) to ``path``."""
    state = capture_state(simulator)
    write_checkpoint(path, "simulator", state, round_index=state.next_round)


def load_simulator_checkpoint(path: str) -> SimulatorState:
    """Read back a :func:`save_simulator_checkpoint` file."""
    _, payload = read_checkpoint(path, expected_kind="simulator")
    if not isinstance(payload, SimulatorState):
        raise CheckpointError(f"{path}: payload is not a simulator state")
    return payload

"""Deterministic fault injection: seeded chaos for the execution layer.

Fault tolerance is only trustworthy if every recovery path is *exercised*,
and recovery paths are only testable if failures strike reproducibly.  This
module provides that: a :class:`FaultPlan` is plain data — a seed plus an
ordered list of :class:`FaultRule`\\ s — and instrumented call sites ask
:func:`fire` whether a fault strikes *here, now*.  Given the same plan and
the same sequence of ``fire`` calls, the same faults strike in the same
places, so chaos tests can assert byte-identical recovery instead of
"usually survives".

Four fault actions exist:

* ``"raise"`` — :func:`fire` raises :class:`~repro.errors.InjectedFault`
  (transient-exception testing; pairs with the sweep retry policy);
* ``"kill"`` — the *current process* dies by ``SIGKILL`` (worker-loss
  testing; pairs with the executor's pool-rebuild recovery);
* ``"corrupt"`` — returned to the caller, which damages the bytes it was
  about to persist (storage-rot testing; pairs with checksum validation);
* ``"degrade"`` — returned to the caller, which falls back to the pure
  Python backend (degraded-mode testing; records must not change).

Plans propagate to sweep worker processes through the ``REPRO_FAULTS``
environment variable (the plan's JSON form), and a ``kill`` rule can carry a
file latch so a rebuilt worker does not die again on the re-executed task.

Randomness discipline: probabilistic rules draw from a ``random.Random``
seeded from the plan seed and the rule index — never from the simulation's
named streams and never from ambient entropy — so an active plan cannot
perturb a trajectory except through the faults it injects.
"""

from __future__ import annotations

import json
import os
import random
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator, Mapping

from repro.errors import ConfigurationError, InjectedFault

#: Environment variable carrying a plan's JSON form into worker processes.
ENV_VAR = "REPRO_FAULTS"

#: Supported fault actions (see module docstring).
ACTIONS = ("raise", "kill", "corrupt", "degrade")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: where it strikes, what it does, how often.

    ``match`` restricts the rule to ``fire`` calls whose detail mapping
    carries every listed key/value pair (e.g. ``(("task_index", 3),)``
    strikes only task 3).  ``times`` caps firings per process (``None`` =
    unlimited); ``probability`` gates each candidate firing on a seeded
    coin; ``latch`` names a cross-process once-only latch file created in
    the plan's ``latch_dir`` the instant the rule fires.
    """

    site: str
    action: str
    match: tuple[tuple[str, object], ...] = ()
    times: int | None = 1
    probability: float | None = None
    latch: str | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if not self.site:
            raise ConfigurationError("a fault rule needs a non-empty site name")
        if self.times is not None and self.times < 1:
            raise ConfigurationError("fault rule times must be at least 1 (or None)")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault rule probability must be in [0, 1]")

    def matches(self, detail: Mapping[str, object]) -> bool:
        return all(detail.get(key) == value for key, value in self.match)

    def to_dict(self) -> dict[str, object]:
        return {
            "site": self.site,
            "action": self.action,
            "match": dict(self.match),
            "times": self.times,
            "probability": self.probability,
            "latch": self.latch,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> FaultRule:
        match = payload.get("match") or {}
        if not isinstance(match, Mapping):
            raise ConfigurationError(f"fault rule match must be a mapping, got {match!r}")
        times = payload.get("times", 1)
        return cls(
            site=str(payload.get("site", "")),
            action=str(payload.get("action", "")),
            match=tuple(sorted(match.items())),
            times=None if times is None else int(times),  # type: ignore[arg-type]
            probability=(
                None
                if payload.get("probability") is None
                else float(payload["probability"])  # type: ignore[arg-type]
            ),
            latch=None if payload.get("latch") is None else str(payload["latch"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable chaos schedule.

    Rules are evaluated in order at each :func:`fire` call; the first
    eligible rule fires.  ``latch_dir`` hosts the latch files of ``latch``
    rules and must be set when any rule declares one.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    latch_dir: str | None = None

    def __post_init__(self) -> None:
        if self.latch_dir is None and any(rule.latch is not None for rule in self.rules):
            raise ConfigurationError("a plan with latch rules needs a latch_dir")

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "latch_dir": self.latch_dir,
                "rules": [rule.to_dict() for rule in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"malformed fault plan JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ConfigurationError("a fault plan must be a JSON object")
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise ConfigurationError("fault plan rules must be a list")
        latch_dir = payload.get("latch_dir")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            seed=int(payload.get("seed", 0)),
            latch_dir=None if latch_dir is None else str(latch_dir),
        )


# -- runtime state ---------------------------------------------------------

_ACTIVE: FaultPlan | None = None
#: Memo of the last environment-installed plan, keyed by the raw JSON so a
#: changed variable (tests monkeypatching) re-parses and resets counters.
_ENV_CACHE: tuple[str, FaultPlan] | None = None
#: Per-process firing counts and probability generators, by rule index.
_FIRED: dict[int, int] = {}
_RNGS: dict[int, random.Random] = {}


def _reset_runtime() -> None:
    _FIRED.clear()
    _RNGS.clear()


def activate(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` clear) the process-wide plan, resetting
    firing counters.  An installed plan takes precedence over ``REPRO_FAULTS``."""
    global _ACTIVE
    _ACTIVE = plan
    _reset_runtime()


@contextmanager
def active(plan: FaultPlan) -> Iterator[None]:
    """Scoped :func:`activate`; restores the previous plan on exit."""
    previous = _ACTIVE
    activate(plan)
    try:
        yield
    finally:
        activate(previous)


def reset_worker_state() -> None:
    """Drop firing counters inherited through ``fork`` (pool worker init).

    A worker forked mid-campaign would otherwise start with its parent's
    counts; each worker must evaluate ``times`` caps over its own life.
    """
    _reset_runtime()


def current_plan() -> FaultPlan | None:
    """The plan in effect: the activated one, else ``REPRO_FAULTS``, else None."""
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.from_json(raw))
        _reset_runtime()
    return _ENV_CACHE[1]


def _latch_path(plan: FaultPlan, rule: FaultRule) -> str | None:
    if rule.latch is None:
        return None
    assert plan.latch_dir is not None  # guaranteed by FaultPlan validation
    return os.path.join(plan.latch_dir, rule.latch)


def _rule_rng(plan: FaultPlan, index: int) -> random.Random:
    rng = _RNGS.get(index)
    if rng is None:
        rng = random.Random(plan.seed * 1000003 + index)
        _RNGS[index] = rng
    return rng


def fire(site: str, **detail: object) -> str | None:
    """Evaluate the active plan at a named site.

    Returns ``None`` when no rule fires, ``"corrupt"``/``"degrade"`` for the
    caller to implement, raises :class:`InjectedFault` for ``"raise"`` rules
    and ``SIGKILL``\\ s the current process for ``"kill"`` rules.  With no
    active plan and no ``REPRO_FAULTS`` this is a dictionary lookup and a
    falsy check — cheap enough to leave permanently instrumented.
    """
    plan = current_plan()
    if plan is None:
        return None
    for index, rule in enumerate(plan.rules):
        if rule.site != site or not rule.matches(detail):
            continue
        if rule.times is not None and _FIRED.get(index, 0) >= rule.times:
            continue
        latch = _latch_path(plan, rule)
        if latch is not None and os.path.exists(latch):
            continue
        if rule.probability is not None and not (
            _rule_rng(plan, index).random() < rule.probability
        ):
            continue
        _FIRED[index] = _FIRED.get(index, 0) + 1
        if latch is not None:
            # Persist the latch *before* acting so even a kill rule arms it.
            with open(latch, "w", encoding="utf-8") as handle:
                handle.write(f"{site}\n")
        if rule.action == "raise":
            detail_text = ", ".join(f"{key}={detail[key]!r}" for key in sorted(detail))
            raise InjectedFault(f"injected fault at {site} ({detail_text})")
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        return rule.action
    return None


def corrupt_bytes(data: bytes) -> bytes:
    """Deterministically flip one bit near the middle (models storage rot)."""
    if not data:
        return b"\x00"
    index = len(data) // 2
    return data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1 :]

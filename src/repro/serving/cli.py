"""``repro-serve``: boot a live reputation service over HTTP.

The stdlib adapter only — zero dependencies beyond the standard library, so
the same command works on a laptop, in tier-1 CI and inside the serve-gate
job.  Deployments with an ASGI stack should mount
:func:`repro.serving.http.create_asgi_app` under uvicorn instead.

Subprocess coordination: with ``--port 0`` the OS picks a free port; the
bound address is printed on stdout and, with ``--port-file``, written to a
file the parent process can poll — how the benchmark harness and the CI
serve-gate discover their servers without racing on fixed ports.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from types import FrameType

from repro.serving.http import ReputationHTTPServer, create_http_server
from repro.serving.service import ReputationService, ServiceConfig


def build_serve_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """The ``repro-serve`` argument surface (reused by ``repro serve``)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-serve",
            description="Serve live reputation scores over HTTP (stdlib adapter).",
        )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 lets the OS pick a free one (default: %(default)s)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (subprocess coordination)",
    )
    parser.add_argument(
        "--mechanism",
        default="beta",
        help="reputation mechanism backing the service (default: %(default)s)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "vectorized"),
        help="compute backend (default: %(default)s)",
    )
    parser.add_argument(
        "--refresh-every",
        type=int,
        default=64,
        help="publish refreshed scores every N ingested events (default: %(default)s)",
    )
    parser.add_argument(
        "--default-score",
        type=float,
        default=0.5,
        help="score reported for peers with no evidence (default: %(default)s)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="default checkpoint path for POST /v1/snapshot",
    )
    parser.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="resume the session from this checkpoint instead of starting empty",
    )
    parser.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help=(
            "write-ahead log path: every acked ingest batch is fsynced here "
            "before the response; on boot the log is replayed past the "
            "restored snapshot (acked events survive crashes)"
        ),
    )
    parser.add_argument(
        "--no-wal-fsync",
        action="store_true",
        help="skip the per-append fsync (faster, loses the power-failure guarantee)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admitted ingest requests before shedding with 429 (default: %(default)s)",
    )
    parser.add_argument(
        "--client-rate",
        type=float,
        default=None,
        help="per-client sustained requests/second (token bucket); omit to disable",
    )
    parser.add_argument(
        "--client-burst",
        type=int,
        default=8,
        help="per-client token-bucket burst size (default: %(default)s)",
    )
    parser.add_argument(
        "--dedup-window",
        type=int,
        default=1024,
        help="acked idempotency keys remembered for retry dedup (default: %(default)s)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.1,
        help="Retry-After hint (seconds) on 429/503 responses (default: %(default)s)",
    )
    return parser


def build_service(args: argparse.Namespace) -> ReputationService:
    """Construct (restore / recover) the service session an invocation asked for."""
    if args.restore is not None:
        # A restore resumes the *checkpointed* session verbatim; mechanism
        # flags that contradict it would silently fork the score history.
        if args.wal is not None:
            service = ReputationService.recover(
                wal_path=args.wal,
                snapshot_path=args.restore,
                wal_fsync=not args.no_wal_fsync,
            )
        else:
            service = ReputationService.restore(args.restore)
        if args.mechanism != service.config.mechanism and args.mechanism != "beta":
            raise SystemExit(
                f"--mechanism {args.mechanism!r} conflicts with the checkpoint's "
                f"{service.config.mechanism!r}; drop the flag when restoring"
            )
        return service
    config = ServiceConfig(
        mechanism=args.mechanism,
        backend=args.backend,
        refresh_every=args.refresh_every,
        default_score=args.default_score,
        max_pending_requests=args.max_pending,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        dedup_window=args.dedup_window,
        retry_after=args.retry_after,
    )
    if args.wal is not None:
        return ReputationService.recover(
            wal_path=args.wal, config=config, wal_fsync=not args.no_wal_fsync
        )
    return ReputationService(config)


def serve(
    server: ReputationHTTPServer,
    *,
    port_file: str | None = None,
    ready: threading.Event | None = None,
) -> None:
    """Run a bound server until SIGTERM/SIGINT, then shut down cleanly."""

    def _shutdown(signum: int, frame: FrameType | None) -> None:
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _shutdown)

    host, port = server.server_address[0], server.server_address[1]
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    if port_file is not None:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()


def main(argv: list[str] | None = None) -> int:
    args = build_serve_parser().parse_args(argv)
    service = build_service(args)
    server = create_http_server(
        service, host=args.host, port=args.port, snapshot_path=args.snapshot
    )
    try:
        serve(server, port_file=args.port_file)
    finally:
        # Flush/stop WAL maintenance; harmless for ephemeral sessions.
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

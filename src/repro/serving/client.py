"""A resilient HTTP client for the reputation service.

:class:`ResilientClient` wraps the v1 API with the client half of the PR-10
durability contract:

* **Timeouts** on every request (:class:`ClientRetryPolicy.timeout`).
* **Retries with exponential backoff and deterministic seeded jitter** —
  transport errors and 429/503 responses are retried up to
  ``max_attempts`` times, doubling the backoff each attempt (capped), with
  a multiplicative jitter drawn from a :class:`random.Random` seeded from
  the policy seed and the client id, so two runs of the same workload back
  off identically (the repro-lint R1 contract: no unseeded randomness).
  A ``retry_after`` hint in a 429/503 body stretches the wait.
* **A circuit breaker** (:class:`CircuitBreaker`): consecutive transport
  failures open the circuit and requests fail fast with
  :class:`~repro.errors.CircuitOpenError` until a reset interval passes,
  after which one half-open probe decides whether to close it again.
* **Idempotency keys**: every ingest batch is assigned a key
  (``{client_id}-{counter}``) sent as the ``Idempotency-Key`` header on
  every attempt, so a retry of a batch the server acked (but whose
  response got lost) returns the original receipt with
  ``duplicate: true`` instead of double-ingesting.

The client records every acked receipt (:attr:`ResilientClient.acked`), so
crash drills can check that *every event the client saw acknowledged* is
present after recovery — the WAL's headline guarantee.
``loadgen.replay``/``loadgen.ingest_events`` drive all traffic through this
client, so the serve benchmarks exercise the real retry path.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import CircuitOpenError, ConfigurationError, RequestFailedError
from repro.serving.sla import clock as sla_clock

#: HTTP statuses the client treats as transient backpressure, not failure.
RETRYABLE_STATUSES = (429, 503)


@dataclass(frozen=True)
class ClientRetryPolicy:
    """How a :class:`ResilientClient` paces itself under failure."""

    #: Total tries per request (first attempt included).
    max_attempts: int = 5
    #: Socket timeout per attempt, seconds.
    timeout: float = 10.0
    #: Backoff before the second attempt, seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff wait, seconds.
    backoff_cap: float = 2.0
    #: Multiplicative jitter amplitude (0.25 = +/-25% of the wait).
    jitter: float = 0.25
    #: Seed of the jitter stream (combined with the client id).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if not self.timeout > 0:
            raise ConfigurationError("timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff values must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")


class CircuitBreaker:
    """Fail fast after consecutive transport failures.

    Closed → open after ``failure_threshold`` consecutive failures; open →
    half-open after ``reset_after`` seconds (one probe allowed); the
    probe's outcome closes or re-opens the circuit.  Backpressure statuses
    (429/503) do *not* count as failures — the server is alive and asking
    for patience, which is the opposite of a dead endpoint.
    """

    def __init__(self, *, failure_threshold: int = 5, reset_after: float = 1.0) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if not reset_after > 0:
            raise ConfigurationError("reset_after must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half_open``."""
        if self._opened_at is None:
            return "closed"
        if self._probing or sla_clock() - self._opened_at >= self.reset_after:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May a request be issued right now?"""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe in flight is enough
        if sla_clock() - self._opened_at >= self.reset_after:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = sla_clock()


def _jitter_seed(seed: int, client_id: str) -> int:
    """A stable per-client jitter seed (``hash()`` is salted; sha256 is not)."""
    digest = hashlib.sha256(client_id.encode("utf-8")).digest()
    return seed ^ int.from_bytes(digest[:8], "big")


class ResilientClient:
    """The retrying, circuit-breaking, exactly-once v1 API client."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "client",
        policy: ClientRetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.policy = policy if policy is not None else ClientRetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._sleep = time.sleep if sleeper is None else sleeper
        self._rng = random.Random(_jitter_seed(self.policy.seed, client_id))
        self._batch_counter = 0
        #: Receipts of every acked ingest batch, in ack order.
        self.acked: list[dict[str, object]] = []
        #: Retries performed (sleeps taken) over the client's lifetime.
        self.retries = 0
        #: 429/503 responses absorbed over the client's lifetime.
        self.backpressure_responses = 0

    # -- one attempt -------------------------------------------------------

    def _once(
        self, method: str, path: str, body: object, headers: dict[str, str]
    ) -> tuple[int, object, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.policy.timeout
        )
        try:
            encoded = None
            sent_headers = dict(headers)
            if body is not None:
                encoded = json.dumps(body, sort_keys=True).encode("utf-8")
                sent_headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=sent_headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            return response.status, payload, raw
        finally:
            connection.close()

    def _backoff(self, attempt: int, floor: float) -> float:
        """The jittered wait before retry number ``attempt`` (1-based)."""
        wait = min(self.policy.backoff_cap, self.policy.backoff_base * (2.0 ** (attempt - 1)))
        wait = max(wait, floor)
        scale = 1.0 + self.policy.jitter * (2.0 * self._rng.random() - 1.0)
        return min(self.policy.backoff_cap, max(0.0, wait * scale))

    # -- the retry loop ----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: object = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, object, bytes]:
        """Issue one logical request, retrying transient failures.

        Returns ``(status, parsed_json_or_None, raw_bytes)`` for any
        non-retryable response (including 4xx — interpreting those is the
        caller's job).  Raises :class:`~repro.errors.CircuitOpenError`
        when the breaker refuses to try, and
        :class:`~repro.errors.RequestFailedError` when the retry budget
        runs out.
        """
        sent_headers = dict(headers or {})
        last_status: int | None = None
        last_error: str = "no attempt made"
        for attempt in range(1, self.policy.max_attempts + 1):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port} "
                    f"(state {self.breaker.state!r}); refusing {method} {path}"
                )
            retry_floor = 0.0
            try:
                status, payload, raw = self._once(method, path, body, sent_headers)
            except OSError as error:
                self.breaker.record_failure()
                last_status = None
                last_error = f"{error.__class__.__name__}: {error}"
            else:
                if status not in RETRYABLE_STATUSES:
                    self.breaker.record_success()
                    return status, payload, raw
                # Backpressure: the server is alive and shedding — honor
                # its retry hint but do not trip the breaker.
                self.breaker.record_success()
                self.backpressure_responses += 1
                last_status = status
                last_error = f"HTTP {status}: {payload!r}"
                if isinstance(payload, dict):
                    hint = payload.get("retry_after")
                    if isinstance(hint, (int, float)) and not isinstance(hint, bool):
                        retry_floor = min(float(hint), self.policy.backoff_cap)
            if attempt < self.policy.max_attempts:
                self.retries += 1
                self._sleep(self._backoff(attempt, retry_floor))
        raise RequestFailedError(
            f"{method} {path} failed after {self.policy.max_attempts} attempts "
            f"(last: {last_error})",
            status=last_status,
            attempts=self.policy.max_attempts,
        )

    # -- v1 API ------------------------------------------------------------

    def ingest(
        self,
        events: list[dict[str, object]],
        *,
        batch_key: str | None = None,
    ) -> dict[str, object]:
        """Ingest one batch exactly once; returns the server's receipt.

        The batch's idempotency key (generated when ``batch_key`` is not
        given) rides every retry, so a re-sent batch the server already
        acked comes back ``duplicate: true`` instead of double-counting.
        Non-2xx terminal responses raise
        :class:`~repro.errors.RequestFailedError`.
        """
        if batch_key is None:
            batch_key = f"{self.client_id}-{self._batch_counter}"
            self._batch_counter += 1
        status, payload, _ = self.request(
            "POST",
            "/v1/feedback",
            {"events": events},
            headers={"Idempotency-Key": batch_key, "X-Client-Id": self.client_id},
        )
        if status != 200 or not isinstance(payload, dict):
            raise RequestFailedError(
                f"ingest rejected with HTTP {status}: {payload!r}", status=status
            )
        self.acked.append(payload)
        return payload

    def scores(self, limit: int | None = None) -> dict[str, object]:
        path = "/v1/scores" if limit is None else f"/v1/scores?limit={limit}"
        status, payload, _ = self.request("GET", path)
        if status != 200 or not isinstance(payload, dict):
            raise RequestFailedError(
                f"scores query failed with HTTP {status}", status=status
            )
        return payload

    def raw_scores(self) -> bytes:
        """The exact ``/v1/scores`` bytes (for byte-identity drills)."""
        status, _, raw = self.request("GET", "/v1/scores")
        if status != 200:
            raise RequestFailedError(
                f"scores query failed with HTTP {status}", status=status
            )
        return raw

    def peer(self, peer_id: str) -> dict[str, object]:
        status, payload, _ = self.request("GET", f"/v1/peers/{peer_id}")
        if status not in (200, 404) or not isinstance(payload, dict):
            raise RequestFailedError(
                f"peer query failed with HTTP {status}", status=status
            )
        return payload

    def health(self) -> dict[str, object]:
        status, payload, _ = self.request("GET", "/v1/health")
        if status != 200 or not isinstance(payload, dict):
            raise RequestFailedError(
                f"health query failed with HTTP {status}", status=status
            )
        return payload

    def snapshot(self, path: str | None = None) -> dict[str, object]:
        body = None if path is None else {"path": path}
        status, payload, _ = self.request("POST", "/v1/snapshot", body)
        if status != 200 or not isinstance(payload, dict):
            raise RequestFailedError(
                f"snapshot failed with HTTP {status}: {payload!r}", status=status
            )
        return payload

    @property
    def total_acked_events(self) -> int:
        """Events the server has acknowledged to this client.

        Each batch key lands in :attr:`acked` at most once (the client
        only re-sends after a failed attempt), so ``duplicate`` receipts —
        the server confirming a batch whose original ack got lost — count
        like any other: those events are durably present exactly once.
        """
        total = 0
        for receipt in self.acked:
            accepted = receipt.get("accepted")
            if isinstance(accepted, int) and not isinstance(accepted, bool):
                total += accepted
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResilientClient {self.client_id}@{self.host}:{self.port} "
            f"acked={len(self.acked)} retries={self.retries}>"
        )

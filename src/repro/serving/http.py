"""HTTP adapters over :class:`~repro.serving.service.ReputationService`.

Two thin transports over the same transport-agnostic session object:

* :func:`create_http_server` — a stdlib ``ThreadingHTTPServer``.  Zero new
  dependencies, so tier-1 CI (and the serve-gate job) exercises the real
  network path on a bare container.  This is the adapter ``repro-serve``
  boots by default.
* :func:`create_asgi_app` — a FastAPI application exposing the same routes,
  for deployments that already run an ASGI stack (uvicorn/gunicorn worker
  models).  FastAPI is strictly optional: the factory raises a pointed
  error when it is not installed, and nothing else in the package imports
  it.

The v1 API surface (both adapters, documented in docs/API.md):

=========  ==================  ===========================================
method     path                semantics
=========  ==================  ===========================================
``POST``   ``/v1/feedback``    ingest one event object or ``{"events": [...]}``
``GET``    ``/v1/scores``      published scores at the current watermark
``GET``    ``/v1/peers/{id}``  one peer's score/rank summary
``POST``   ``/v1/snapshot``    persist the session (``{"path": ...}``)
``GET``    ``/v1/health``      liveness, counters, SLA latency summary
=========  ==================  ===========================================

Every response is JSON with sorted keys, so two servers serving the same
session state answer byte-identically — the serve-gate's restart check
compares raw response bodies.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError, ReproError
from repro.serving.service import ReputationService

#: Cap on request bodies (16 MiB): a runaway client should get a 413, not
#: an out-of-memory server.
MAX_BODY_BYTES = 16 * 1024 * 1024


def _scores_payload(service: ReputationService, limit: int | None) -> dict[str, object]:
    """The ``/v1/scores`` response body (shared by both adapters)."""
    view = service.scores()
    if limit is None:
        scores: dict[str, float] = dict(view)
    else:
        scores = dict(view.top(limit))
    return {
        "watermark": service.watermark,
        "pending": service.pending,
        "default_score": view.default_score,
        "scores": scores,
        "ranking": view.ranking() if limit is None else [peer for peer, _ in view.top(limit)],
    }


def _ingest_payload(service: ReputationService, body: object) -> dict[str, object]:
    """The ``/v1/feedback`` response body (shared by both adapters)."""
    if isinstance(body, dict) and "events" in body:
        events = body["events"]
        if not isinstance(events, list):
            raise ConfigurationError("'events' must be a list of feedback objects")
    elif isinstance(body, dict):
        events = [body]
    elif isinstance(body, list):
        events = body
    else:
        raise ConfigurationError("feedback body must be an object or a list")
    receipt = service.ingest_many(events)
    return dict(asdict(receipt))


def _snapshot_payload(
    service: ReputationService, body: object, default_path: str | None
) -> dict[str, object]:
    """The ``/v1/snapshot`` response body (shared by both adapters)."""
    path = default_path
    if isinstance(body, dict) and body.get("path") is not None:
        raw_path = body["path"]
        if not isinstance(raw_path, str) or not raw_path:
            raise ConfigurationError("snapshot 'path' must be a non-empty string")
        path = raw_path
    if path is None:
        raise ConfigurationError(
            "no snapshot path: POST {\"path\": ...} or start the server with --snapshot"
        )
    return service.snapshot(path)


class ReputationRequestHandler(BaseHTTPRequestHandler):
    """Routes v1 requests onto the server's service session."""

    #: Advertised in the ``Server`` response header.
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    server: ReputationHTTPServer

    def log_message(self, format: str, *args: object) -> None:
        """Per-request stderr logging is off; latency lives in /v1/health."""

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message, "status": status})

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ConfigurationError(f"request body is not valid JSON: {error}") from error

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:
        url = urlparse(self.path)
        service = self.server.service
        try:
            if url.path == "/v1/health":
                self._send_json(200, service.health())
            elif url.path == "/v1/scores":
                query = parse_qs(url.query)
                limit: int | None = None
                if "limit" in query:
                    try:
                        limit = int(query["limit"][0])
                    except ValueError:
                        self._send_error_json(400, "limit must be an integer")
                        return
                self._send_json(200, _scores_payload(service, limit))
            elif url.path.startswith("/v1/peers/"):
                peer_id = url.path[len("/v1/peers/") :]
                if not peer_id or "/" in peer_id:
                    self._send_error_json(404, f"no such route: {url.path}")
                    return
                summary = service.peer(peer_id)
                self._send_json(200 if summary.known else 404, dict(asdict(summary)))
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except ReproError as error:
            self._send_error_json(400, str(error))

    def do_POST(self) -> None:
        url = urlparse(self.path)
        service = self.server.service
        try:
            body = self._read_body()
            if url.path == "/v1/feedback":
                self._send_json(200, _ingest_payload(service, body))
            elif url.path == "/v1/snapshot":
                payload = _snapshot_payload(service, body, self.server.snapshot_path)
                self._send_json(200, payload)
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except ReproError as error:
            self._send_error_json(400, str(error))


class ReputationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service session."""

    #: Threads die with the process; the serve-gate SIGKILLs servers on
    #: purpose and must not hang on connection threads.
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ReputationService,
        *,
        snapshot_path: str | None = None,
    ) -> None:
        super().__init__(address, ReputationRequestHandler)
        self.service = service
        self.snapshot_path = snapshot_path


def create_http_server(
    service: ReputationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_path: str | None = None,
) -> ReputationHTTPServer:
    """Bind the stdlib adapter; ``port=0`` picks a free port (see
    ``server.server_address`` for the bound one)."""
    return ReputationHTTPServer((host, port), service, snapshot_path=snapshot_path)


def create_asgi_app(
    service: ReputationService, *, snapshot_path: str | None = None
) -> Any:
    """A FastAPI application over the same session and routes.

    Requires ``fastapi`` (deliberately not a dependency of this package);
    raises :class:`ConfigurationError` with installation guidance when it
    is missing.  Route semantics and response bodies match the stdlib
    adapter exactly — the adapters share the payload builders.
    """
    try:
        from fastapi import FastAPI, HTTPException, Request
        from fastapi.responses import JSONResponse
    except ImportError as error:  # pragma: no cover - exercised without fastapi
        raise ConfigurationError(
            "the ASGI adapter needs fastapi (pip install fastapi); "
            "use the stdlib adapter (create_http_server / repro-serve) otherwise"
        ) from error

    app = FastAPI(title="repro reputation service", version="1")

    def _json(payload: dict[str, object], status: int = 200) -> Any:
        # Sorted keys keep ASGI responses byte-identical to the stdlib
        # adapter for the same session state.
        return JSONResponse(
            content=json.loads(json.dumps(payload, sort_keys=True)), status_code=status
        )

    @app.get("/v1/health")
    def health() -> Any:
        return _json(service.health())

    @app.get("/v1/scores")
    def scores(limit: int | None = None) -> Any:
        return _json(_scores_payload(service, limit))

    @app.get("/v1/peers/{peer_id}")
    def peer(peer_id: str) -> Any:
        summary = service.peer(peer_id)
        return _json(dict(asdict(summary)), status=200 if summary.known else 404)

    @app.post("/v1/feedback")
    async def feedback(request: Request) -> Any:
        try:
            body = await request.json()
        except Exception as error:
            raise HTTPException(400, f"request body is not valid JSON: {error}") from error
        try:
            return _json(_ingest_payload(service, body))
        except ReproError as error:
            raise HTTPException(400, str(error)) from error

    @app.post("/v1/snapshot")
    async def snapshot(request: Request) -> Any:
        raw = await request.body()
        body = json.loads(raw.decode("utf-8")) if raw else None
        try:
            return _json(_snapshot_payload(service, body, snapshot_path))
        except ReproError as error:
            raise HTTPException(400, str(error)) from error

    return app

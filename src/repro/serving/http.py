"""HTTP adapters over :class:`~repro.serving.service.ReputationService`.

Two thin transports over the same transport-agnostic session object:

* :func:`create_http_server` — a stdlib ``ThreadingHTTPServer``.  Zero new
  dependencies, so tier-1 CI (and the serve-gate job) exercises the real
  network path on a bare container.  This is the adapter ``repro-serve``
  boots by default.
* :func:`create_asgi_app` — a FastAPI application exposing the same routes,
  for deployments that already run an ASGI stack (uvicorn/gunicorn worker
  models).  FastAPI is strictly optional: the factory raises a pointed
  error when it is not installed, and nothing else in the package imports
  it.

The v1 API surface (both adapters, documented in docs/API.md):

=========  ==================  ===========================================
method     path                semantics
=========  ==================  ===========================================
``POST``   ``/v1/feedback``    ingest one event object or ``{"events": [...]}``
``GET``    ``/v1/scores``      published scores at the current watermark
``GET``    ``/v1/peers/{id}``  one peer's score/rank summary
``GET``    ``/v1/evidence``    audit slice of the append-only evidence log
``POST``   ``/v1/snapshot``    persist the session (``{"path": ...}``)
``GET``    ``/v1/health``      state machine, counters, SLA latency summary
=========  ==================  ===========================================

Error semantics (identical bodies from both adapters — the parity tests
compare them byte for byte):

* ``400`` — malformed request (bad JSON, non-object events, bad headers):
  ``{"error": ..., "status": 400}``.
* ``429`` — shed by the admission gate or the per-client token bucket:
  ``{"error": ..., "retry_after": ..., "status": 429}`` plus a
  ``Retry-After`` header.  Clients identify themselves with an optional
  ``X-Client-Id`` header (falling back to the peer address).
* ``503`` — service is read-only (durability lost or operator-flipped);
  same shape as 429.  Reads keep answering from the stale watermark.
* ``500`` — unexpected failure, reported as a structured record
  (:func:`request_failure_record`), never a raw traceback.

``POST /v1/feedback`` honors an ``Idempotency-Key`` header: a batch
re-sent under an acked key returns the original receipt with
``duplicate: true`` instead of double-ingesting (see
:class:`~repro.serving.service.ReputationService.ingest_many`).

Every response is JSON with sorted keys, so two servers serving the same
session state answer byte-identically — the serve-gate's restart check
compares raw response bodies.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError, OverloadError, ReadOnlyError, ReproError
from repro.serving.service import ReputationService
from repro.serving.wal import feedback_to_wire

#: Cap on request bodies (16 MiB): a runaway client should get a 413, not
#: an out-of-memory server.
MAX_BODY_BYTES = 16 * 1024 * 1024


def request_failure_record(
    error: BaseException, *, method: str, path: str
) -> dict[str, object]:
    """Structured record of an unexpected (non-:class:`ReproError`) failure.

    This is the serving layer's R8 error emitter: every broad ``except``
    in the HTTP adapters funnels through it, so an internal bug surfaces
    as a parseable 500 body instead of a raw traceback or a silent drop.
    """
    return {
        "error": str(error) or error.__class__.__name__,
        "error_type": error.__class__.__name__,
        "method": method,
        "path": path,
        "status": 500,
    }


def _error_response(
    error: ReproError,
) -> tuple[int, dict[str, object], dict[str, str]]:
    """Map a library error to ``(status, body, extra_headers)``.

    Shared by both adapters so the parity tests can compare raw bodies.
    """
    if isinstance(error, OverloadError):
        status, retry = 429, error.retry_after
    elif isinstance(error, ReadOnlyError):
        status, retry = 503, error.retry_after
    else:
        return 400, {"error": str(error), "status": 400}, {}
    payload: dict[str, object] = {
        "error": str(error),
        "retry_after": retry,
        "status": status,
    }
    return status, payload, {"Retry-After": str(max(0, math.ceil(retry)))}


def _decode_body(raw: bytes) -> object:
    """Parse a request body exactly the same way in both adapters."""
    if not raw:
        return None
    if len(raw) > MAX_BODY_BYTES:
        raise ConfigurationError(f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"request body is not valid JSON: {error}") from error


def _parse_limit(value: str) -> int:
    try:
        return int(value)
    except ValueError as error:
        raise ConfigurationError("limit must be an integer") from error


def _parse_start(value: str) -> int:
    try:
        start = int(value)
    except ValueError as error:
        raise ConfigurationError("start must be an integer") from error
    if start < 0:
        raise ConfigurationError("start must be non-negative")
    return start


def _scores_payload(service: ReputationService, limit: int | None) -> dict[str, object]:
    """The ``/v1/scores`` response body (shared by both adapters)."""
    view = service.scores()
    if limit is None:
        scores: dict[str, float] = dict(view)
    else:
        scores = dict(view.top(limit))
    return {
        "watermark": service.watermark,
        "pending": service.pending,
        "default_score": view.default_score,
        "scores": scores,
        "ranking": view.ranking() if limit is None else [peer for peer, _ in view.top(limit)],
    }


def _evidence_payload(
    service: ReputationService, start: int, limit: int | None
) -> dict[str, object]:
    """The ``/v1/evidence`` response body (shared by both adapters)."""
    events = service.evidence(start, limit)
    return {
        "start": start,
        "count": len(events),
        "total": service.evidence_count,
        "events": [feedback_to_wire(event) for event in events],
    }


def _ingest_payload(
    service: ReputationService, body: object, *, idempotency_key: str | None = None
) -> dict[str, object]:
    """The ``/v1/feedback`` response body (shared by both adapters)."""
    if isinstance(body, dict) and "events" in body:
        events = body["events"]
        if not isinstance(events, list):
            raise ConfigurationError("'events' must be a list of feedback objects")
    elif isinstance(body, dict):
        events = [body]
    elif isinstance(body, list):
        events = body
    else:
        raise ConfigurationError("feedback body must be an object or a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ConfigurationError(f"feedback event #{index} must be a JSON object")
    receipt = service.ingest_many(events, idempotency_key=idempotency_key)
    return dict(asdict(receipt))


def _guarded_ingest(
    service: ReputationService,
    raw: bytes,
    *,
    client_id: str,
    idempotency_key: str | None,
) -> dict[str, object]:
    """Rate-limit, admit, parse and ingest one ``/v1/feedback`` request.

    The whole write path of both adapters: token bucket first (cheapest
    rejection), then a bounded admission slot around parse + ingest so
    saturation sheds with 429 instead of queueing without bound.
    """
    allowed, wait = service.rate_limiter.allow(client_id)
    if not allowed:
        raise OverloadError(
            f"rate limit exceeded for client {client_id!r}", retry_after=wait
        )
    with service.admission.admit(retry_after=service.config.retry_after):
        body = _decode_body(raw)
        return _ingest_payload(service, body, idempotency_key=idempotency_key)


def _snapshot_payload(
    service: ReputationService, body: object, default_path: str | None
) -> dict[str, object]:
    """The ``/v1/snapshot`` response body (shared by both adapters)."""
    path = default_path
    if isinstance(body, dict) and body.get("path") is not None:
        raw_path = body["path"]
        if not isinstance(raw_path, str) or not raw_path:
            raise ConfigurationError("snapshot 'path' must be a non-empty string")
        path = raw_path
    if path is None:
        raise ConfigurationError(
            "no snapshot path: POST {\"path\": ...} or start the server with --snapshot"
        )
    return service.snapshot(path)


class ReputationRequestHandler(BaseHTTPRequestHandler):
    """Routes v1 requests onto the server's service session."""

    #: Advertised in the ``Server`` response header.
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    server: ReputationHTTPServer

    def log_message(self, format: str, *args: object) -> None:
        """Per-request stderr logging is off; latency lives in /v1/health."""

    # -- plumbing ----------------------------------------------------------

    def _send_json(
        self,
        status: int,
        payload: dict[str, object],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name in sorted(headers or {}):
            self.send_header(name, (headers or {})[name])
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message, "status": status})

    def _send_repro_error(self, error: ReproError) -> None:
        status, payload, headers = _error_response(error)
        self._send_json(status, payload, headers)

    def _read_raw_body(self) -> bytes:
        raw_length = self.headers.get("Content-Length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError as error:
            raise ConfigurationError(
                f"invalid Content-Length header: {raw_length!r}"
            ) from error
        if length < 0:
            raise ConfigurationError(f"invalid Content-Length header: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return b""
        return self.rfile.read(length)

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id") or str(self.client_address[0])

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:
        url = urlparse(self.path)
        service = self.server.service
        try:
            if url.path == "/v1/health":
                self._send_json(200, service.health())
            elif url.path == "/v1/scores":
                query = parse_qs(url.query)
                limit: int | None = None
                if "limit" in query:
                    limit = _parse_limit(query["limit"][0])
                self._send_json(200, _scores_payload(service, limit))
            elif url.path == "/v1/evidence":
                query = parse_qs(url.query)
                start = _parse_start(query["start"][0]) if "start" in query else 0
                slice_limit = (
                    _parse_limit(query["limit"][0]) if "limit" in query else None
                )
                self._send_json(200, _evidence_payload(service, start, slice_limit))
            elif url.path.startswith("/v1/peers/"):
                peer_id = url.path[len("/v1/peers/") :]
                if not peer_id or "/" in peer_id:
                    self._send_error_json(404, f"no such route: {url.path}")
                    return
                summary = service.peer(peer_id)
                self._send_json(200 if summary.known else 404, dict(asdict(summary)))
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except ReproError as error:
            self._send_repro_error(error)
        except Exception as error:
            self._send_json(
                500, request_failure_record(error, method="GET", path=url.path)
            )

    def do_POST(self) -> None:
        url = urlparse(self.path)
        service = self.server.service
        try:
            if url.path == "/v1/feedback":
                payload = _guarded_ingest(
                    service,
                    self._read_raw_body(),
                    client_id=self._client_id(),
                    idempotency_key=self.headers.get("Idempotency-Key"),
                )
                self._send_json(200, payload)
            elif url.path == "/v1/snapshot":
                body = _decode_body(self._read_raw_body())
                payload = _snapshot_payload(service, body, self.server.snapshot_path)
                self._send_json(200, payload)
            else:
                self._send_error_json(404, f"no such route: {url.path}")
        except ReproError as error:
            self._send_repro_error(error)
        except Exception as error:
            self._send_json(
                500, request_failure_record(error, method="POST", path=url.path)
            )


class ReputationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service session."""

    #: Threads die with the process; the serve-gate SIGKILLs servers on
    #: purpose and must not hang on connection threads.
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ReputationService,
        *,
        snapshot_path: str | None = None,
    ) -> None:
        super().__init__(address, ReputationRequestHandler)
        self.service = service
        self.snapshot_path = snapshot_path


def create_http_server(
    service: ReputationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_path: str | None = None,
) -> ReputationHTTPServer:
    """Bind the stdlib adapter; ``port=0`` picks a free port (see
    ``server.server_address`` for the bound one)."""
    return ReputationHTTPServer((host, port), service, snapshot_path=snapshot_path)


def create_asgi_app(
    service: ReputationService, *, snapshot_path: str | None = None
) -> Any:
    """A FastAPI application over the same session and routes.

    Requires ``fastapi`` (deliberately not a dependency of this package);
    raises :class:`ConfigurationError` with installation guidance when it
    is missing.  Route semantics and response bodies match the stdlib
    adapter exactly — the adapters share the payload builders *and* the
    error mapping, and the parity tests compare raw bodies.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse
    except ImportError as error:  # pragma: no cover - exercised without fastapi
        raise ConfigurationError(
            "the ASGI adapter needs fastapi (pip install fastapi); "
            "use the stdlib adapter (create_http_server / repro-serve) otherwise"
        ) from error

    app = FastAPI(title="repro reputation service", version="1")

    def _json(
        payload: dict[str, object],
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> Any:
        # Sorted keys keep ASGI responses byte-identical to the stdlib
        # adapter for the same session state.
        return JSONResponse(
            content=json.loads(json.dumps(payload, sort_keys=True)),
            status_code=status,
            headers=headers,
        )

    def _error(error: ReproError) -> Any:
        status, payload, headers = _error_response(error)
        return _json(payload, status=status, headers=headers)

    def _asgi_client_id(request: Request) -> str:
        header = request.headers.get("X-Client-Id")
        if header:
            return header
        return request.client.host if request.client is not None else "unknown"

    @app.get("/v1/health")
    def health() -> Any:
        return _json(service.health())

    @app.get("/v1/scores")
    def scores(limit: str | None = None) -> Any:
        # ``limit`` parses by hand (not via FastAPI coercion) so a bad
        # value yields the same 400 body as the stdlib adapter, not a 422.
        try:
            parsed = None if limit is None else _parse_limit(limit)
            return _json(_scores_payload(service, parsed))
        except ReproError as error:
            return _error(error)

    @app.get("/v1/evidence")
    def evidence(start: str | None = None, limit: str | None = None) -> Any:
        try:
            parsed_start = 0 if start is None else _parse_start(start)
            parsed_limit = None if limit is None else _parse_limit(limit)
            return _json(_evidence_payload(service, parsed_start, parsed_limit))
        except ReproError as error:
            return _error(error)

    @app.get("/v1/peers/{peer_id}")
    def peer(peer_id: str) -> Any:
        summary = service.peer(peer_id)
        return _json(dict(asdict(summary)), status=200 if summary.known else 404)

    @app.post("/v1/feedback")
    async def feedback(request: Request) -> Any:
        try:
            payload = _guarded_ingest(
                service,
                await request.body(),
                client_id=_asgi_client_id(request),
                idempotency_key=request.headers.get("Idempotency-Key"),
            )
            return _json(payload)
        except ReproError as error:
            return _error(error)
        except Exception as error:
            return _json(
                request_failure_record(error, method="POST", path="/v1/feedback"),
                status=500,
            )

    @app.post("/v1/snapshot")
    async def snapshot(request: Request) -> Any:
        try:
            body = _decode_body(await request.body())
            return _json(_snapshot_payload(service, body, snapshot_path))
        except ReproError as error:
            return _error(error)
        except Exception as error:
            return _json(
                request_failure_record(error, method="POST", path="/v1/snapshot"),
                status=500,
            )

    return app

"""Load generation for the serving layer: replay scenario traces as traffic.

The serving claim is benchmarked against *realistic* evidence streams, not
synthetic noise: :func:`build_trace` runs a catalog scenario (the same
deterministic pipeline every experiment uses) and extracts the disclosed
feedback stream — every report an actual simulated peer chose to share —
as a list of JSON-ready ingestion events.  :func:`replay` then drives a
running server with that trace over real HTTP: concurrent client workers
POST event batches to ``/v1/feedback`` and interleave ``GET /v1/scores`` /
``GET /v1/peers/{id}`` queries, measuring client-observed latencies.

``benchmarks/bench_serve.py`` builds its throughput/latency numbers and the
CI serve-gate's smoke drill on these helpers; the kill+restart byte-identity
check replays the same trace through :func:`ingest_events` sequentially
(concurrency is a throughput tool — equivalence drills need a deterministic
ingest order).

All traffic — sequential and concurrent — goes through
:class:`~repro.serving.client.ResilientClient`, so the benchmarks exercise
the real production path: per-request timeouts, seeded-jitter backoff on
429/503 backpressure, circuit breaking on a dead server, and idempotency
keys that make retries exactly-once.  :func:`request_json` remains as the
raw single-shot primitive for probes that must *not* retry.
"""

from __future__ import annotations

import http.client
import json
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.scenarios.runner import ScenarioRunConfig, run_scenario
from repro.serving import sla
from repro.serving.client import ClientRetryPolicy, ResilientClient
from repro.serving.sla import LatencyTracker


def build_trace(
    scenario: str = "collusion-ring",
    *,
    n_users: int = 30,
    rounds: int = 30,
    seed: int = 0,
    backend: str = "auto",
) -> list[dict[str, object]]:
    """The disclosed-feedback stream of one scenario run, as ingest events.

    Deterministic in all arguments (the scenario pipeline draws only from
    seed-derived streams), so two calls — in different processes, on
    different backends — produce the identical event list.  The simulated
    *mechanism* is irrelevant to the disclosed stream's content ordering
    only insofar as provider selection reacts to scores; running with the
    ``"none"`` baseline keeps the trace mechanism-neutral.
    """
    result = run_scenario(
        ScenarioRunConfig(
            scenario=scenario,
            mechanism="none",
            n_users=n_users,
            rounds=rounds,
            seed=seed,
            backend=backend,
        )
    )
    events: list[dict[str, object]] = []
    for feedback in result.simulation.disclosed_feedbacks:
        events.append(
            {
                "subject": feedback.subject,
                "rating": feedback.rating,
                "rater": feedback.rater,
                "time": feedback.time,
                "transaction_id": feedback.transaction_id,
            }
        )
    return events


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: object | None = None,
    *,
    timeout: float = 10.0,
) -> tuple[int, dict[str, object], bytes]:
    """One HTTP request; returns ``(status, parsed payload, raw bytes)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        status = response.status
    finally:
        connection.close()
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = {}
    if not isinstance(parsed, dict):
        parsed = {"payload": parsed}
    return status, parsed, raw


def ingest_events(
    host: str,
    port: int,
    events: list[dict[str, object]],
    *,
    batch_size: int = 32,
    timeout: float = 10.0,
    client: ResilientClient | None = None,
) -> int:
    """POST a trace sequentially in order; returns accepted-event count.

    The deterministic-ingest path: one client, one batch in flight, arrival
    order exactly the trace order — what the restart byte-identity drill
    needs on both sides of the comparison.  Pass an explicit ``client`` to
    keep its acked-receipt record across calls (the crash drills check
    every acked event survives recovery); a default resilient client is
    built otherwise.
    """
    if client is None:
        client = ResilientClient(
            host,
            port,
            client_id="loadgen",
            policy=ClientRetryPolicy(timeout=timeout),
        )
    accepted = 0
    for start in range(0, len(events), max(batch_size, 1)):
        batch = events[start : start + max(batch_size, 1)]
        receipt = client.ingest(batch)
        value = receipt.get("accepted", 0)
        accepted += value if isinstance(value, int) and not isinstance(value, bool) else 0
    return accepted


@dataclass
class ReplayStats:
    """What one concurrent replay measured (client-side view)."""

    events: int
    batches: int
    clients: int
    wall_seconds: float
    ingest_events_per_sec: float
    queries: int
    query_p50_ms: float
    query_p99_ms: float
    errors: int
    #: Client-side retry sleeps taken across all workers.
    retries: int = 0
    #: 429/503 backpressure responses absorbed across all workers.
    backpressure: int = 0
    #: Final ``/v1/health`` body (server-side counters and SLA summary).
    health: dict[str, object] = field(default_factory=dict)


def replay(
    host: str,
    port: int,
    events: list[dict[str, object]],
    *,
    clients: int = 4,
    batch_size: int = 32,
    query_every: int = 4,
    timeout: float = 10.0,
) -> ReplayStats:
    """Drive a server with a trace from ``clients`` concurrent workers.

    The trace is split into contiguous shards (one per worker); each worker
    drives a :class:`~repro.serving.client.ResilientClient` (id
    ``worker-{i}``, jitter seed ``i`` — deterministic backoff per worker),
    POSTs its shard in ``batch_size`` event batches and issues one
    ``/v1/scores?limit=10`` plus one ``/v1/peers/{id}`` query every
    ``query_every`` batches, timing each query.  Returns throughput,
    client-observed query percentiles, retry/backpressure totals and the
    server's own final health report.  A batch that still fails after the
    client's full retry budget (including an open circuit) counts as one
    error; 429/503 responses absorbed by retries are *not* errors.
    Concurrent arrival order is nondeterministic by nature — use
    :func:`ingest_events` when equivalence matters.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    shard_size = (len(events) + clients - 1) // max(clients, 1)
    shards = [
        events[index : index + shard_size] for index in range(0, len(events), shard_size)
    ] or [[]]
    query_latency = LatencyTracker(window=65536)
    lock = threading.Lock()
    errors = [0]
    queries = [0]
    batches = [0]
    retries = [0]
    backpressure = [0]

    def worker(index: int, shard: list[dict[str, object]]) -> None:
        client = ResilientClient(
            host,
            port,
            client_id=f"worker-{index}",
            policy=ClientRetryPolicy(timeout=timeout, seed=index),
        )
        sent_batches = 0
        for start in range(0, len(shard), max(batch_size, 1)):
            batch = shard[start : start + max(batch_size, 1)]
            sent_batches += 1
            try:
                client.ingest(batch)
            except ReproError:
                with lock:
                    errors[0] += 1
            if query_every and sent_batches % query_every == 0:
                subject = batch[-1].get("subject", "")
                for path in ("/v1/scores?limit=10", f"/v1/peers/{subject}"):
                    begin = sla.clock()
                    try:
                        status, _, _ = client.request("GET", path)
                    except ReproError:
                        status = -1
                    elapsed = sla.clock() - begin
                    with lock:
                        queries[0] += 1
                        query_latency.observe(elapsed)
                        # Unknown peers answer 404 by design; anything else
                        # non-2xx is a replay error.
                        if status not in (200, 404):
                            errors[0] += 1
        with lock:
            batches[0] += sent_batches
            retries[0] += client.retries
            backpressure[0] += client.backpressure_responses

    threads = [
        threading.Thread(target=worker, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    start_time = sla.clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = sla.clock() - start_time

    _, health, _ = request_json(host, port, "GET", "/v1/health", timeout=timeout)
    return ReplayStats(
        events=len(events),
        batches=batches[0],
        clients=len(shards),
        wall_seconds=wall,
        ingest_events_per_sec=len(events) / wall if wall > 0 else 0.0,
        queries=queries[0],
        query_p50_ms=1000.0 * query_latency.percentile(50.0),
        query_p99_ms=1000.0 * query_latency.percentile(99.0),
        errors=errors[0],
        retries=retries[0],
        backpressure=backpressure[0],
        health=health,
    )


def scores_body(host: str, port: int, *, timeout: float = 10.0) -> bytes:
    """The raw ``/v1/scores`` response bytes (the restart drill compares
    these bytewise between an interrupted and an uninterrupted session)."""
    status, _, raw = request_json(host, port, "GET", "/v1/scores", timeout=timeout)
    if status != 200:
        raise RuntimeError(f"scores query failed with HTTP {status}")
    return raw

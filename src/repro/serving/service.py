"""The transport-agnostic reputation service session.

:class:`ReputationService` stands the offline reputation engine up as a
long-lived session: it owns one :class:`~repro.reputation.base.ReputationSystem`
plus an append-only evidence log, accepts streaming feedback ingestion, and
serves score/rank queries off the *current watermark* — the published
:class:`~repro.reputation.base.ScoreView` of the last refresh.  Ingestion is
batched into the PR-5 incremental-refresh path: every accepted event lands in
the mechanism's evidence store immediately (an O(1) append the incremental
pair-ledger folds later), and scores are re-published once per
``refresh_every`` events instead of per event, so queries between refreshes
are dictionary lookups.

Restart safety layers two mechanisms.  :meth:`snapshot` writes a versioned,
SHA-256-checksummed checkpoint file (kind ``"service"``, now with a
``verify-records``-compatible sidecar) holding the full session, and
:meth:`ReputationService.restore` rehydrates it.  On top of that the PR-10
write-ahead log (:mod:`repro.serving.wal`) makes *acked mean durable*: when
a WAL is attached, every ingest batch is fsynced to the log before the call
returns, and :meth:`ReputationService.recover` = restore the latest snapshot
+ replay the WAL past its watermark — byte-identical to a session that never
crashed.  Snapshots double as the WAL's compaction watermark: a background
maintenance thread drops batches the newest snapshot already covers.

Overload protection: ingestion is gated by a bounded
:class:`AdmissionGate` (shed with HTTP 429 + ``Retry-After`` once
``max_pending_requests`` are in flight) and a per-client token-bucket
:class:`ClientRateLimiter`; a health state machine (``ok`` | ``degraded`` |
``read_only``) is surfaced via :meth:`health`.  In ``read_only`` mode
(entered automatically when a WAL append fails, or explicitly via
:meth:`enter_read_only`) writes raise :class:`~repro.errors.ReadOnlyError`
(HTTP 503) while reads keep answering from the stale watermark.
Idempotency keys give retrying clients exactly-once ingestion: a batch
re-sent under an acked key returns the original receipt (marked
``duplicate``) instead of double-ingesting.

Thread safety: one re-entrant lock serializes every state-touching operation,
so the threaded HTTP adapter can fan requests in without coordination.
Latency accounting is strictly observational (see :mod:`repro.serving.sla`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro import faults
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InjectedFault,
    IntegrityError,
    OverloadError,
    ReadOnlyError,
)
from repro.experiments.results import write_checksum_sidecar
from repro.reputation import REPUTATION_FACTORIES, make_reputation_system
from repro.reputation.base import ReputationSystem, ScoreView
from repro.serving.sla import OperationClock, clock as sla_clock
from repro.serving.wal import WalEntry, WriteAheadLog, config_digest
from repro.simulation.checkpoint import read_checkpoint, write_checkpoint
from repro.simulation.transaction import Feedback

#: Checkpoint ``kind`` tag for service snapshots.
SERVICE_CHECKPOINT_KIND = "service"

#: Operation families the service tracks latencies for.
SERVICE_OPERATIONS = ("ingest", "query", "refresh", "snapshot")

#: Health states the service moves through (see :meth:`ReputationService.health`).
SERVICE_STATES = ("ok", "degraded", "read_only")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a reputation service session is parameterized on."""

    #: Registered mechanism name (``repro.reputation.REPUTATION_FACTORIES``).
    mechanism: str = "beta"
    #: Compute backend request ("auto", "python" or "vectorized").
    backend: str = "auto"
    #: Publish fresh scores every N accepted events (1 = per event).
    refresh_every: int = 64
    #: Score served for peers without evidence.
    default_score: float = 0.5
    #: Optional per-subject evidence cap forwarded to the mechanism.
    max_evidence_per_subject: int | None = None
    #: Ring-buffer window of the per-operation latency trackers.
    latency_window: int = 4096
    #: Concurrently-admitted ingest requests before shedding with 429.
    max_pending_requests: int = 64
    #: Sustained per-client request rate (requests/second); ``None`` disables.
    client_rate: float | None = None
    #: Token-bucket burst size per client.
    client_burst: int = 8
    #: Acked idempotency keys remembered for duplicate suppression.
    dedup_window: int = 1024
    #: ``Retry-After`` hint (seconds) returned with 429/503 responses.
    retry_after: float = 0.1

    def __post_init__(self) -> None:
        if self.mechanism not in REPUTATION_FACTORIES:
            raise ConfigurationError(
                f"unknown mechanism {self.mechanism!r}; expected one of "
                f"{sorted(REPUTATION_FACTORIES)}"
            )
        if self.refresh_every < 1:
            raise ConfigurationError("refresh_every must be at least 1")
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be at least 1")
        if self.max_pending_requests < 1:
            raise ConfigurationError("max_pending_requests must be at least 1")
        if self.client_rate is not None and not self.client_rate > 0:
            raise ConfigurationError("client_rate must be positive (or None)")
        if self.client_burst < 1:
            raise ConfigurationError("client_burst must be at least 1")
        if self.dedup_window < 0:
            raise ConfigurationError("dedup_window must be non-negative")
        if self.retry_after < 0:
            raise ConfigurationError("retry_after must be non-negative")

    def wal_identity(self) -> dict[str, object]:
        """The score-relevant config subset a WAL header pins.

        Replay only depends on what changes the *scores* an event stream
        produces; transport/backpressure knobs (backend choice included —
        backends are byte-identical by contract) stay out so an operator
        can retune them across restarts without orphaning the log.
        """
        return {
            "default_score": self.default_score,
            "max_evidence_per_subject": self.max_evidence_per_subject,
            "mechanism": self.mechanism,
            "refresh_every": self.refresh_every,
        }


@dataclass(frozen=True)
class IngestReceipt:
    """What one ingest call tells the client."""

    #: Events accepted by this call.
    accepted: int
    #: Total events accepted over the session's lifetime.
    ingested: int
    #: Events folded into the currently published scores.
    watermark: int
    #: Whether this call crossed a refresh boundary and republished scores.
    refreshed: bool
    #: Total events the service had ingested *before* this call (WAL seq).
    seq: int = 0
    #: Whether this receipt was replayed from the idempotency dedup window.
    duplicate: bool = False


@dataclass(frozen=True)
class PeerSummary:
    """One peer's served reputation state at a watermark."""

    peer_id: str
    score: float
    #: 1-based position in the ranking; ``None`` for unknown peers.
    rank: int | None
    #: Whether the published scores carry this peer at all.
    known: bool
    #: Watermark (events folded) the summary was served at.
    watermark: int


@dataclass
class ServiceSnapshot:
    """Checkpoint payload of a paused service session.

    The mechanism travels with its whole gathering state (feedback store,
    incremental pair-ledger folds, cached scores), so a restored service
    continues the incremental-refresh path exactly where it stopped.
    """

    config: ServiceConfig
    system: ReputationSystem
    evidence: list[Feedback]
    ingested: int
    watermark: int
    refreshes: int
    published: dict[str, float] = field(default_factory=dict)


def feedback_from_payload(payload: Mapping[str, object], *, sequence: int) -> Feedback:
    """Build a :class:`Feedback` from a client JSON object.

    Required fields: ``subject`` (peer id) and ``rating`` (number in
    ``[0, 1]``).  Optional: ``rater`` (omit or ``null`` for anonymous
    reports), ``time`` and ``transaction_id`` (both default to the ingest
    sequence number, which preserves arrival order for forgetting-weighted
    mechanisms).  Unknown fields are rejected — a silently dropped typo in
    a feedback field would corrupt evidence without any error surfacing.
    """
    allowed = {"subject", "rating", "rater", "time", "transaction_id"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ConfigurationError(f"unknown feedback fields: {unknown}")
    subject = payload.get("subject")
    if not isinstance(subject, str) or not subject:
        raise ConfigurationError("feedback needs a non-empty string 'subject'")
    rating = payload.get("rating")
    if isinstance(rating, bool) or not isinstance(rating, (int, float)):
        raise ConfigurationError("feedback needs a numeric 'rating' in [0, 1]")
    rater = payload.get("rater")
    if rater is not None and not isinstance(rater, str):
        raise ConfigurationError("'rater' must be a string or null")
    time = payload.get("time", sequence)
    if isinstance(time, bool) or not isinstance(time, int):
        raise ConfigurationError("'time' must be an integer")
    transaction_id = payload.get("transaction_id", sequence)
    if isinstance(transaction_id, bool) or not isinstance(transaction_id, int):
        raise ConfigurationError("'transaction_id' must be an integer")
    return Feedback(
        transaction_id=transaction_id,
        time=time,
        subject=subject,
        rating=float(rating),
        rater=rater,
    )


class AdmissionGate:
    """Bounded admission control for the write path.

    At most ``capacity`` requests may be inside :meth:`admit` at once;
    everything beyond that is *shed* immediately with
    :class:`~repro.errors.OverloadError` (HTTP 429) instead of queueing
    unboundedly — the memory-stays-bounded half of graceful degradation.
    The ``http.admit`` fault site can force a shed (action ``degrade`` or
    ``corrupt``) regardless of depth, which is how the overload drills
    stay deterministic.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._lock = threading.Lock()
        self._depth = 0
        self._high_water = 0
        self._shed = 0

    @contextmanager
    def admit(self, *, retry_after: float = 0.0) -> Iterator[None]:
        """Hold one admission slot for the duration of the ``with`` body."""
        action = faults.fire("http.admit", depth=self.depth)
        with self._lock:
            if action is not None or self._depth >= self._capacity:
                self._shed += 1
                raise OverloadError(
                    f"admission queue full ({self._capacity} requests in flight)",
                    retry_after=retry_after,
                )
            self._depth += 1
            if self._depth > self._high_water:
                self._high_water = self._depth
        try:
            yield
        finally:
            with self._lock:
                self._depth -= 1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def high_water(self) -> int:
        """Deepest concurrent admission seen over the session."""
        with self._lock:
            return self._high_water

    @property
    def shed_total(self) -> int:
        """Requests rejected at the gate over the session."""
        with self._lock:
            return self._shed

    def summary(self) -> dict[str, int]:
        """Counters for :meth:`ReputationService.health` / the bench."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "depth": self._depth,
                "high_water": self._high_water,
                "shed": self._shed,
            }


class ClientRateLimiter:
    """Per-client token-bucket rate limiting.

    Each client id owns a bucket of ``burst`` tokens refilled at ``rate``
    tokens/second; a request costs one token, and an empty bucket means
    shed (HTTP 429) with a computed retry hint.  ``rate=None`` disables
    limiting entirely.  Buckets are LRU-capped at ``max_clients`` so an
    open deployment cannot grow memory without bound.  Time comes from
    :func:`repro.serving.sla.clock` (injectable for deterministic tests).
    """

    def __init__(
        self,
        rate: float | None,
        burst: int,
        *,
        max_clients: int = 1024,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._rate = rate
        self._burst = float(burst)
        self._max_clients = max_clients
        self._clock = sla_clock if clock is None else clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self._limited = 0

    def allow(self, client_id: str) -> tuple[bool, float]:
        """Spend one token; returns ``(allowed, retry_after_seconds)``."""
        if self._rate is None:
            return True, 0.0
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.pop(client_id, (self._burst, now))
            tokens = min(self._burst, tokens + (now - last) * self._rate)
            if tokens >= 1.0:
                self._buckets[client_id] = (tokens - 1.0, now)
                allowed, wait = True, 0.0
            else:
                self._buckets[client_id] = (tokens, now)
                self._limited += 1
                allowed, wait = False, (1.0 - tokens) / self._rate
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
            return allowed, wait

    @property
    def limited_total(self) -> int:
        """Requests rejected by rate limiting over the session."""
        with self._lock:
            return self._limited


def _replayed_receipt(entry: WalEntry, refresh_every: int) -> IngestReceipt:
    """Reconstruct the receipt a pre-snapshot WAL batch was acked with.

    Deterministic from the batch bounds alone: refreshes fire at every
    ``refresh_every`` crossing, so the watermark after the batch is the
    last multiple at or below its end.  (Explicit ``refresh()`` calls
    between batches can make the historical watermark differ — the dedup
    window only needs ``accepted``/``seq``/``duplicate`` to be exact.)
    """
    return IngestReceipt(
        accepted=len(entry.events),
        ingested=entry.end,
        watermark=(entry.end // refresh_every) * refresh_every,
        refreshed=(entry.end // refresh_every) != (entry.seq // refresh_every),
        seq=entry.seq,
    )


class ReputationService:
    """A live reputation-serving session over one mechanism.

    See the module docstring for the architecture.  All public methods are
    thread-safe; none of them block on anything but the session lock.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        wal: WriteAheadLog | None = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = ServiceConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ConfigurationError("pass either a config object or keyword overrides")
        self.config = config
        self._system = make_reputation_system(
            config.mechanism,
            default_score=config.default_score,
            max_evidence_per_subject=config.max_evidence_per_subject,
            backend=config.backend,
        )
        self._evidence: list[Feedback] = []
        self._ingested = 0
        self._watermark = 0
        self._refreshes = 0
        self._published = ScoreView(default_score=config.default_score)
        self._ranking: list[str] = []
        self._lock = threading.RLock()
        self._clock = OperationClock(SERVICE_OPERATIONS, window=config.latency_window)
        self._wal = wal
        self._snapshotted = 0
        self._read_only_reason: str | None = None
        self._dedup: OrderedDict[str, IngestReceipt] = OrderedDict()
        self._gate = AdmissionGate(config.max_pending_requests)
        self._limiter = ClientRateLimiter(config.client_rate, config.client_burst)
        self._compact_event = threading.Event()
        self._closed = threading.Event()
        self._maintenance: threading.Thread | None = None

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self,
        event: Feedback | Mapping[str, object],
        *,
        idempotency_key: str | None = None,
    ) -> IngestReceipt:
        """Accept one feedback event (see :meth:`ingest_many`)."""
        return self.ingest_many((event,), idempotency_key=idempotency_key)

    def ingest_many(
        self,
        events: Iterable[Feedback | Mapping[str, object]],
        *,
        idempotency_key: str | None = None,
    ) -> IngestReceipt:
        """Accept a batch of feedback events in order.

        The batch is validated up front, durably appended to the WAL (when
        one is attached) and only then folded — so *acked means durable*:
        either the whole batch is logged and acknowledged, or the call
        raises and nothing was ingested.  Scores are republished whenever
        the accepted count crosses a ``refresh_every`` boundary, so one
        large batch may refresh several times (the same watermarks a
        one-by-one stream would hit — restart byte-identity depends on
        that).

        ``idempotency_key`` makes retries safe: a batch re-sent under a
        key that was already acked (within ``config.dedup_window`` keys)
        returns the original receipt marked ``duplicate=True`` instead of
        ingesting twice.  In read-only mode the call raises
        :class:`~repro.errors.ReadOnlyError` without touching any state.
        """
        with self._lock, self._clock.timed("ingest"):
            if self._read_only_reason is not None:
                raise ReadOnlyError(
                    f"service is read-only: {self._read_only_reason}",
                    retry_after=self.config.retry_after,
                )
            if idempotency_key is not None:
                cached = self._dedup.get(idempotency_key)
                if cached is not None:
                    return replace(cached, duplicate=True)
            batch: list[Feedback] = []
            for offset, event in enumerate(events):
                if isinstance(event, Feedback):
                    batch.append(event)
                else:
                    batch.append(
                        feedback_from_payload(event, sequence=self._ingested + offset)
                    )
            return self._ingest_batch(batch, key=idempotency_key, write_wal=True)

    def _ingest_batch(
        self, batch: list[Feedback], *, key: str | None, write_wal: bool
    ) -> IngestReceipt:
        """Log, fold and ack one validated batch (caller holds the lock)."""
        seq = self._ingested
        if write_wal and self._wal is not None:
            try:
                self._wal.append(batch, seq=seq, key=key)
            except (OSError, InjectedFault) as error:
                # Durability is gone: refuse further writes rather than
                # acking events a crash would silently lose.
                self._read_only_reason = f"WAL append failed: {error}"
                raise ReadOnlyError(
                    f"service is read-only: {self._read_only_reason}",
                    retry_after=self.config.retry_after,
                ) from error
        refreshed = False
        for feedback in batch:
            self._evidence.append(feedback)
            self._system.record_feedback(feedback)
            self._ingested += 1
            if self._ingested % self.config.refresh_every == 0:
                self._publish()
                refreshed = True
        receipt = IngestReceipt(
            accepted=len(batch),
            ingested=self._ingested,
            watermark=self._watermark,
            refreshed=refreshed,
            seq=seq,
        )
        if key is not None:
            self._remember(key, receipt)
        return receipt

    def _remember(self, key: str, receipt: IngestReceipt) -> None:
        """Park an acked receipt in the bounded idempotency window."""
        if self.config.dedup_window == 0:
            return
        self._dedup[key] = receipt
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.config.dedup_window:
            self._dedup.popitem(last=False)

    def _publish(self) -> None:
        """Refresh the mechanism and publish the new score watermark."""
        with self._clock.timed("refresh"):
            self._published = self._system.refresh()
            self._ranking = self._published.ranking()
            self._watermark = self._ingested
            self._refreshes += 1

    def refresh(self) -> ScoreView:
        """Force a refresh now (flushes any pending events) and publish."""
        with self._lock:
            self._publish()
            return self._published

    # -- overload / health -------------------------------------------------

    @property
    def admission(self) -> AdmissionGate:
        """The bounded admission gate HTTP adapters wrap ingestion in."""
        return self._gate

    @property
    def rate_limiter(self) -> ClientRateLimiter:
        """The per-client token-bucket limiter HTTP adapters consult."""
        return self._limiter

    @property
    def state(self) -> str:
        """Health state: ``ok`` | ``degraded`` (gate half full) | ``read_only``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._read_only_reason is not None:
            return "read_only"
        if self._gate.depth * 2 >= self._gate.capacity:
            return "degraded"
        return "ok"

    @property
    def read_only_reason(self) -> str | None:
        """Why writes are refused (``None`` while writable)."""
        with self._lock:
            return self._read_only_reason

    def enter_read_only(self, reason: str) -> None:
        """Refuse writes from now on; reads keep serving the stale watermark."""
        with self._lock:
            self._read_only_reason = reason

    def resume_writes(self) -> None:
        """Leave read-only mode (operator action after resolving the cause)."""
        with self._lock:
            self._read_only_reason = None

    # -- queries -----------------------------------------------------------

    def scores(self) -> ScoreView:
        """The published scores at the current watermark (no refresh)."""
        with self._lock, self._clock.timed("query"):
            return ScoreView(self._published, default_score=self.config.default_score)

    def ranking(self, limit: int | None = None) -> list[str]:
        """Peer ids from most to least reputable at the current watermark."""
        with self._lock, self._clock.timed("query"):
            ranking = self._ranking
            return list(ranking if limit is None else ranking[: max(limit, 0)])

    def peer(self, peer_id: str) -> PeerSummary:
        """One peer's served score and rank at the current watermark."""
        with self._lock, self._clock.timed("query"):
            known = peer_id in self._published
            rank = self._ranking.index(peer_id) + 1 if known else None
            return PeerSummary(
                peer_id=peer_id,
                score=self._published.score_of(peer_id),
                rank=rank,
                known=known,
                watermark=self._watermark,
            )

    @property
    def watermark(self) -> int:
        """Events folded into the published scores."""
        with self._lock:
            return self._watermark

    @property
    def pending(self) -> int:
        """Accepted events not yet reflected in the published scores."""
        with self._lock:
            return self._ingested - self._watermark

    def health(self) -> dict[str, object]:
        """Liveness plus the session counters and SLA latency summary."""
        with self._lock:
            wal = self._wal
            wal_summary: dict[str, object] | None = None
            if wal is not None:
                wal_summary = {
                    "entries": wal.entry_count,
                    "events": wal.event_count,
                    "path": wal.path,
                }
            return {
                "status": self._state_locked(),
                "mechanism": self.config.mechanism,
                "backend": self._system.resolved_backend,
                "ingested": self._ingested,
                "watermark": self._watermark,
                "pending": self._ingested - self._watermark,
                "refreshes": self._refreshes,
                "known_peers": len(self._published),
                "refresh_every": self.config.refresh_every,
                "latency": self._clock.summary(),
                "admission": self._gate.summary(),
                "rate_limited": self._limiter.limited_total,
                "read_only_reason": self._read_only_reason,
                "dedup_keys": len(self._dedup),
                "wal": wal_summary,
            }

    # -- snapshot / restore / recovery -------------------------------------

    def snapshot(self, path: str) -> dict[str, object]:
        """Persist the full session to a checkpoint file.

        Atomic, versioned and checksummed (see
        :mod:`repro.simulation.checkpoint`), with a SHA-256 sidecar so
        ``verify-records`` can audit it; returns the snapshot's vitals for
        the caller (the HTTP adapter echoes them to the client).  With a
        WAL attached, the snapshot also advances the compaction watermark
        and nudges the background maintenance thread to drop the batches
        it covers.
        """
        with self._lock, self._clock.timed("snapshot"):
            payload = ServiceSnapshot(
                config=self.config,
                system=self._system,
                evidence=self._evidence,
                ingested=self._ingested,
                watermark=self._watermark,
                refreshes=self._refreshes,
                published=dict(self._published),
            )
            write_checkpoint(
                path, SERVICE_CHECKPOINT_KIND, payload, round_index=self._watermark
            )
            sidecar = write_checksum_sidecar(path)
            self._snapshotted = self._ingested
            vitals = {
                "path": path,
                "ingested": self._ingested,
                "watermark": self._watermark,
                "events": len(self._evidence),
                "sidecar": sidecar,
            }
        if self._wal is not None:
            self._schedule_compaction()
        return vitals

    @classmethod
    def restore(cls, path: str) -> ReputationService:
        """Rehydrate a session from a :meth:`snapshot` file.

        The restored service continues exactly where the snapshot paused:
        same counters, same published scores, same incremental-refresh
        state — feeding it the remaining event stream yields byte-identical
        final scores to a never-interrupted session.
        """
        _, payload = read_checkpoint(path, expected_kind=SERVICE_CHECKPOINT_KIND)
        if not isinstance(payload, ServiceSnapshot):
            raise CheckpointError(f"{path}: payload is not a service snapshot")
        service = cls(payload.config)
        service._system = payload.system
        service._evidence = payload.evidence
        service._ingested = payload.ingested
        service._watermark = payload.watermark
        service._refreshes = payload.refreshes
        service._published = ScoreView(
            payload.published, default_score=payload.config.default_score
        )
        service._ranking = service._published.ranking()
        service._snapshotted = payload.ingested
        return service

    @classmethod
    def recover(
        cls,
        *,
        wal_path: str,
        snapshot_path: str | None = None,
        config: ServiceConfig | None = None,
        wal_fsync: bool = True,
    ) -> ReputationService:
        """Boot a durable session: latest snapshot + WAL replay.

        Restores ``snapshot_path`` when given (it must exist and match
        ``config`` if both are supplied), replays every intact WAL batch
        past the snapshot's ingested count, re-registers their idempotency
        keys (so a client retrying across the crash still never
        double-ingests), attaches the WAL for subsequent ingests, and
        compacts away the batches the snapshot already covers.  The result
        is byte-identical to a session that never went down — every acked
        event survives; only unacked (torn-tail) batches are lost, and
        those the resilient client re-sends.
        """
        if snapshot_path is not None:
            service = cls.restore(snapshot_path)
            if config is not None and config != service.config:
                raise ConfigurationError(
                    "recover(): explicit config conflicts with the snapshot's"
                )
        else:
            service = cls(config)
        wal, entries, _ = WriteAheadLog.open(
            wal_path,
            config_sha256=config_digest(service.config.wal_identity()),
            fsync=wal_fsync,
        )
        with service._lock:
            covered = service._ingested
            replayed = 0
            for entry in entries:
                if entry.end <= covered:
                    if entry.key is not None:
                        service._remember(
                            entry.key,
                            _replayed_receipt(entry, service.config.refresh_every),
                        )
                    continue
                if entry.seq != service._ingested:
                    raise IntegrityError(
                        f"{wal_path}: WAL batch seq={entry.seq} does not line up "
                        f"with the recovered session at {service._ingested} "
                        "ingested events — acked evidence missing"
                    )
                service._ingest_batch(list(entry.events), key=entry.key, write_wal=False)
                replayed += 1
            service._wal = wal
            service._snapshotted = covered
        if covered > 0:
            wal.compact(covered)
        return service

    # -- WAL maintenance ---------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log (``None`` for ephemeral sessions)."""
        return self._wal

    def compact_wal(self) -> int:
        """Synchronously drop WAL batches the newest snapshot covers.

        Returns the number of batches dropped; the background maintenance
        thread calls this after every snapshot, and tests call it directly
        for determinism.
        """
        with self._lock:
            wal = self._wal
            upto = self._snapshotted
        if wal is None or upto <= 0:
            return 0
        return wal.compact(upto)

    def _schedule_compaction(self) -> None:
        if self._maintenance is None:
            self._maintenance = threading.Thread(
                target=self._maintenance_loop,
                name="repro-serve-wal-compactor",
                daemon=True,
            )
            self._maintenance.start()
        self._compact_event.set()

    def _maintenance_loop(self) -> None:
        while True:
            self._compact_event.wait()
            if self._closed.is_set():
                return
            self._compact_event.clear()
            self.compact_wal()

    def close(self) -> None:
        """Stop background maintenance and close the WAL handle."""
        self._closed.set()
        self._compact_event.set()
        thread = self._maintenance
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            if self._wal is not None:
                self._wal.close()

    # -- evidence log ------------------------------------------------------

    @property
    def evidence_count(self) -> int:
        """Events in the append-only evidence log."""
        with self._lock:
            return len(self._evidence)

    def evidence(self, start: int = 0, limit: int | None = None) -> list[Feedback]:
        """A slice of the append-only evidence log (audit/replay access)."""
        with self._lock:
            end = None if limit is None else start + max(limit, 0)
            return list(self._evidence[start:end])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReputationService mechanism={self.config.mechanism} "
            f"ingested={self._ingested} watermark={self._watermark}>"
        )

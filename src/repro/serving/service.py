"""The transport-agnostic reputation service session.

:class:`ReputationService` stands the offline reputation engine up as a
long-lived session: it owns one :class:`~repro.reputation.base.ReputationSystem`
plus an append-only evidence log, accepts streaming feedback ingestion, and
serves score/rank queries off the *current watermark* — the published
:class:`~repro.reputation.base.ScoreView` of the last refresh.  Ingestion is
batched into the PR-5 incremental-refresh path: every accepted event lands in
the mechanism's evidence store immediately (an O(1) append the incremental
pair-ledger folds later), and scores are re-published once per
``refresh_every`` events instead of per event, so queries between refreshes
are dictionary lookups.

Restart safety reuses the PR-8 checkpoint machinery: :meth:`snapshot` writes
a versioned, SHA-256-checksummed checkpoint file (kind ``"service"``) holding
the full session — config, mechanism with its evidence store and incremental
fold state, evidence log, counters and the published scores — and
:meth:`ReputationService.restore` rehydrates it.  A service restored
mid-stream and fed the remaining events publishes *byte-identical* final
scores to an uninterrupted session; ``tests/serving`` and the CI serve-gate
enforce this.

Thread safety: one re-entrant lock serializes every state-touching operation,
so the threaded HTTP adapter can fan requests in without coordination.
Latency accounting is strictly observational (see :mod:`repro.serving.sla`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.errors import CheckpointError, ConfigurationError
from repro.reputation import REPUTATION_FACTORIES, make_reputation_system
from repro.reputation.base import ReputationSystem, ScoreView
from repro.serving.sla import OperationClock
from repro.simulation.checkpoint import read_checkpoint, write_checkpoint
from repro.simulation.transaction import Feedback

#: Checkpoint ``kind`` tag for service snapshots.
SERVICE_CHECKPOINT_KIND = "service"

#: Operation families the service tracks latencies for.
SERVICE_OPERATIONS = ("ingest", "query", "refresh", "snapshot")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a reputation service session is parameterized on."""

    #: Registered mechanism name (``repro.reputation.REPUTATION_FACTORIES``).
    mechanism: str = "beta"
    #: Compute backend request ("auto", "python" or "vectorized").
    backend: str = "auto"
    #: Publish fresh scores every N accepted events (1 = per event).
    refresh_every: int = 64
    #: Score served for peers without evidence.
    default_score: float = 0.5
    #: Optional per-subject evidence cap forwarded to the mechanism.
    max_evidence_per_subject: int | None = None
    #: Ring-buffer window of the per-operation latency trackers.
    latency_window: int = 4096

    def __post_init__(self) -> None:
        if self.mechanism not in REPUTATION_FACTORIES:
            raise ConfigurationError(
                f"unknown mechanism {self.mechanism!r}; expected one of "
                f"{sorted(REPUTATION_FACTORIES)}"
            )
        if self.refresh_every < 1:
            raise ConfigurationError("refresh_every must be at least 1")
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be at least 1")


@dataclass(frozen=True)
class IngestReceipt:
    """What one ingest call tells the client."""

    #: Events accepted by this call.
    accepted: int
    #: Total events accepted over the session's lifetime.
    ingested: int
    #: Events folded into the currently published scores.
    watermark: int
    #: Whether this call crossed a refresh boundary and republished scores.
    refreshed: bool


@dataclass(frozen=True)
class PeerSummary:
    """One peer's served reputation state at a watermark."""

    peer_id: str
    score: float
    #: 1-based position in the ranking; ``None`` for unknown peers.
    rank: int | None
    #: Whether the published scores carry this peer at all.
    known: bool
    #: Watermark (events folded) the summary was served at.
    watermark: int


@dataclass
class ServiceSnapshot:
    """Checkpoint payload of a paused service session.

    The mechanism travels with its whole gathering state (feedback store,
    incremental pair-ledger folds, cached scores), so a restored service
    continues the incremental-refresh path exactly where it stopped.
    """

    config: ServiceConfig
    system: ReputationSystem
    evidence: list[Feedback]
    ingested: int
    watermark: int
    refreshes: int
    published: dict[str, float] = field(default_factory=dict)


def feedback_from_payload(payload: Mapping[str, object], *, sequence: int) -> Feedback:
    """Build a :class:`Feedback` from a client JSON object.

    Required fields: ``subject`` (peer id) and ``rating`` (number in
    ``[0, 1]``).  Optional: ``rater`` (omit or ``null`` for anonymous
    reports), ``time`` and ``transaction_id`` (both default to the ingest
    sequence number, which preserves arrival order for forgetting-weighted
    mechanisms).  Unknown fields are rejected — a silently dropped typo in
    a feedback field would corrupt evidence without any error surfacing.
    """
    allowed = {"subject", "rating", "rater", "time", "transaction_id"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ConfigurationError(f"unknown feedback fields: {unknown}")
    subject = payload.get("subject")
    if not isinstance(subject, str) or not subject:
        raise ConfigurationError("feedback needs a non-empty string 'subject'")
    rating = payload.get("rating")
    if isinstance(rating, bool) or not isinstance(rating, (int, float)):
        raise ConfigurationError("feedback needs a numeric 'rating' in [0, 1]")
    rater = payload.get("rater")
    if rater is not None and not isinstance(rater, str):
        raise ConfigurationError("'rater' must be a string or null")
    time = payload.get("time", sequence)
    if isinstance(time, bool) or not isinstance(time, int):
        raise ConfigurationError("'time' must be an integer")
    transaction_id = payload.get("transaction_id", sequence)
    if isinstance(transaction_id, bool) or not isinstance(transaction_id, int):
        raise ConfigurationError("'transaction_id' must be an integer")
    return Feedback(
        transaction_id=transaction_id,
        time=time,
        subject=subject,
        rating=float(rating),
        rater=rater,
    )


class ReputationService:
    """A live reputation-serving session over one mechanism.

    See the module docstring for the architecture.  All public methods are
    thread-safe; none of them block on anything but the session lock.
    """

    def __init__(self, config: ServiceConfig | None = None, **overrides: object) -> None:
        if config is None:
            config = ServiceConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ConfigurationError("pass either a config object or keyword overrides")
        self.config = config
        self._system = make_reputation_system(
            config.mechanism,
            default_score=config.default_score,
            max_evidence_per_subject=config.max_evidence_per_subject,
            backend=config.backend,
        )
        self._evidence: list[Feedback] = []
        self._ingested = 0
        self._watermark = 0
        self._refreshes = 0
        self._published = ScoreView(default_score=config.default_score)
        self._ranking: list[str] = []
        self._lock = threading.RLock()
        self._clock = OperationClock(SERVICE_OPERATIONS, window=config.latency_window)

    # -- ingestion ---------------------------------------------------------

    def ingest(self, event: Feedback | Mapping[str, object]) -> IngestReceipt:
        """Accept one feedback event (see :meth:`ingest_many`)."""
        return self.ingest_many((event,))

    def ingest_many(
        self, events: Iterable[Feedback | Mapping[str, object]]
    ) -> IngestReceipt:
        """Accept a batch of feedback events in order.

        Every event is appended to the evidence log and the mechanism's
        store immediately; scores are republished whenever the accepted
        count crosses a ``refresh_every`` boundary, so one large batch may
        refresh several times (the same watermarks a one-by-one stream
        would hit — restart byte-identity depends on that).
        """
        accepted = 0
        refreshed = False
        with self._lock, self._clock.timed("ingest"):
            for event in events:
                if isinstance(event, Feedback):
                    feedback = event
                else:
                    feedback = feedback_from_payload(event, sequence=self._ingested)
                self._evidence.append(feedback)
                self._system.record_feedback(feedback)
                self._ingested += 1
                accepted += 1
                if self._ingested % self.config.refresh_every == 0:
                    self._publish()
                    refreshed = True
            return IngestReceipt(
                accepted=accepted,
                ingested=self._ingested,
                watermark=self._watermark,
                refreshed=refreshed,
            )

    def _publish(self) -> None:
        """Refresh the mechanism and publish the new score watermark."""
        with self._clock.timed("refresh"):
            self._published = self._system.refresh()
            self._ranking = self._published.ranking()
            self._watermark = self._ingested
            self._refreshes += 1

    def refresh(self) -> ScoreView:
        """Force a refresh now (flushes any pending events) and publish."""
        with self._lock:
            self._publish()
            return self._published

    # -- queries -----------------------------------------------------------

    def scores(self) -> ScoreView:
        """The published scores at the current watermark (no refresh)."""
        with self._lock, self._clock.timed("query"):
            return ScoreView(self._published, default_score=self.config.default_score)

    def ranking(self, limit: int | None = None) -> list[str]:
        """Peer ids from most to least reputable at the current watermark."""
        with self._lock, self._clock.timed("query"):
            ranking = self._ranking
            return list(ranking if limit is None else ranking[: max(limit, 0)])

    def peer(self, peer_id: str) -> PeerSummary:
        """One peer's served score and rank at the current watermark."""
        with self._lock, self._clock.timed("query"):
            known = peer_id in self._published
            rank = self._ranking.index(peer_id) + 1 if known else None
            return PeerSummary(
                peer_id=peer_id,
                score=self._published.score_of(peer_id),
                rank=rank,
                known=known,
                watermark=self._watermark,
            )

    @property
    def watermark(self) -> int:
        """Events folded into the published scores."""
        with self._lock:
            return self._watermark

    @property
    def pending(self) -> int:
        """Accepted events not yet reflected in the published scores."""
        with self._lock:
            return self._ingested - self._watermark

    def health(self) -> dict[str, object]:
        """Liveness plus the session counters and SLA latency summary."""
        with self._lock:
            return {
                "status": "ok",
                "mechanism": self.config.mechanism,
                "backend": self._system.resolved_backend,
                "ingested": self._ingested,
                "watermark": self._watermark,
                "pending": self._ingested - self._watermark,
                "refreshes": self._refreshes,
                "known_peers": len(self._published),
                "refresh_every": self.config.refresh_every,
                "latency": self._clock.summary(),
            }

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self, path: str) -> dict[str, object]:
        """Persist the full session to a checkpoint file.

        Atomic, versioned and checksummed (see
        :mod:`repro.simulation.checkpoint`); returns the snapshot's vitals
        for the caller (the HTTP adapter echoes them to the client).
        """
        with self._lock, self._clock.timed("snapshot"):
            payload = ServiceSnapshot(
                config=self.config,
                system=self._system,
                evidence=self._evidence,
                ingested=self._ingested,
                watermark=self._watermark,
                refreshes=self._refreshes,
                published=dict(self._published),
            )
            write_checkpoint(
                path, SERVICE_CHECKPOINT_KIND, payload, round_index=self._watermark
            )
            return {
                "path": path,
                "ingested": self._ingested,
                "watermark": self._watermark,
                "events": len(self._evidence),
            }

    @classmethod
    def restore(cls, path: str) -> ReputationService:
        """Rehydrate a session from a :meth:`snapshot` file.

        The restored service continues exactly where the snapshot paused:
        same counters, same published scores, same incremental-refresh
        state — feeding it the remaining event stream yields byte-identical
        final scores to a never-interrupted session.
        """
        _, payload = read_checkpoint(path, expected_kind=SERVICE_CHECKPOINT_KIND)
        if not isinstance(payload, ServiceSnapshot):
            raise CheckpointError(f"{path}: payload is not a service snapshot")
        service = cls(payload.config)
        service._system = payload.system
        service._evidence = payload.evidence
        service._ingested = payload.ingested
        service._watermark = payload.watermark
        service._refreshes = payload.refreshes
        service._published = ScoreView(
            payload.published, default_score=payload.config.default_score
        )
        service._ranking = service._published.ranking()
        return service

    # -- evidence log ------------------------------------------------------

    @property
    def evidence_count(self) -> int:
        """Events in the append-only evidence log."""
        with self._lock:
            return len(self._evidence)

    def evidence(self, start: int = 0, limit: int | None = None) -> list[Feedback]:
        """A slice of the append-only evidence log (audit/replay access)."""
        with self._lock:
            end = None if limit is None else start + max(limit, 0)
            return list(self._evidence[start:end])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReputationService mechanism={self.config.mechanism} "
            f"ingested={self._ingested} watermark={self._watermark}>"
        )

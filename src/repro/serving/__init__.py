"""Reputation-as-a-service: a live serving layer over the paper's mechanisms.

The batch pipeline answers "what would the scores have been"; this package
answers "what are the scores *now*".  :class:`ReputationService` is a
transport-agnostic session object — it owns a reputation system plus an
append-only evidence log, folds streamed feedback through the incremental
refresh path, and publishes score views at an explicit watermark.  Thin
adapters in :mod:`repro.serving.http` put that session behind HTTP (stdlib
``ThreadingHTTPServer`` always; FastAPI when installed), and
:mod:`repro.serving.loadgen` replays scenario traces against a live server
for the benchmark and CI gates.

Durability layers two mechanisms.  ``snapshot()`` / ``restore()``
round-trip the whole session through a checksummed checkpoint file, and the
write-ahead log (:mod:`repro.serving.wal`) makes every *acked* ingest batch
durable between snapshots — recovery (``ReputationService.recover``)
replays the WAL past the newest snapshot and a restarted server provably
(CI-enforced) publishes byte-identical scores to one that never stopped,
even after a SIGKILL mid-traffic.  Overload protection (bounded admission,
per-client rate limiting, an ``ok|degraded|read_only`` health state
machine) sheds with 429/503 instead of melting, and
:class:`~repro.serving.client.ResilientClient` gives callers the matching
retry/circuit-breaker/idempotency discipline.
"""

from repro.serving.client import CircuitBreaker, ClientRetryPolicy, ResilientClient
from repro.serving.http import create_asgi_app, create_http_server
from repro.serving.service import (
    AdmissionGate,
    ClientRateLimiter,
    IngestReceipt,
    PeerSummary,
    ReputationService,
    ServiceConfig,
    feedback_from_payload,
)
from repro.serving.wal import TornTailWarning, WalEntry, WriteAheadLog, verify_wal

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "ClientRateLimiter",
    "ClientRetryPolicy",
    "IngestReceipt",
    "PeerSummary",
    "ReputationService",
    "ResilientClient",
    "ServiceConfig",
    "TornTailWarning",
    "WalEntry",
    "WriteAheadLog",
    "create_asgi_app",
    "create_http_server",
    "feedback_from_payload",
    "verify_wal",
]

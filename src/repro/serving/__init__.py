"""Reputation-as-a-service: a live serving layer over the paper's mechanisms.

The batch pipeline answers "what would the scores have been"; this package
answers "what are the scores *now*".  :class:`ReputationService` is a
transport-agnostic session object — it owns a reputation system plus an
append-only evidence log, folds streamed feedback through the incremental
refresh path, and publishes score views at an explicit watermark.  Thin
adapters in :mod:`repro.serving.http` put that session behind HTTP (stdlib
``ThreadingHTTPServer`` always; FastAPI when installed), and
:mod:`repro.serving.loadgen` replays scenario traces against a live server
for the benchmark and CI gates.

Durability reuses the simulation checkpoint machinery: ``snapshot()`` /
``restore()`` round-trip the whole session through a checksummed checkpoint
file, and a restarted server provably (CI-enforced) publishes byte-identical
scores to one that never stopped.
"""

from repro.serving.service import (
    IngestReceipt,
    PeerSummary,
    ReputationService,
    ServiceConfig,
    feedback_from_payload,
)
from repro.serving.http import create_asgi_app, create_http_server

__all__ = [
    "IngestReceipt",
    "PeerSummary",
    "ReputationService",
    "ServiceConfig",
    "create_asgi_app",
    "create_http_server",
    "feedback_from_payload",
]
